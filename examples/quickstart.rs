//! Quickstart: characterize a 3-input NAND, query the proximity model, and
//! check one prediction against the circuit simulator.
//!
//! Run with `cargo run --release --example quickstart` (add `-- --full` for
//! paper-fidelity characterization grids).

use proxim::cells::{Cell, Technology};
use proxim::model::characterize::{CharacterizeOptions, Simulator};
use proxim::model::{InputEvent, ProximityModel};
use proxim::numeric::pwl::Edge;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let opts = if full {
        CharacterizeOptions::default()
    } else {
        CharacterizeOptions::medium()
    };

    // 1. Pick a technology and a cell — the paper's Figure 1-1 setup.
    let tech = Technology::demo_5v();
    let cell = Cell::nand(3);
    println!(
        "characterizing {} in {} (grids: {})...",
        cell.name(),
        tech.name,
        if full { "paper fidelity" } else { "medium" }
    );
    let t0 = std::time::Instant::now();
    let model = ProximityModel::characterize(&cell, &tech, &opts)?;
    println!(
        "done in {:.1} s; thresholds V_il = {:.2} V, V_ih = {:.2} V; {} table entries\n",
        t0.elapsed().as_secs_f64(),
        model.thresholds().v_il,
        model.thresholds().v_ih,
        model.table_entries()
    );

    // 2. Ask for the delay of a multi-input switching scenario: inputs a
    //    and b fall 120 ps apart, c falls 250 ps later with a slow ramp.
    let events = vec![
        InputEvent::new(0, Edge::Falling, 0.0, 500e-12),
        InputEvent::new(1, Edge::Falling, 120e-12, 300e-12),
        InputEvent::new(2, Edge::Falling, 250e-12, 900e-12),
    ];
    let timing = model.gate_timing(&events)?;
    println!(
        "proximity model: delay {:.1} ps, output transition {:.1} ps \
         (referenced to pin {}, {} inputs in window)",
        timing.delay * 1e12,
        timing.output_transition * 1e12,
        timing.reference_pin,
        timing.inputs_in_window
    );

    // 3. Cross-check against a transient simulation of the same scenario.
    let sim = Simulator::new(
        &cell,
        &tech,
        *model.thresholds(),
        model.reference_load(),
        0.03,
    );
    let r = sim.simulate(&events)?;
    let k = events
        .iter()
        .position(|e| e.pin == timing.reference_pin)
        .expect("reference pin is among the events");
    let delay_sim = r.delay_from(k, model.thresholds())?;
    let trans_sim = r.transition_time(model.thresholds())?;
    println!(
        "circuit sim:     delay {:.1} ps, output transition {:.1} ps",
        delay_sim * 1e12,
        trans_sim * 1e12
    );
    println!(
        "model error:     delay {:+.1} %, transition {:+.1} %",
        (timing.delay - delay_sim) / delay_sim * 100.0,
        (timing.output_transition - trans_sim) / trans_sim * 100.0
    );

    // 4. The effect the paper is about: the same scenario with the inputs
    //    pushed far apart loses the proximity speedup.
    let spread = vec![
        InputEvent::new(0, Edge::Falling, 0.0, 500e-12),
        InputEvent::new(1, Edge::Falling, 5e-9, 300e-12),
        InputEvent::new(2, Edge::Falling, 10e-9, 900e-12),
    ];
    let spread_timing = model.gate_timing(&spread)?;
    println!(
        "\nwith inputs far apart the delay becomes {:.1} ps — proximity changed it by {:+.1} %",
        spread_timing.delay * 1e12,
        (timing.delay - spread_timing.delay) / spread_timing.delay * 100.0
    );
    Ok(())
}
