//! Parse an ISCAS-style `.bench` netlist and time it with the proximity
//! model: the full front-to-back flow a downstream tool would use.
//!
//! Run with `cargo run --release --example c17_bench [-- path/to/file.bench]`.
//! Without an argument it times the bundled C17.

use proxim::cells::{Cell, Technology};
use proxim::model::characterize::CharacterizeOptions;
use proxim::model::ProximityModel;
use proxim::numeric::pwl::Edge;
use proxim::sta::parse::{parse_bench, C17_BENCH};
use proxim::sta::timing::{DelayMode, PiAssignment, Sta};
use proxim::sta::TimingLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => C17_BENCH.to_string(),
    };

    // Library: characterize the cells the netlist needs (NAND2 here; extend
    // the resolver for richer benches).
    let tech = Technology::demo_5v();
    println!("characterizing library cells...");
    let mut library = TimingLibrary::new();
    let nand2 = library.add(ProximityModel::characterize(
        &Cell::nand(2),
        &tech,
        &CharacterizeOptions::fast(),
    )?);
    let nand3 = library.add(ProximityModel::characterize(
        &Cell::nand(3),
        &tech,
        &CharacterizeOptions::fast(),
    )?);
    let inv = library.add(ProximityModel::characterize(
        &Cell::inv(),
        &tech,
        &CharacterizeOptions::fast(),
    )?);

    let parsed = parse_bench(&text, |ty, fanin| match (ty, fanin) {
        ("NAND", 2) => Some(nand2),
        ("NAND", 3) => Some(nand3),
        ("NOT" | "INV" | "BUF", 1) => Some(inv),
        _ => None,
    })?;
    println!(
        "parsed: {} gates, {} inputs, {} outputs",
        parsed.netlist.gates().len(),
        parsed.inputs.len(),
        parsed.outputs.len()
    );

    // Stimulus: every primary input rises, 40 ps apart in declaration order
    // — a proximity-heavy pattern.
    let assignments: Vec<PiAssignment> = parsed
        .inputs
        .iter()
        .enumerate()
        .map(|(k, &net)| PiAssignment::switching(net, Edge::Rising, k as f64 * 40e-12, 250e-12))
        .collect();

    let sta = Sta::new(&library, &parsed.netlist);
    for mode in [DelayMode::Proximity, DelayMode::SingleInput] {
        match sta.run(&assignments, mode) {
            Ok(report) => {
                println!("\n{mode:?}:");
                for &po in &parsed.outputs {
                    let name = parsed.netlist.net_name(po);
                    match report.net_event(po) {
                        Some(ev) => println!(
                            "  {name:>8}: {} at {:.1} ps (transition {:.1} ps)",
                            ev.edge,
                            ev.arrival * 1e12,
                            ev.transition * 1e12
                        ),
                        None => println!("  {name:>8}: no transition"),
                    }
                }
                if let Some((net, t)) = report.critical_arrival() {
                    let path: Vec<&str> = report
                        .critical_path()
                        .iter()
                        .map(|&n| parsed.netlist.net_name(n))
                        .collect();
                    println!(
                        "  critical: {:.1} ps at {} via [{}]",
                        t * 1e12,
                        parsed.netlist.net_name(net),
                        path.join(" -> ")
                    );
                }
            }
            Err(e) => println!("\n{mode:?}: {e}"),
        }
    }
    Ok(())
}
