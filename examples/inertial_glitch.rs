//! Inertial delay as a proximity effect (§6 of the paper): sweep the
//! separation between opposite transitions on a NAND2, watch the output
//! glitch grow into a full transition, and extract the minimum separation
//! for a valid output from the characterized glitch macromodel.
//!
//! Run with `cargo run --release --example inertial_glitch`.

use proxim::cells::{Cell, Technology};
use proxim::model::characterize::CharacterizeOptions;
use proxim::model::measure::{InputEvent, Scenario};
use proxim::model::ProximityModel;
use proxim::numeric::grid::linspace;
use proxim::numeric::pwl::Edge;
use proxim::spice::tran::TranOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let opts = CharacterizeOptions {
        glitch: true,
        ..CharacterizeOptions::fast()
    };
    println!("characterizing NAND2 (including the §6 glitch model)...");
    let model = ProximityModel::characterize(&cell, &tech, &opts)?;
    let th = *model.thresholds();

    // Causer: b rises (would pull the output low). Blocker: a falls
    // (restores it high). Positive separation = blocker arrives later.
    let tau_b = 300e-12;
    let tau_a = 500e-12;
    let glitch = model
        .glitch_model(Edge::Rising)
        .expect("glitch model characterized");
    let single_b = model
        .single_model(1, Edge::Rising)
        .expect("single model characterized");
    let d1 = single_b.delay(tau_b, model.reference_load());

    println!(
        "\n{:>8} {:>12} {:>12}  glitch depth",
        "s [ps]", "Vmin sim", "Vmin model"
    );
    for s in linspace(-200e-12, 1200e-12, 15) {
        let e_b = InputEvent::new(1, Edge::Rising, 0.0, tau_b);
        let arrival_b = e_b.arrival(&th);
        let frac_a = InputEvent::new(0, Edge::Falling, 0.0, tau_a).arrival(&th);
        let e_a = InputEvent::new(0, Edge::Falling, arrival_b + s - frac_a, tau_a);

        // Simulate the pair directly.
        let scenario = Scenario::resolve(&cell, &[e_b])?;
        let mut net = cell.netlist(&tech, model.reference_load());
        for (pin, lv) in scenario.stable_levels.iter().enumerate() {
            if pin != e_a.pin {
                if let Some(h) = lv {
                    net.set_level(pin, *h);
                }
            }
        }
        let shift = 0.3e-9 - e_a.ramp.t_start.min(0.0);
        let (e_b2, e_a2) = (e_b.delayed(shift), e_a.delayed(shift));
        net.set_waveform(1, e_b2.ramp.waveform(tech.vdd));
        net.set_waveform(0, e_a2.ramp.waveform(tech.vdd));
        let t_end = (e_a2.ramp.t_start + tau_a).max(e_b2.ramp.t_start + tau_b) + 4e-9;
        let r = net
            .circuit
            .tran(&TranOptions::to(t_end).with_dv_max(0.03))?;
        let v_sim = r.waveform(net.out).min().1;
        let v_model = glitch.peak_voltage(tau_b, tau_a, s, d1);

        let depth = ((tech.vdd - v_sim) / tech.vdd * 30.0) as usize;
        println!(
            "{:>8.0} {:>12.3} {:>12.3}  {}",
            s * 1e12,
            v_sim,
            v_model,
            "v".repeat(depth)
        );
    }

    match glitch.min_separation_for_valid_output(tau_b, tau_a, d1, th.v_il) {
        Some(s_min) => println!(
            "\ninertial delay: the output only completes a valid transition when the \
             blocker trails the causer by at least {:.0} ps (extremum reaches V_il = {:.2} V)",
            s_min * 1e12,
            th.v_il
        ),
        None => println!("\nno separation in the characterized window admits a full transition"),
    }
    Ok(())
}
