//! Proximity-aware static timing analysis on a NAND-only ripple-carry
//! adder: compare classic single-input timing with the proximity model on
//! the same stimulus, and show where the two disagree.
//!
//! Run with `cargo run --release --example sta_adder [-- bits]`.

use proxim::cells::{Cell, Technology};
use proxim::model::characterize::CharacterizeOptions;
use proxim::model::ProximityModel;
use proxim::numeric::pwl::Edge;
use proxim::sta::circuits::ripple_carry_adder;
use proxim::sta::timing::{DelayMode, PiAssignment, Sta};
use proxim::sta::TimingLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);

    let tech = Technology::demo_5v();
    println!("characterizing the NAND2 library cell...");
    let model = ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())?;
    let mut library = TimingLibrary::new();
    let nand2 = library.add(model);

    let (netlist, ins, outs) = ripple_carry_adder(nand2, bits);
    println!(
        "{bits}-bit ripple-carry adder: {} NAND2 gates, {} nets\n",
        netlist.gates().len(),
        netlist.net_count()
    );
    let sta = Sta::new(&library, &netlist);

    // Stimulus: every a-bit and b-bit rises, 50 ps apart — each full adder's
    // NAND(a, b) sees two transitions in close proximity, which is exactly
    // the case classic single-input timing cannot represent.
    let mut assignments = Vec::new();
    for (k, &net) in ins.iter().enumerate() {
        if k < bits {
            assignments.push(PiAssignment::switching(net, Edge::Rising, 0.0, 300e-12));
        } else if k < 2 * bits {
            assignments.push(PiAssignment::switching(net, Edge::Rising, 50e-12, 300e-12));
        } else {
            assignments.push(PiAssignment::stable(net, false)); // cin = 0
        }
    }

    let prox = sta.run(&assignments, DelayMode::Proximity)?;
    let single = sta.run(&assignments, DelayMode::SingleInput)?;

    println!(
        "{:>10} {:>18} {:>18} {:>10}",
        "output", "proximity [ps]", "single-input [ps]", "diff [%]"
    );
    for &po in &outs {
        let name = netlist.net_name(po);
        match (prox.net_event(po), single.net_event(po)) {
            (Some(p), Some(s)) => {
                println!(
                    "{:>10} {:>18.1} {:>18.1} {:>10.2}",
                    name,
                    p.arrival * 1e12,
                    s.arrival * 1e12,
                    (p.arrival - s.arrival) / s.arrival * 100.0
                );
            }
            (None, None) => println!("{name:>10} {:>18} {:>18}", "-", "-"),
            (p, s) => println!("{name:>10} disagreement: proximity {p:?}, single {s:?}"),
        }
    }

    if let (Some((np, tp)), Some((ns, ts))) = (prox.critical_arrival(), single.critical_arrival()) {
        println!(
            "\ncritical arrival: proximity {:.1} ps on {}, single-input {:.1} ps on {}",
            tp * 1e12,
            netlist.net_name(np),
            ts * 1e12,
            netlist.net_name(ns)
        );
        println!(
            "classic STA is {} by {:.1} ps on this stimulus",
            if ts > tp { "pessimistic" } else { "optimistic" },
            (ts - tp).abs() * 1e12
        );
    }
    Ok(())
}
