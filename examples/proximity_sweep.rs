//! Reproduce a Figure 1-2-style sweep interactively: gate delay and output
//! transition time versus the separation between two input transitions,
//! for both directions, printed as a text plot.
//!
//! Run with `cargo run --release --example proximity_sweep`.

use proxim::cells::{Cell, Technology};
use proxim::model::characterize::Simulator;
use proxim::model::measure::InputEvent;
use proxim::model::thresholds::extract_vtc_family;
use proxim::numeric::grid::linspace;
use proxim::numeric::pwl::Edge;

fn bar(value: f64, lo: f64, hi: f64, width: usize) -> String {
    let frac = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    "#".repeat((frac * width as f64).round() as usize)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(3);
    let c_load = 100e-15;

    // Thresholds straight from the VTC family (§2 of the paper).
    let family = extract_vtc_family(&cell, &tech, c_load, 201)?;
    let th = family.thresholds();
    println!(
        "thresholds from the VTC family: V_il = {:.3} V, V_ih = {:.3} V",
        th.v_il, th.v_ih
    );

    let sim = Simulator::new(&cell, &tech, th, c_load, 0.03);
    let tau = 500e-12;

    for (edge, label) in [
        (
            Edge::Falling,
            "falling a,b (parallel pull-ups: proximity speeds the output)",
        ),
        (
            Edge::Rising,
            "rising a,b (series stack: proximity slows the output)",
        ),
    ] {
        println!("\n=== {label} ===");
        let mut rows = Vec::new();
        for s in linspace(0.0, 800e-12, 17) {
            let e_a = InputEvent::new(0, edge, 0.0, tau);
            let arrival_a = e_a.arrival(&th);
            // Falling: the partner trails; rising: the partner leads.
            let target = match edge {
                Edge::Falling => arrival_a + s,
                Edge::Rising => arrival_a - s,
            };
            let frac_b = InputEvent::new(1, edge, 0.0, tau).arrival(&th);
            let e_b = InputEvent::new(1, edge, target - frac_b, tau);
            let r = sim.simulate(&[e_a, e_b])?;
            let delay = r.delay_from(0, &th)?;
            let trans = r.transition_time(&th)?;
            rows.push((s, delay, trans));
        }
        let d_lo = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let d_hi = rows.iter().map(|r| r.1).fold(0.0, f64::max);
        println!(
            "{:>8} {:>12} {:>12}  delay profile",
            "s [ps]", "delay [ps]", "trans [ps]"
        );
        for &(s, d, t) in &rows {
            println!(
                "{:>8.0} {:>12.1} {:>12.1}  {}",
                s * 1e12,
                d * 1e12,
                t * 1e12,
                bar(d, d_lo * 0.98, d_hi * 1.02, 36)
            );
        }
        let change = (d_hi - d_lo) / d_hi * 100.0;
        println!("proximity swings the delay by {change:.0}% across this window");
    }
    Ok(())
}
