//! End-to-end observability loop for the timing-query daemon: the
//! acceptance scenario of the tracing/introspection plane, driven over a
//! real Unix socket.
//!
//! The core test overloads a deliberately starved in-process [`Server`]
//! with client-supplied `trace_id`s and follows one request generation
//! through every surface at once:
//!
//! - the live `stats` in-flight table shows the work while it runs;
//! - every response (answered *and* shed) echoes its `trace_id` and the
//!   answered ones carry the per-phase breakdown;
//! - the sampled JSONL sink holds a `serve.request` span tree with the
//!   matching `trace_id` and all four phase children;
//! - the flight-recorder ring can reproduce the same records after the
//!   fact, both over the wire (`obs` dump op) and after shutdown;
//! - the per-daemon counters reconcile exactly with what the clients saw.
//!
//! A second test flips sampling and level at runtime through the `obs`
//! op; a third drives the real `proxim_serve` binary and asserts the
//! SIGTERM drain path leaves a flight dump containing a traced request.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_obs::json::Json;
use proxim_obs::{flight, sink};
use proxim_serve::server::one_shot;
use proxim_serve::{ModelLibrary, ModelStore, ServeOptions, Server};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Observability state (level, sink, flight ring) is process-global;
/// serialize the tests that touch it.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Every server in this file asks for the same ring size — the ring is
/// created once per process at its first-enable capacity.
const FLIGHT_CAPACITY: usize = 256;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_srvobs_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One shared fast model; characterization runs once for the whole file.
fn shared_model() -> &'static ProximityModel {
    static MODEL: OnceLock<ProximityModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
            .expect("test model characterizes")
    })
}

fn start_server(dir: &Path, opts: ServeOptions) -> Server {
    let store = ModelStore::new(dir.join("store"));
    store.save("inv", shared_model()).expect("seed store");
    let library = ModelLibrary::open(&store);
    Server::start(library, dir.join("serve.sock"), opts).expect("server starts")
}

/// An in-memory sink the tests can read back (the `Direct` sink shape:
/// records are visible the moment they are emitted).
#[derive(Clone, Default)]
struct Capture(std::sync::Arc<Mutex<Vec<u8>>>);

impl Capture {
    fn take_string(&self) -> String {
        let mut buf = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8(std::mem::take(&mut *buf)).expect("trace output is UTF-8")
    }
}

impl std::io::Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Restores the quiet default state even when a test body panics.
struct ObsGuard;

impl Drop for ObsGuard {
    fn drop(&mut self) {
        sink::uninstall();
        proxim_obs::set_level(proxim_obs::Level::Off);
        flight::disable();
    }
}

fn query_json(trace_id: &str) -> String {
    format!(
        concat!(
            "{{\"op\":\"query\",\"model\":\"inv\",\"trace_id\":\"{}\",\"events\":[",
            "{{\"pin\":0,\"edge\":\"rise\",\"t\":0.0,\"tt\":4e-10}}]}}"
        ),
        trace_id
    )
}

fn parse(response: &str) -> Json {
    Json::parse(response).unwrap_or_else(|e| panic!("bad JSON {response:?}: {e}"))
}

fn str_field<'a>(json: &'a Json, key: &str) -> &'a str {
    json.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string {key:?} in {json:?}"))
}

fn num_field(json: &Json, key: &str) -> f64 {
    json.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing number {key:?} in {json:?}"))
}

/// Polls `f` until it returns `Some` or five seconds pass. Trace emission
/// is deliberately off the response path — `finish_request` runs *after*
/// the response frame is written — so a client that just got its answer
/// may be microseconds ahead of the span landing in the sink or ring.
fn poll_until<T>(what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// All `serve.request` spans in a JSONL text, as `(trace_id, span_id)`.
fn request_spans(jsonl: &str) -> Vec<(String, f64)> {
    jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"serve.request\""))
        .map(|l| {
            let rec = parse(l);
            let trace_id = rec
                .get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_str)
                .expect("serve.request spans carry their trace_id")
                .to_string();
            (trace_id, num_field(&rec, "id"))
        })
        .collect()
}

#[test]
fn overloaded_requests_are_visible_on_every_observability_surface() {
    const CLIENTS: usize = 8;
    let _lock = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _guard = ObsGuard;
    let cap = Capture::default();
    sink::install_writer(Box::new(cap.clone()));
    proxim_obs::set_level(proxim_obs::Level::Trace);

    // Starved on purpose: one worker with a 50 ms stall and a two-slot
    // queue guarantees shed under eight simultaneous clients, and a 20 ms
    // slow threshold makes every answered request a slow one.
    let dir = scratch_dir("loop");
    let server = start_server(
        &dir,
        ServeOptions {
            workers: 1,
            queue_capacity: 2,
            worker_stall: Duration::from_millis(50),
            slow_threshold: Duration::from_millis(20),
            trace_sample_every: 1,
            flight_capacity: FLIGHT_CAPACITY,
            request_deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    );
    let sock = server.socket_path().to_path_buf();

    // Eight clients, each with its own trace_id, all at once.
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let sock = sock.clone();
                s.spawn(move || one_shot(&sock, &query_json(&format!("cli-{i}"))).expect("query"))
            })
            .collect();

        // While they fly: the live in-flight table must show the work,
        // attributed by trace_id. Stats answers inline on its own
        // connection, so overload cannot block the probe.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut seen_inflight = None;
        while seen_inflight.is_none() && Instant::now() < deadline {
            let stats = parse(&one_shot(&sock, r#"{"op":"stats"}"#).expect("stats probe"));
            assert!(num_field(&stats, "uptime_s") >= 0.0);
            assert!(num_field(&stats, "queue_depth") >= 0.0);
            let inflight = stats
                .get("inflight")
                .and_then(Json::as_arr)
                .expect("stats carries the in-flight table");
            seen_inflight = inflight
                .iter()
                .find(|e| str_field(e, "trace_id").starts_with("cli-"))
                .map(|e| {
                    (
                        str_field(e, "trace_id").to_string(),
                        str_field(e, "op").to_string(),
                        str_field(e, "phase").to_string(),
                        num_field(e, "age_us"),
                    )
                });
            std::thread::sleep(Duration::from_millis(2));
        }
        let (trace_id, op, phase, age_us) =
            seen_inflight.expect("a stalled request must appear in the in-flight table");
        assert!(trace_id.starts_with("cli-"));
        assert_eq!(op, "query");
        assert!(
            ["admit", "queue", "execute", "write"].contains(&phase.as_str()),
            "unknown in-flight phase {phase:?}"
        );
        assert!(age_us >= 0.0);

        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every client got a typed response echoing its trace_id; answered
    // ones carry the per-phase breakdown with the stall visible in the
    // execute phase.
    let (mut answered, mut shed) = (Vec::new(), Vec::new());
    for (i, response) in responses.iter().enumerate() {
        let json = parse(response);
        assert_eq!(str_field(&json, "trace_id"), format!("cli-{i}"));
        if json.get("ok").and_then(Json::as_bool) == Some(true) {
            let breakdown = json.get("breakdown").expect("answered carry a breakdown");
            for phase in ["admit_us", "queue_us", "execute_us"] {
                assert!(num_field(breakdown, phase) >= 0.0);
            }
            assert!(
                num_field(breakdown, "execute_us") >= 10_000.0,
                "the 50 ms worker stall must be attributed to execute: {response}"
            );
            answered.push(format!("cli-{i}"));
        } else {
            assert!(
                response.contains("overloaded"),
                "non-answered must be typed shed: {response}"
            );
            shed.push(format!("cli-{i}"));
        }
    }
    assert!(!answered.is_empty(), "some requests must survive overload");
    assert!(
        !shed.is_empty(),
        "a two-slot queue under eight clients must shed"
    );

    // The sampled JSONL sink: one serve.request span tree per request
    // (sample_every=1), trace_id attached, all four phase children
    // parented to it — shed requests included, that's what makes the
    // trace a complete account of the overload.
    let mut jsonl = String::new();
    let spans = poll_until("all request spans to reach the sink", || {
        sink::flush();
        jsonl.push_str(&cap.take_string());
        let spans = request_spans(&jsonl);
        (spans.len() >= CLIENTS).then_some(spans)
    });
    let children: Vec<Json> = jsonl
        .lines()
        .filter(|l| {
            [
                "serve.admit",
                "serve.queue_wait",
                "serve.execute",
                "serve.write",
            ]
            .iter()
            .any(|n| l.contains(&format!("\"name\":\"{n}\"")))
        })
        .map(parse)
        .collect();
    for trace_id in answered.iter().chain(&shed) {
        let (_, span_id) = spans
            .iter()
            .find(|(id, _)| id == trace_id)
            .unwrap_or_else(|| panic!("no serve.request span for {trace_id} in sink"));
        let phase_names: Vec<&str> = children
            .iter()
            .filter(|c| c.get("parent").and_then(Json::as_f64) == Some(*span_id))
            .map(|c| c.get("name").and_then(Json::as_str).expect("name"))
            .collect();
        for phase in [
            "serve.admit",
            "serve.queue_wait",
            "serve.execute",
            "serve.write",
        ] {
            assert!(
                phase_names.contains(&phase),
                "{trace_id}: phase {phase} missing from its span tree {phase_names:?}"
            );
        }
    }
    // Slow requests announce themselves: the 50 ms stall beats the 20 ms
    // threshold, so every answered request logged a serve.slow event.
    for trace_id in &answered {
        assert!(
            jsonl
                .lines()
                .any(|l| l.contains("\"name\":\"serve.slow\"") && l.contains(trace_id.as_str())),
            "answered request {trace_id} must be flagged slow"
        );
    }

    // The per-daemon counters reconcile exactly with the client's view:
    // `serve.requests` counts admitted work, `serve.shed` the refusals —
    // together they account for every client, nothing dropped.
    let stats = parse(&one_shot(&sock, r#"{"op":"stats"}"#).expect("final stats"));
    let counters = stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .expect("counters");
    assert_eq!(
        num_field(counters, "serve.requests") as usize,
        answered.len()
    );
    assert_eq!(num_field(counters, "serve.shed") as usize, shed.len());
    assert_eq!(num_field(counters, "serve.slow") as usize, answered.len());

    // The flight recorder replays the same story over the wire: the obs
    // dump op returns sink-format JSONL whose request spans carry the same
    // trace_ids the sink saw.
    poll_until("all requests to reach the flight ring", || {
        let obs = parse(&one_shot(&sock, r#"{"op":"obs","dump":true}"#).expect("obs dump"));
        assert_eq!(obs.get("ok").and_then(Json::as_bool), Some(true));
        let dump = str_field(&obs, "dump");
        assert!(
            dump.starts_with("{\"t\":\"flight\""),
            "dump leads with its header"
        );
        let dumped = request_spans(dump);
        answered
            .iter()
            .chain(&shed)
            .all(|trace_id| dumped.iter().any(|(id, _)| id == trace_id))
            .then_some(())
    });

    // And the ring outlives the daemon: after shutdown, a post-mortem
    // dump still holds the requests.
    server.begin_shutdown();
    server.join();
    let post_mortem = flight::dump();
    assert!(
        request_spans(&post_mortem)
            .iter()
            .any(|(id, _)| id == &answered[0]),
        "post-shutdown flight dump lost the request history"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_op_flips_sampling_and_level_at_runtime() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _guard = ObsGuard;
    let cap = Capture::default();
    sink::install_writer(Box::new(cap.clone()));
    proxim_obs::set_level(proxim_obs::Level::Trace);

    // Head sampling off; the fast query stays far under the slow
    // threshold, so nothing should reach the sink.
    let dir = scratch_dir("flip");
    let server = start_server(
        &dir,
        ServeOptions {
            trace_sample_every: 0,
            flight_capacity: FLIGHT_CAPACITY,
            ..ServeOptions::default()
        },
    );
    let sock = server.socket_path().to_path_buf();

    assert!(one_shot(&sock, &query_json("pre-flip"))
        .expect("query")
        .contains("\"ok\":true"));
    // Emission trails the response; give it a beat before the negative check.
    std::thread::sleep(Duration::from_millis(50));
    sink::flush();
    assert!(
        request_spans(&cap.take_string()).is_empty(),
        "with sampling off and the request fast, the sink must stay silent"
    );

    // Flip sampling to every request — over the wire, no restart — and
    // the next request lands in the sink.
    let obs = parse(&one_shot(&sock, r#"{"op":"obs","sample_every":1}"#).expect("obs flip"));
    assert_eq!(obs.get("ok").and_then(Json::as_bool), Some(true));
    let echoed = obs.get("obs").expect("obs response echoes the config");
    assert_eq!(num_field(echoed, "sample_every") as u64, 1);
    assert_eq!(str_field(echoed, "level"), "trace");

    assert!(one_shot(&sock, &query_json("post-flip"))
        .expect("query")
        .contains("\"ok\":true"));
    let mut sampled_jsonl = String::new();
    poll_until("the post-flip request to be sampled", || {
        sink::flush();
        sampled_jsonl.push_str(&cap.take_string());
        request_spans(&sampled_jsonl)
            .iter()
            .any(|(id, _)| id == "post-flip")
            .then_some(())
    });

    // Level off silences the sink entirely (the flight ring keeps
    // recording — that is its whole point), and stats echoes the change.
    parse(&one_shot(&sock, r#"{"op":"obs","level":"off"}"#).expect("level off"));
    let flight_before = flight::recorded();
    assert!(one_shot(&sock, &query_json("dark"))
        .expect("query")
        .contains("\"ok\":true"));
    poll_until("the dark request to reach the flight ring", || {
        (flight::recorded() > flight_before).then_some(())
    });
    sink::flush();
    assert!(
        request_spans(&cap.take_string()).is_empty(),
        "level off must silence the sink"
    );
    let stats = parse(&one_shot(&sock, r#"{"op":"stats"}"#).expect("stats"));
    assert_eq!(
        str_field(stats.get("obs").expect("obs in stats"), "level"),
        "off"
    );

    server.begin_shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_sigterm_drain_leaves_a_flight_dump_with_the_traced_request() {
    use std::process::{Command, Stdio};

    let dir = scratch_dir("drain_dump");
    let socket = dir.join("serve.sock");
    let dump_path = dir.join("flight.jsonl");
    let stdout_path = dir.join("serve.out");
    let stdout = std::fs::File::create(&stdout_path).expect("stdout capture");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_proxim_serve"))
        .args(["serve", "--demo", "--workers", "1", "--sample-every", "1"])
        .arg("--store")
        .arg(dir.join("store"))
        .arg("--socket")
        .arg(&socket)
        .arg("--flight-out")
        .arg(&dump_path)
        .stdout(Stdio::from(stdout))
        .spawn()
        .expect("daemon spawns");

    // Wait for readiness (the --demo path characterizes first).
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let ready = std::fs::read_to_string(&stdout_path)
            .map(|t| t.contains("ready"))
            .unwrap_or(false);
        if ready {
            break;
        }
        assert!(
            daemon.try_wait().expect("child wait").is_none(),
            "daemon died before becoming ready"
        );
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(10));
    }

    let query = concat!(
        "{\"op\":\"query\",\"model\":\"nand2_demo\",\"trace_id\":\"drain-proof\",",
        "\"events\":[{\"pin\":0,\"edge\":\"rise\",\"t\":0.0,\"tt\":4e-10},",
        "{\"pin\":1,\"edge\":\"rise\",\"t\":5e-11,\"tt\":4e-10}]}"
    );
    let response = one_shot(&socket, query).expect("traced query");
    assert!(response.contains("\"ok\":true"), "query failed: {response}");
    assert!(response.contains("drain-proof"), "trace_id echo missing");

    // SIGTERM → drain → the binary writes the armed flight dump on exit.
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(daemon.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status = daemon.wait().expect("reap daemon");
    assert_eq!(status.code(), Some(0), "drain must exit cleanly");

    let dump = std::fs::read_to_string(&dump_path).expect("drain must leave a flight dump");
    let header = parse(dump.lines().next().expect("dump header"));
    assert_eq!(header.get("t").and_then(Json::as_str), Some("flight"));
    for line in dump.lines().skip(1) {
        parse(line); // every record is whole
    }
    assert!(
        request_spans(&dump)
            .iter()
            .any(|(id, _)| id == "drain-proof"),
        "the traced request must be recoverable from the post-SIGTERM dump"
    );

    std::fs::remove_dir_all(&dir).ok();
}
