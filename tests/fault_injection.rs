//! Resilience suite: deterministic fault injection inside the simulator's
//! solver loops (`proxim_spice::faultpoint`, behind the `fault-injection`
//! feature).
//!
//! Three invariants are pinned down here:
//!
//! 1. An *armed but zero-rate* fault configuration changes nothing: the
//!    characterized model is byte-identical across worker counts, exactly
//!    as in the healthy pipeline.
//! 2. Under real fault pressure the characterization completes — recovered
//!    solves are counted, doomed runs degrade their slice with provenance
//!    instead of failing the model, and queries that would have used a lost
//!    slice fall back along the documented path and say so.
//! 3. A corrupt model-cache entry is quarantined aside and the model is
//!    re-characterized, never trusted.

#![cfg(feature = "fault-injection")]

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::model::ProximityModel;
use proxim_model::{DegradedReason, InputEvent, SliceKind};
use proxim_numeric::pwl::Edge;
use proxim_spice::faultpoint::{self, FaultConfig};
use std::sync::{Mutex, PoisonError};

/// The fault configuration is process-global; serialize the tests that
/// touch it so cargo's parallel test runner cannot interleave them.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the fault configuration armed, and always disarms after —
/// even when the test body panics — so a failure here cannot poison the
/// other tests.
fn with_faults<T>(cfg: FaultConfig, f: impl FnOnce() -> T) -> T {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            faultpoint::disarm();
        }
    }
    let _disarm = Disarm;
    faultpoint::configure(cfg);
    f()
}

#[test]
fn zero_rate_faults_are_byte_identical_across_worker_counts() {
    let cfg = FaultConfig {
        newton_rate: 0.0,
        accept_rate: 0.0,
        kill_rate: 0.0,
        seed: 7,
    };
    with_faults(cfg, || {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let seq = CharacterizeOptions {
            jobs: 1,
            ..CharacterizeOptions::fast()
        };
        let par = CharacterizeOptions {
            jobs: 4,
            ..CharacterizeOptions::fast()
        };
        let (m1, s1) = ProximityModel::characterize_with_stats(&cell, &tech, &seq).unwrap();
        let (m4, s4) = ProximityModel::characterize_with_stats(&cell, &tech, &par).unwrap();
        assert_eq!(
            m1.to_json().unwrap(),
            m4.to_json().unwrap(),
            "zero-rate faults must not perturb the model"
        );
        assert!(!m1.is_degraded());
        assert_eq!(s1.failed_jobs, 0);
        assert_eq!(s4.failed_jobs, 0);
        assert_eq!(s1.recoveries, 0, "nothing to recover from at zero rates");
        assert_eq!(s1.degraded_slices, 0);
    });
}

#[test]
fn fault_pressure_degrades_slices_instead_of_failing() {
    // 20% of transient Newton solves fail (the recovery ladder absorbs
    // these), a few step acceptances are vetoed, and a small fraction of
    // whole runs are doomed beyond recovery (these produce degraded
    // slices). The seed is part of the test: faults are deterministic in
    // (seed, run), so this exact failure pattern reproduces every run on
    // every thread count.
    let cfg = FaultConfig {
        newton_rate: 0.20,
        accept_rate: 0.05,
        kill_rate: 0.02,
        seed: 1996,
    };
    with_faults(cfg, || {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let opts = CharacterizeOptions {
            jobs: 2,
            ..CharacterizeOptions::fast()
        };
        let (model, stats) = ProximityModel::characterize_with_stats(&cell, &tech, &opts)
            .expect("fault pressure must degrade, not fail");

        assert!(
            stats.recoveries > 0,
            "a 20% Newton fault rate must exercise the recovery ladder"
        );
        assert!(
            stats.failed_jobs > 0,
            "the kill rate must doom at least one run (tune the seed if the \
             characterization volume changes)"
        );
        assert!(model.is_degraded());
        assert_eq!(stats.degraded_slices, model.degraded_slices().len());
        for d in model.degraded_slices() {
            assert!(
                !d.reason.is_empty(),
                "degraded slices must carry provenance"
            );
        }

        // Every degraded dual whose two singles survived must still answer
        // proximity queries — via the documented single-input fallback,
        // flagged on the result.
        let mut checked = 0;
        for d in model.degraded_slices() {
            if d.kind != SliceKind::Dual {
                continue;
            }
            let partner = (d.pin + 1) % 2;
            if model.single_model(d.pin, d.edge).is_none()
                || model.single_model(partner, d.edge).is_none()
            {
                continue;
            }
            // Make the degraded pin dominant: for falling inputs on a NAND
            // the first threshold crossing causes the output (rank 1); for
            // rising inputs the last one does.
            let (t_deg, t_partner) = match d.edge {
                Edge::Falling => (0.0, 50e-12),
                Edge::Rising => (50e-12, 0.0),
            };
            let events = [
                InputEvent::new(d.pin, d.edge, t_deg, 400e-12),
                InputEvent::new(partner, d.edge, t_partner, 400e-12),
            ];
            let t = model
                .gate_timing(&events)
                .expect("degraded duals must fall back, not error");
            assert_eq!(
                t.degradation,
                Some(DegradedReason::DualSliceMissing),
                "a query inside the proximity window of a degraded dual \
                 must be flagged"
            );
            assert!(t.delay > 0.0 && t.output_transition > 0.0);
            checked += 1;
        }
        assert!(
            checked > 0,
            "seed 1996 must degrade at least one dual with surviving \
             singles; degraded: {:?}",
            model.degraded_slices()
        );

        // A query that never needs the lost slice stays full-fidelity.
        let lone = model.gate_timing(&[InputEvent::new(0, Edge::Rising, 0.0, 400e-12)]);
        if let Ok(t) = lone {
            assert_eq!(t.degradation, None);
        }
    });
}

#[test]
fn fault_injected_trace_roundtrips_through_chrome_converter() {
    use proxim_obs as obs;
    use std::io::Write;
    use std::sync::Arc;

    // An in-memory sink; the trace level and sink are process-global, but
    // every test in this binary serializes on FAULT_LOCK (taken by
    // with_faults), so nothing else can emit into it.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);
    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    struct ObsGuard;
    impl Drop for ObsGuard {
        fn drop(&mut self) {
            obs::sink::uninstall();
            obs::set_level(obs::Level::Off);
        }
    }

    // The same fault pressure as the degradation test: recovery rungs and
    // doomed runs guarantee the trace carries recovery events, not just the
    // healthy-path spans.
    let cfg = FaultConfig {
        newton_rate: 0.20,
        accept_rate: 0.05,
        kill_rate: 0.02,
        seed: 1996,
    };
    let (stats, jsonl) = with_faults(cfg, || {
        let _guard = ObsGuard;
        let cap = Capture::default();
        obs::sink::install_writer(Box::new(cap.clone()));
        obs::set_level(obs::Level::Trace);
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let opts = CharacterizeOptions {
            jobs: 2,
            ..CharacterizeOptions::fast()
        };
        let (_, stats) = ProximityModel::characterize_with_stats(&cell, &tech, &opts)
            .expect("fault pressure must degrade, not fail");
        obs::sink::flush();
        let mut buf = cap.0.lock().unwrap_or_else(PoisonError::into_inner);
        let jsonl = String::from_utf8(std::mem::take(&mut *buf)).unwrap();
        (stats, jsonl)
    });

    assert!(stats.recoveries > 0);
    assert!(
        stats.recovery_seconds > 0.0,
        "recovery rungs must report the wall-clock they burned"
    );
    assert_eq!(stats.invariant_violation(), None);

    // The degradation story is visible in the trace, not just the totals.
    for marker in [
        "\"name\":\"spice.recover\"",
        "\"name\":\"char.slice.degraded\"",
        "\"name\":\"char.job\"",
    ] {
        assert!(jsonl.contains(marker), "trace must contain {marker}");
    }

    // And the whole fault-laden trace still converts cleanly.
    let chrome = obs::chrome::chrome_trace(&jsonl).expect("conversion must succeed");
    let parsed = obs::json::Json::parse(&chrome).expect("chrome output is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert_eq!(events.len(), jsonl.lines().count());
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(|n| n.as_str()) == Some("spice.recover")
                && e.get("ph").and_then(|p| p.as_str()) == Some("i")
        }),
        "recovery events survive conversion as instants"
    );
}

#[test]
fn deadline_expiry_mid_recovery_reports_deadline_with_trace() {
    use proxim_spice::circuit::Waveform;
    use proxim_spice::tran::TranOptions;
    use proxim_spice::{AnalysisError, CancelToken};
    use std::time::Duration;

    // Half the Newton solves fail: the recovery ladder is climbing for
    // essentially the whole run, and no attempt can string together enough
    // converged solves to finish before the deadline.
    let cfg = FaultConfig {
        newton_rate: 0.5,
        accept_rate: 0.0,
        kill_rate: 0.0,
        seed: 11,
    };
    with_faults(cfg, || {
        let tech = Technology::demo_5v();
        let mut net = Cell::nand(2).netlist(&tech, 100e-15);
        net.set_level(0, true);
        net.set_waveform(1, Waveform::ramp(0.2e-9, 0.5e-9, 0.0, tech.vdd));

        // Unlimited restarts take `NoConvergence` off the table: under this
        // fault pressure the ladder cycles (cuts, rungs, restarts) until the
        // deadline fires, whatever the machine's speed — so the only
        // possible outcomes are completion (excluded by the fault rate) and
        // `DeadlineExceeded` from inside the ladder.
        let mut options = TranOptions::to(5e-9);
        options.recovery.max_restarts = u32::MAX;
        let cancel = CancelToken::with_deadline_in(Duration::from_millis(25));
        let err = net
            .circuit
            .tran_cancellable(&options, &cancel)
            .expect_err("a 10 ms deadline must expire inside this run");

        match err {
            AnalysisError::DeadlineExceeded { recovery, .. } => {
                assert!(
                    recovery.total() > 0,
                    "a deadline that expires while the ladder is climbing \
                     must report the recovery attempts it interrupted"
                );
            }
            other => panic!(
                "deadline expiry mid-recovery must surface as \
                 DeadlineExceeded, got: {other}"
            ),
        }
    });
}

#[test]
fn corrupt_cache_entry_is_quarantined_and_recharacterized() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faultpoint::disarm();

    use proxim_model::jobs::CharStats;
    use proxim_model::persist::ModelCache;

    let tech = Technology::demo_5v();
    let cell = Cell::inv();
    let opts = CharacterizeOptions::fast();
    let dir = std::env::temp_dir().join("proxim_fault_cache_test");
    std::fs::remove_dir_all(&dir).ok();
    let cache = ModelCache::new(&dir);

    // Seed a valid entry, then flip bytes in the middle of it.
    let mut stats = CharStats::default();
    cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
    let key = ModelCache::key(&cell, &tech, &opts).unwrap();
    let path = cache.entry_path(key);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 64).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xa5;
    }
    std::fs::write(&path, &bytes).unwrap();

    let mut stats = CharStats::default();
    let model = cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
    assert_eq!((stats.cache_hits, stats.cache_misses), (0, 1));
    assert_eq!(stats.cache_quarantined, 1);
    assert!(stats.sims_run > 0, "the corrupt entry must not be served");
    assert!(cache
        .quarantined_path(key, proxim_model::persist::fnv1a_64(&bytes))
        .exists());
    assert!(!model.is_degraded());

    // The fresh entry is served on the next call.
    let mut stats = CharStats::default();
    cache.characterize(&cell, &tech, &opts, &mut stats).unwrap();
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 0));

    std::fs::remove_dir_all(&dir).ok();
}
