//! Flight-recorder suite: the always-on in-memory ring (`proxim_obs::flight`)
//! under wrap-around and concurrent writers.
//!
//! The ring is process-global and its capacity is fixed at the first
//! [`flight::enable`], so these tests live in their own integration binary
//! (their own process) where they control the capacity — the in-crate unit
//! tests share the library test process and deliberately use the default
//! capacity. The two tests here share one ring and serialize on a lock;
//! each writes at least a full lap so the ring it dumps is entirely its
//! own regardless of which ran first.

use proxim_obs::{flight, json::Json};
use std::sync::{Mutex, PoisonError};

/// Small enough that wrap-around and full-lap overwrites are cheap to
/// drive, large enough that the modulo arithmetic is not degenerate.
const CAPACITY: usize = 64;

/// One ring per process: serialize the tests that write to it.
static RING_LOCK: Mutex<()> = Mutex::new(());

/// Enables the shared ring and asserts no test accidentally created it
/// with a different size (capacity is first-enable-wins).
fn enable_ring() -> usize {
    let cap = flight::enable(CAPACITY);
    assert_eq!(cap, CAPACITY, "both tests must agree on the ring size");
    cap
}

/// A self-describing single-line event record: `name` identifies the
/// writer, `ts` its sequence within that writer.
fn event_line(name: &str, ts: u64) -> String {
    format!("{{\"t\":\"event\",\"name\":\"{name}\",\"tid\":1,\"ts\":{ts}}}")
}

/// Splits a dump into its header and body lines, sanity-checking the
/// header shape on the way.
fn parse_dump(dump: &str) -> (Json, Vec<Json>) {
    let mut lines = dump.lines();
    let header_line = lines.next().expect("dump always starts with a header");
    let header = Json::parse(header_line).expect("flight header parses");
    assert_eq!(header.get("t").and_then(Json::as_str), Some("flight"));
    let body = lines
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("torn dump record {l:?}: {e}")))
        .collect();
    (header, body)
}

fn header_u64(header: &Json, key: &str) -> u64 {
    header
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("header missing {key}")) as u64
}

#[test]
fn wrap_around_keeps_exactly_the_last_capacity_records_in_order() {
    let _lock = RING_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let cap = enable_ring();

    // Three full laps: every slot is overwritten at least twice, and the
    // ring ends up holding only this test's records no matter what ran
    // before it in this process.
    let laps = 3;
    let before = flight::recorded();
    for i in 0..(laps * cap as u64) {
        flight::record(&event_line("wrap", i));
    }
    assert_eq!(
        flight::recorded(),
        before + laps * cap as u64,
        "recorded() counts every offer, including overwritten ones"
    );

    let (header, body) = parse_dump(&flight::dump());
    assert_eq!(header_u64(&header, "capacity"), cap as u64);
    assert_eq!(header_u64(&header, "recorded"), before + laps * cap as u64);
    assert_eq!(
        header_u64(&header, "dropped"),
        before + (laps - 1) * cap as u64,
        "everything but the last lap fell off the back"
    );

    // The survivors are exactly the last `cap` writes, oldest-first.
    assert_eq!(body.len(), cap, "a full ring dumps capacity records");
    for (slot, rec) in body.iter().enumerate() {
        assert_eq!(rec.get("name").and_then(Json::as_str), Some("wrap"));
        let ts = rec.get("ts").and_then(Json::as_f64).expect("ts") as u64;
        assert_eq!(
            ts,
            (laps - 1) * cap as u64 + slot as u64,
            "dump must be the final lap in write order"
        );
    }

    // A dump is sink-format JSONL: the Chrome converter takes it whole,
    // header included.
    let chrome = proxim_obs::chrome::chrome_trace(&flight::dump())
        .expect("flight dumps convert to Chrome traces");
    Json::parse(&chrome).expect("chrome output is valid JSON");
}

#[test]
fn concurrent_writers_never_tear_or_fabricate_records() {
    const WRITERS: usize = 4;
    let _lock = RING_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let cap = enable_ring();

    // Four writers, half a lap each — two full laps combined, so the ring
    // is entirely this test's at dump time, and no single writer can fill
    // it alone (64 survivors from 32-record writers must span at least
    // two). The slot-claim order under the race is arbitrary, but every
    // record in the final ring must be byte-identical to something some
    // writer offered — no tearing, no fabrication.
    let per_writer = cap as u64 / 2;
    let before = flight::recorded();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            s.spawn(move || {
                let name = format!("writer{w}");
                for i in 0..per_writer {
                    flight::record(&event_line(&name, i));
                }
            });
        }
    });
    assert_eq!(
        flight::recorded(),
        before + WRITERS as u64 * per_writer,
        "no offer may be lost from the global count"
    );

    let (header, body) = parse_dump(&flight::dump());
    assert_eq!(header_u64(&header, "capacity"), cap as u64);
    assert_eq!(body.len(), cap, "a full ring dumps capacity records");
    let mut seen_writers = std::collections::BTreeSet::new();
    for rec in &body {
        let name = rec
            .get("name")
            .and_then(Json::as_str)
            .expect("every record has its writer name intact");
        let writer: usize = name
            .strip_prefix("writer")
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("record from outside this test survived: {name:?}"));
        assert!(writer < WRITERS);
        seen_writers.insert(writer);
        let ts = rec.get("ts").and_then(Json::as_f64).expect("ts") as u64;
        assert!(ts < per_writer, "ts {ts} was never written");
    }
    assert!(
        seen_writers.len() > 1,
        "four racing writers should leave more than one voice in the ring"
    );
}
