//! Crash/resume chaos harness for checkpointed characterization.
//!
//! Runs characterization in a child process (`src/bin/chaos_child.rs`),
//! kills it at a seeded-random point mid-run, resumes it with the same
//! journal, and asserts the resumed model is **byte-identical** to one
//! characterized without interruption — the core crash-consistency promise
//! of `proxim_model::checkpoint`. A second test exercises the graceful
//! path: `SIGTERM` trips the cooperative cancel token, the child exits
//! with its dedicated code after a final checkpoint flush, and the run
//! resumes from that checkpoint.
//!
//! Override the kill point with `PROXIM_CHAOS_SEED=<n>` to explore other
//! interruption points; the default seed keeps CI deterministic.
//!
//! The second half of the file points the same harness at the timing-query
//! daemon (`src/bin/proxim_serve.rs`): `SIGKILL` mid-binary-store-write
//! must leave the library loadable and byte-identical after restart, and
//! `SIGTERM` with a socket full of in-flight queries must drain — every
//! client gets a complete, typed response, the final metrics flush lands,
//! and the daemon exits `0`.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_chaos_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn child_command(out: &Path, journal: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_chaos_child"));
    cmd.arg("--out")
        .arg(out)
        .arg("--journal")
        .arg(journal)
        .arg("--jobs")
        .arg("2");
    cmd
}

/// Completed (newline-terminated) journal lines, header excluded — the
/// number of durably checkpointed jobs.
fn journal_entries(path: &Path) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .split_inclusive('\n')
            .filter(|l| l.ends_with('\n'))
            .count()
            .saturating_sub(1),
        Err(_) => 0,
    }
}

/// Polls the journal until it holds at least `target` entries (returns
/// true) or the child exits first (returns false).
fn wait_for_entries(child: &mut Child, journal: &Path, target: usize) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        if journal_entries(journal) >= target {
            return true;
        }
        if child.try_wait().expect("child wait").is_some() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("journal never reached {target} entries");
}

fn skipped_from_stdout(output: &Output) -> usize {
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("skipped=").and_then(|v| v.parse().ok()))
        .unwrap_or_else(|| panic!("no skipped= marker in child stdout: {stdout:?}"))
}

/// The uninterrupted reference run: exact bytes every chaos run must match.
fn reference_model(dir: &Path) -> Vec<u8> {
    let out = dir.join("reference.json");
    let journal = dir.join("reference.journal");
    let output = child_command(&out, &journal)
        .output()
        .expect("reference child");
    assert!(
        output.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(
        skipped_from_stdout(&output),
        0,
        "a fresh journal must skip nothing"
    );
    std::fs::read(&out).expect("reference model bytes")
}

/// The seeded kill point: an entry count the parent waits for before
/// pulling the trigger. A tiny LCG keeps runs reproducible per seed while
/// `PROXIM_CHAOS_SEED` lets a human explore other interruption points.
fn kill_point(seed: u64) -> usize {
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    3 + ((x >> 33) % 10) as usize
}

fn chaos_seed() -> u64 {
    std::env::var("PROXIM_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1996)
}

#[test]
fn sigkill_then_resume_reproduces_the_uninterrupted_model_bytewise() {
    let dir = scratch_dir("sigkill");
    let reference = reference_model(&dir);

    let out = dir.join("chaos.json");
    let journal = dir.join("chaos.journal");
    let target = kill_point(chaos_seed());

    let mut child = child_command(&out, &journal).spawn().expect("chaos child");
    let reached = wait_for_entries(&mut child, &journal, target);
    assert!(
        reached,
        "child finished before the kill point ({target} entries) — \
         the chaos window should be far larger than that"
    );
    child.kill().expect("SIGKILL");
    child.wait().expect("reap killed child");
    assert!(
        !out.exists(),
        "a killed run must not leave a (partial or complete) model behind"
    );
    let checkpointed = journal_entries(&journal);
    assert!(
        checkpointed >= target,
        "kill raced the journal: {checkpointed} < {target}"
    );

    // Resume with the same journal: finished work is skipped, and the
    // result is byte-identical to the uninterrupted run.
    let output = child_command(&out, &journal)
        .output()
        .expect("resume child");
    assert!(
        output.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let skipped = skipped_from_stdout(&output);
    assert!(
        skipped > 0,
        "resume must skip checkpointed jobs (journal had {checkpointed})"
    );
    let resumed = std::fs::read(&out).expect("resumed model bytes");
    assert_eq!(
        resumed, reference,
        "resumed model differs from the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_leaves_a_flight_dump_within_one_entry_of_the_journal() {
    let dir = scratch_dir("flight_kill");
    let out = dir.join("model.json");
    let journal = dir.join("run.journal");
    let dump_path = dir.join("flight.jsonl");

    // Arm the flight recorder with per-checkpoint mirror dumps: the
    // journal's record path re-dumps the ring (atomically) after every
    // append, so even SIGKILL — no hooks, no drop glue — leaves a dump on
    // disk. Capacity is sized so a full characterization's spans cannot
    // wrap the checkpoint events out of the ring.
    let mut child = child_command(&out, &journal);
    child
        .env("PROXIM_FLIGHT", &dump_path)
        .env("PROXIM_FLIGHT_SYNC", "1")
        .env("PROXIM_FLIGHT_CAPACITY", "65536");
    let target = kill_point(chaos_seed());
    let mut child = child.spawn().expect("flight chaos child");
    let reached = wait_for_entries(&mut child, &journal, target);
    assert!(reached, "child finished before the kill point");
    child.kill().expect("SIGKILL");
    child.wait().expect("reap killed child");

    // The dump survived the kill and is whole: the mirror goes through an
    // atomic write, so whatever instant the kill hit, the file on disk is
    // a complete dump, never a torn one.
    let dump = std::fs::read_to_string(&dump_path)
        .expect("a sync-armed flight dump must exist after SIGKILL");
    let mut lines = dump.lines();
    let header = proxim_obs::json::Json::parse(lines.next().expect("dump header"))
        .expect("flight header parses");
    assert_eq!(
        header.get("t").and_then(proxim_obs::json::Json::as_str),
        Some("flight")
    );
    let mut checkpoint_events = 0usize;
    for line in lines {
        let rec = proxim_obs::json::Json::parse(line)
            .unwrap_or_else(|e| panic!("torn record in post-kill dump {line:?}: {e}"));
        if rec.get("name").and_then(proxim_obs::json::Json::as_str)
            == Some("char.checkpoint.record")
        {
            checkpoint_events += 1;
        }
    }

    // The crash-consistency contract: the checkpoint event lands in the
    // ring before the journal append and the mirror dump is written after
    // it, all under the journal lock — so the dump trails the journal by
    // at most the one entry whose mirror the kill preempted.
    let journaled = journal_entries(&journal);
    assert!(
        checkpoint_events > 0,
        "the dump must capture the checkpoint activity before the kill"
    );
    assert!(
        journaled == checkpoint_events || journaled == checkpoint_events + 1,
        "flight dump ({checkpoint_events} checkpoint events) must be within one \
         entry of the journal tail ({journaled} entries)"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_flushes_a_final_checkpoint_and_exits_typed() {
    let dir = scratch_dir("sigterm");
    let reference = reference_model(&dir);

    let out = dir.join("graceful.json");
    let journal = dir.join("graceful.journal");

    let mut child = child_command(&out, &journal).spawn().expect("chaos child");
    let reached = wait_for_entries(&mut child, &journal, 2);
    assert!(reached, "child finished before SIGTERM could be delivered");
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status = child.wait().expect("reap terminated child");
    assert_eq!(
        status.code(),
        Some(86),
        "SIGTERM must surface as the cooperative-cancellation exit code"
    );
    assert!(!out.exists(), "a cancelled run must not save a model");
    let flushed = journal_entries(&journal);
    assert!(flushed >= 2, "the final checkpoint flush went missing");

    // The graceful stop is resumable like any crash.
    let output = child_command(&out, &journal)
        .output()
        .expect("resume child");
    assert!(
        output.status.success(),
        "resume after SIGTERM failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(skipped_from_stdout(&output) > 0);
    assert_eq!(std::fs::read(&out).expect("model bytes"), reference);

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Daemon chaos: the binary model store and the drain path
// ---------------------------------------------------------------------------

fn serve_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_proxim_serve"))
}

/// Lines of `marker` currently present in a file the child's stdout is
/// piped to — the serve-side analogue of `journal_entries`.
fn marker_count(path: &Path, marker: &str) -> usize {
    std::fs::read_to_string(path)
        .map(|text| text.lines().filter(|l| l.contains(marker)).count())
        .unwrap_or(0)
}

/// Polls `path` until it holds at least `target` lines containing `marker`
/// (true) or the child exits first (false).
fn wait_for_marker(child: &mut Child, path: &Path, marker: &str, target: usize) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        if marker_count(path, marker) >= target {
            return true;
        }
        if child.try_wait().expect("child wait").is_some() {
            return marker_count(path, marker) >= target;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!(
        "child never wrote {target}x {marker:?} to {}",
        path.display()
    );
}

fn stdout_file(dir: &Path, name: &str) -> (std::fs::File, PathBuf) {
    let path = dir.join(name);
    let file = std::fs::File::create(&path).expect("stdout capture file");
    (file, path)
}

#[test]
fn sigkill_mid_store_write_leaves_the_library_loadable_and_byte_identical() {
    use proxim_serve::{ModelLibrary, ModelStore};

    let dir = scratch_dir("store_kill");

    // Reference: one clean churn round; the store entry's exact bytes.
    // Characterization is deterministic, so every later save of the same
    // demo model must reproduce these bytes.
    let ref_store = dir.join("ref_store");
    let status = serve_bin()
        .args(["churn", "--rounds", "1", "--store"])
        .arg(&ref_store)
        .status()
        .expect("reference churn");
    assert!(status.success(), "reference churn failed");
    let entry_rel = "nand2_demo.pxm";
    let reference = std::fs::read(ref_store.join(entry_rel)).expect("reference entry");

    // Chaos: a long churn, killed with SIGKILL at a seeded round count —
    // the kill window covers the whole save loop, including the store's
    // staged write, fsync, and rename.
    let chaos_store = dir.join("chaos_store");
    let (capture, capture_path) = stdout_file(&dir, "churn.out");
    let target = kill_point(chaos_seed());
    let mut child = serve_bin()
        .args(["churn", "--rounds", "1000000", "--store"])
        .arg(&chaos_store)
        .stdout(Stdio::from(capture))
        .spawn()
        .expect("chaos churn");
    let reached = wait_for_marker(&mut child, &capture_path, "round=", target);
    assert!(
        reached,
        "churn finished before the kill point ({target} rounds)"
    );
    child.kill().expect("SIGKILL");
    child.wait().expect("reap killed child");

    // The store must be loadable right now: whatever instant the kill hit,
    // the entry is a complete old or complete new container (here: the
    // same bytes), and any staged temp file is crash debris, not damage.
    let store = ModelStore::new(&chaos_store);
    let library = ModelLibrary::open(&store);
    assert_eq!(
        library.names(),
        vec!["nand2_demo".to_string()],
        "the killed store must serve its entry"
    );
    assert!(
        library.report().quarantined.is_empty(),
        "an atomic-write kill must never produce a corrupt entry: {:?}",
        library.report().quarantined
    );
    assert_eq!(
        std::fs::read(chaos_store.join(entry_rel)).expect("post-kill entry"),
        reference,
        "post-SIGKILL store entry differs from the reference bytes"
    );

    // Restart the writer; the store stays byte-identical and clean.
    let status = serve_bin()
        .args(["churn", "--rounds", "1", "--store"])
        .arg(&chaos_store)
        .status()
        .expect("restart churn");
    assert!(status.success(), "churn restart failed");
    assert_eq!(
        std::fs::read(chaos_store.join(entry_rel)).expect("post-restart entry"),
        reference
    );
    let library = ModelLibrary::open(&ModelStore::new(&chaos_store));
    assert!(library.report().quarantined.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_reload_storm_leaves_exactly_one_complete_generation() {
    use proxim_cells::{Cell, Technology};
    use proxim_model::characterize::CharacterizeOptions;
    use proxim_model::ProximityModel;
    use proxim_serve::{ModelLibrary, ModelStore};

    let dir = scratch_dir("reload_kill");
    let store_dir = dir.join("store");
    let store = ModelStore::new(&store_dir);

    // Two byte-distinct generations of the same entry: an inverter and a
    // NAND2 alternate under one name, so a torn swap-side write would be
    // detectable as a blend of the two.
    let tech = Technology::demo_5v();
    let model_a = ProximityModel::characterize(&Cell::inv(), &tech, &CharacterizeOptions::fast())
        .expect("model A");
    let model_b = ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())
        .expect("model B");
    store.save("cell", &model_a).expect("seed A");
    let bytes_a = std::fs::read(store.entry_path("cell")).expect("bytes A");
    store.save("cell", &model_b).expect("seed B");
    let bytes_b = std::fs::read(store.entry_path("cell")).expect("bytes B");
    assert_ne!(bytes_a, bytes_b, "the generations must differ byte-wise");
    store.save("cell", &model_a).expect("reset to A");

    let socket = dir.join("serve.sock");
    let (capture, capture_path) = stdout_file(&dir, "serve.out");
    let mut daemon = serve_bin()
        .args(["serve", "--store"])
        .arg(&store_dir)
        .arg("--socket")
        .arg(&socket)
        .stdout(Stdio::from(capture))
        .spawn()
        .expect("daemon spawns");
    assert!(
        wait_for_marker(&mut daemon, &capture_path, "ready", 1),
        "daemon died before becoming ready"
    );

    // A seeded number of completed rewrite+SIGHUP+swap cycles, then one
    // final rewrite and SIGHUP answered with SIGKILL instead of a wait —
    // the kill lands somewhere inside candidate load/judge/swap.
    let completed = kill_point(chaos_seed());
    let hup = |pid: u32| {
        let status = Command::new("kill")
            .arg("-HUP")
            .arg(pid.to_string())
            .status()
            .expect("send SIGHUP");
        assert!(status.success(), "kill -HUP failed");
    };
    for i in 0..completed {
        let model = if i % 2 == 0 { &model_b } else { &model_a };
        store.save("cell", model).expect("rewrite entry");
        hup(daemon.id());
        assert!(
            wait_for_marker(&mut daemon, &capture_path, "reloaded generation=", i + 1),
            "daemon died mid-storm"
        );
    }
    let model = if completed.is_multiple_of(2) {
        &model_b
    } else {
        &model_a
    };
    store.save("cell", model).expect("final rewrite");
    hup(daemon.id());
    daemon.kill().expect("SIGKILL");
    daemon.wait().expect("reap killed daemon");

    // Whatever instant the kill hit, the store holds exactly one complete
    // generation: the entry is byte-identical to A or to B, loads clean,
    // and a restarted daemon serves it.
    let post = std::fs::read(store.entry_path("cell")).expect("post-kill entry");
    assert!(
        post == bytes_a || post == bytes_b,
        "post-kill entry is neither generation ({} bytes)",
        post.len()
    );
    let library = ModelLibrary::open(&ModelStore::new(&store_dir));
    assert_eq!(library.names(), vec!["cell".to_string()]);
    assert!(
        library.report().quarantined.is_empty() && library.report().quarantine_failed.is_empty(),
        "a reload-storm kill must never corrupt the store: {:?}",
        library.report()
    );

    let (capture, capture_path) = stdout_file(&dir, "serve_restart.out");
    let mut daemon = serve_bin()
        .args(["serve", "--store"])
        .arg(&store_dir)
        .arg("--socket")
        .arg(&socket)
        .stdout(Stdio::from(capture))
        .spawn()
        .expect("daemon restarts");
    assert!(
        wait_for_marker(&mut daemon, &capture_path, "ready", 1),
        "restarted daemon died"
    );
    assert_eq!(
        marker_count(&capture_path, "models=1"),
        1,
        "the restarted daemon must serve the surviving generation"
    );
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(daemon.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = daemon.wait().expect("reap restarted daemon");
    assert_eq!(status.code(), Some(0));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_with_a_socket_full_of_in_flight_queries_drains_cleanly() {
    use std::os::unix::net::UnixStream;

    const IN_FLIGHT: usize = 64;
    let dir = scratch_dir("serve_drain");
    let store = dir.join("store");
    let socket = dir.join("serve.sock");
    let metrics = dir.join("final_metrics.json");

    // Seed the store once (cheap, cached nothing): the daemon's --demo
    // path characterizes and saves before binding the socket.
    let (capture, capture_path) = stdout_file(&dir, "serve.out");
    let mut daemon = serve_bin()
        .args(["serve", "--demo", "--workers", "2", "--queue", "64"])
        .args(["--stall-ms", "20", "--deadline-ms", "10000"])
        .arg("--store")
        .arg(&store)
        .arg("--socket")
        .arg(&socket)
        .arg("--metrics-out")
        .arg(&metrics)
        .stdout(Stdio::from(capture))
        .spawn()
        .expect("daemon spawns");
    let ready = wait_for_marker(&mut daemon, &capture_path, "ready", 1);
    assert!(ready, "daemon died before becoming ready");

    // Fill the sky with queries: 64 connections, one query frame each,
    // none of them read yet. A 20 ms worker stall across 2 workers keeps
    // the queue deep when the SIGTERM lands.
    let query =
        br#"{"op":"query","model":"nand2_demo","events":[{"pin":0,"edge":"fall","t":0.0,"tt":4e-10},{"pin":1,"edge":"fall","t":5e-11,"tt":4e-10}]}"#;
    let mut frame = ((query.len() as u32).to_be_bytes()).to_vec();
    frame.extend_from_slice(query);
    let mut clients: Vec<UnixStream> = (0..IN_FLIGHT)
        .map(|i| {
            let mut s =
                UnixStream::connect(&socket).unwrap_or_else(|e| panic!("client {i} connect: {e}"));
            s.set_read_timeout(Some(Duration::from_secs(60)))
                .expect("timeout");
            s.write_all(&frame)
                .unwrap_or_else(|e| panic!("client {i} send: {e}"));
            s
        })
        .collect();
    // Let every frame be read and admitted before pulling the trigger.
    std::thread::sleep(Duration::from_millis(500));

    let term = Command::new("kill")
        .arg("-TERM")
        .arg(daemon.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");

    // Every in-flight client must receive one COMPLETE, parseable, typed
    // response — a drain may finish or shed work, but never tear a frame
    // or silently drop a request.
    let mut answered = 0usize;
    for (i, stream) in clients.iter_mut().enumerate() {
        let mut bytes = Vec::new();
        stream
            .read_to_end(&mut bytes)
            .unwrap_or_else(|e| panic!("client {i} read: {e}"));
        assert!(bytes.len() >= 4, "client {i}: no response before close");
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert_eq!(bytes.len(), 4 + len, "client {i}: torn response frame");
        let body = String::from_utf8(bytes[4..].to_vec())
            .unwrap_or_else(|e| panic!("client {i}: non-UTF8 response: {e}"));
        let typed = body.contains("\"timing\"")
            || body.contains("overloaded")
            || body.contains("deadline_exceeded")
            || body.contains("shutting_down");
        assert!(typed, "client {i}: untyped drain response: {body}");
        if body.contains("\"timing\"") {
            answered += 1;
        }
    }
    assert!(
        answered > 0,
        "admitted work must complete during the drain, not be abandoned"
    );

    // Clean exit: code 0, a "drained" line, and the flushed final metrics.
    let status = daemon.wait().expect("reap daemon");
    assert_eq!(status.code(), Some(0), "drain must exit cleanly");
    assert_eq!(marker_count(&capture_path, "drained"), 1);
    let metrics_json = std::fs::read_to_string(&metrics).expect("final metrics flush must exist");
    let snap = proxim_obs::json::Json::parse(&metrics_json).expect("metrics parse");
    let requests = snap
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .and_then(proxim_obs::json::Json::as_f64)
        .expect("serve.requests in flushed metrics");
    assert!(
        requests >= answered as f64,
        "flushed metrics must count the drained work ({requests} < {answered})"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The fleet chaos promise: `SIGKILL` one of three supervised replicas
/// under a 64-client closed-loop churn and *no client sees a failed
/// request* — connect-refused and mid-exchange deaths are absorbed by
/// `FleetClient` failover (safe: queries are idempotent), the supervisor
/// restarts the victim, and the fleet ends the run back at full strength.
#[test]
fn fleet_sigkill_one_of_three_replicas_is_invisible_to_64_churning_clients() {
    use proxim_cells::{Cell, Technology};
    use proxim_model::characterize::CharacterizeOptions;
    use proxim_model::ProximityModel;
    use proxim_obs::serve_metrics as sm;
    use proxim_serve::balance::{FleetClient, FleetClientOptions};
    use proxim_serve::client::RetryPolicy;
    use proxim_serve::fleet::{Fleet, FleetOptions, ReplicaState};
    use proxim_serve::ModelStore;
    use std::sync::Arc;

    let dir = scratch_dir("fleet_sigkill");
    let store = ModelStore::new(dir.join("store"));
    let tech = Technology::demo_5v();
    let model = ProximityModel::characterize(&Cell::inv(), &tech, &CharacterizeOptions::fast())
        .expect("characterize inv");
    store.save("inv", &model).expect("seed store");

    let fleet = Fleet::start(FleetOptions {
        replicas: 3,
        daemon: env!("CARGO_BIN_EXE_proxim_serve").into(),
        dir: dir.join("fleet"),
        store: dir.join("store"),
        probe_interval: Duration::from_millis(20),
        restart_backoff_base: Duration::from_millis(20),
        restart_backoff_cap: Duration::from_millis(200),
        ..FleetOptions::default()
    })
    .expect("fleet starts");
    assert!(fleet.wait_ready(Duration::from_secs(60)), "fleet came up");

    const QUERY: &str =
        r#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}"#;
    let client = Arc::new(FleetClient::new(
        fleet.sockets(),
        FleetClientOptions {
            retry: RetryPolicy {
                base: Duration::from_millis(5),
                cap: Duration::from_millis(100),
                ..RetryPolicy::default()
            },
            ..FleetClientOptions::default()
        },
    ));

    // 64 closed-loop clients, ~30 queries each; the SIGKILL lands at a
    // seeded point inside the churn.
    let victim = fleet.states()[chaos_seed() as usize % 3]
        .pid
        .expect("victim pid");
    let barrier = Arc::new(std::sync::Barrier::new(65));
    let clients: Vec<_> = (0..64)
        .map(|c| {
            let client = Arc::clone(&client);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut failures = Vec::new();
                for q in 0..30 {
                    match client.call(QUERY) {
                        Ok(out) if out.response.contains("\"timing\"") => {}
                        Ok(out) => failures.push(format!("client {c} query {q}: {}", out.response)),
                        Err(e) => failures.push(format!("client {c} query {q}: {e}")),
                    }
                }
                failures
            })
        })
        .collect();
    barrier.wait();
    std::thread::sleep(Duration::from_millis(
        5 + (kill_point(chaos_seed()) as u64) * 10,
    ));
    let status = Command::new("kill")
        .arg("-9")
        .arg(victim.to_string())
        .status()
        .expect("send SIGKILL");
    assert!(status.success(), "kill -9 failed");

    let failures: Vec<String> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("client thread"))
        .collect();
    assert!(
        failures.is_empty(),
        "zero client-visible failures required, got {}:\n{}",
        failures.len(),
        failures.join("\n")
    );

    // Supervised restart back to full strength: 3/3 up, restart counted.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let states = fleet.states();
        let up = states
            .iter()
            .filter(|s| s.state == ReplicaState::Up)
            .count();
        let restarts: u64 = states.iter().map(|s| s.restarts).sum();
        if up == 3 && restarts >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never returned to full strength: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    fleet.begin_shutdown();
    let snap = fleet.join();
    assert!(snap.counter(sm::FLEET_RESTARTS) >= 1);
    assert_eq!(
        snap.counter(sm::FLEET_QUARANTINED),
        0,
        "one SIGKILL is not a crash loop"
    );
    std::fs::remove_dir_all(&dir).ok();
}
