//! Crash/resume chaos harness for checkpointed characterization.
//!
//! Runs characterization in a child process (`src/bin/chaos_child.rs`),
//! kills it at a seeded-random point mid-run, resumes it with the same
//! journal, and asserts the resumed model is **byte-identical** to one
//! characterized without interruption — the core crash-consistency promise
//! of `proxim_model::checkpoint`. A second test exercises the graceful
//! path: `SIGTERM` trips the cooperative cancel token, the child exits
//! with its dedicated code after a final checkpoint flush, and the run
//! resumes from that checkpoint.
//!
//! Override the kill point with `PROXIM_CHAOS_SEED=<n>` to explore other
//! interruption points; the default seed keeps CI deterministic.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output};
use std::time::{Duration, Instant};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_chaos_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn child_command(out: &Path, journal: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_chaos_child"));
    cmd.arg("--out")
        .arg(out)
        .arg("--journal")
        .arg(journal)
        .arg("--jobs")
        .arg("2");
    cmd
}

/// Completed (newline-terminated) journal lines, header excluded — the
/// number of durably checkpointed jobs.
fn journal_entries(path: &Path) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .split_inclusive('\n')
            .filter(|l| l.ends_with('\n'))
            .count()
            .saturating_sub(1),
        Err(_) => 0,
    }
}

/// Polls the journal until it holds at least `target` entries (returns
/// true) or the child exits first (returns false).
fn wait_for_entries(child: &mut Child, journal: &Path, target: usize) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        if journal_entries(journal) >= target {
            return true;
        }
        if child.try_wait().expect("child wait").is_some() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("journal never reached {target} entries");
}

fn skipped_from_stdout(output: &Output) -> usize {
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("skipped=").and_then(|v| v.parse().ok()))
        .unwrap_or_else(|| panic!("no skipped= marker in child stdout: {stdout:?}"))
}

/// The uninterrupted reference run: exact bytes every chaos run must match.
fn reference_model(dir: &Path) -> Vec<u8> {
    let out = dir.join("reference.json");
    let journal = dir.join("reference.journal");
    let output = child_command(&out, &journal)
        .output()
        .expect("reference child");
    assert!(
        output.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(
        skipped_from_stdout(&output),
        0,
        "a fresh journal must skip nothing"
    );
    std::fs::read(&out).expect("reference model bytes")
}

/// The seeded kill point: an entry count the parent waits for before
/// pulling the trigger. A tiny LCG keeps runs reproducible per seed while
/// `PROXIM_CHAOS_SEED` lets a human explore other interruption points.
fn kill_point(seed: u64) -> usize {
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    3 + ((x >> 33) % 10) as usize
}

fn chaos_seed() -> u64 {
    std::env::var("PROXIM_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1996)
}

#[test]
fn sigkill_then_resume_reproduces_the_uninterrupted_model_bytewise() {
    let dir = scratch_dir("sigkill");
    let reference = reference_model(&dir);

    let out = dir.join("chaos.json");
    let journal = dir.join("chaos.journal");
    let target = kill_point(chaos_seed());

    let mut child = child_command(&out, &journal).spawn().expect("chaos child");
    let reached = wait_for_entries(&mut child, &journal, target);
    assert!(
        reached,
        "child finished before the kill point ({target} entries) — \
         the chaos window should be far larger than that"
    );
    child.kill().expect("SIGKILL");
    child.wait().expect("reap killed child");
    assert!(
        !out.exists(),
        "a killed run must not leave a (partial or complete) model behind"
    );
    let checkpointed = journal_entries(&journal);
    assert!(
        checkpointed >= target,
        "kill raced the journal: {checkpointed} < {target}"
    );

    // Resume with the same journal: finished work is skipped, and the
    // result is byte-identical to the uninterrupted run.
    let output = child_command(&out, &journal)
        .output()
        .expect("resume child");
    assert!(
        output.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let skipped = skipped_from_stdout(&output);
    assert!(
        skipped > 0,
        "resume must skip checkpointed jobs (journal had {checkpointed})"
    );
    let resumed = std::fs::read(&out).expect("resumed model bytes");
    assert_eq!(
        resumed, reference,
        "resumed model differs from the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_flushes_a_final_checkpoint_and_exits_typed() {
    let dir = scratch_dir("sigterm");
    let reference = reference_model(&dir);

    let out = dir.join("graceful.json");
    let journal = dir.join("graceful.journal");

    let mut child = child_command(&out, &journal).spawn().expect("chaos child");
    let reached = wait_for_entries(&mut child, &journal, 2);
    assert!(reached, "child finished before SIGTERM could be delivered");
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status = child.wait().expect("reap terminated child");
    assert_eq!(
        status.code(),
        Some(86),
        "SIGTERM must surface as the cooperative-cancellation exit code"
    );
    assert!(!out.exists(), "a cancelled run must not save a model");
    let flushed = journal_entries(&journal);
    assert!(flushed >= 2, "the final checkpoint flush went missing");

    // The graceful stop is resumable like any crash.
    let output = child_command(&out, &journal)
        .output()
        .expect("resume child");
    assert!(
        output.status.success(),
        "resume after SIGTERM failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(skipped_from_stdout(&output) > 0);
    assert_eq!(std::fs::read(&out).expect("model bytes"), reference);

    std::fs::remove_dir_all(&dir).ok();
}
