//! Integration tests for the fleet layer: supervised replica daemons,
//! client-side failover, crash-loop quarantine, rolling reload, and
//! hedged requests.
//!
//! The supervised tests spawn real `proxim_serve` replica processes via
//! [`Fleet`] (daemon = `CARGO_BIN_EXE_proxim_serve`); the hedging test
//! uses two in-process [`Server`]s because a deterministic stall
//! (`worker_stall`) is a `ServeOptions` test hook, not a CLI flag.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_obs::json::Json;
use proxim_obs::serve_metrics as sm;
use proxim_serve::balance::{FleetClient, FleetClientOptions};
use proxim_serve::client::RetryPolicy;
use proxim_serve::fleet::{Fleet, FleetOptions, ReplicaState};
use proxim_serve::server::{one_shot, Server};
use proxim_serve::{ModelLibrary, ModelStore, ServeOptions};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str =
    r#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}"#;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_fleet_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Seeds a store with one fast-characterized inverter under `"inv"`.
fn seed_store(store_dir: &Path) -> ModelStore {
    let store = ModelStore::new(store_dir);
    let tech = Technology::demo_5v();
    let model = ProximityModel::characterize(&Cell::inv(), &tech, &CharacterizeOptions::fast())
        .expect("characterize inv");
    store.save("inv", &model).expect("seed store");
    store
}

/// Fleet options tuned for test speed: fast probes, short backoff.
fn fleet_opts(dir: &Path, replicas: usize) -> FleetOptions {
    FleetOptions {
        replicas,
        daemon: env!("CARGO_BIN_EXE_proxim_serve").into(),
        dir: dir.join("fleet"),
        store: dir.join("store"),
        probe_interval: Duration::from_millis(20),
        restart_backoff_base: Duration::from_millis(20),
        restart_backoff_cap: Duration::from_millis(200),
        ..FleetOptions::default()
    }
}

fn assert_is_timing(response: &str) {
    let json = Json::parse(response).expect("parse response");
    assert!(
        json.get("timing").is_some(),
        "expected a timing answer, got {response}"
    );
}

#[test]
fn fleet_starts_replicas_and_reports_per_replica_state() {
    let dir = scratch_dir("up");
    seed_store(&dir.join("store"));
    let fleet = Fleet::start(fleet_opts(&dir, 3)).expect("fleet starts");
    assert!(fleet.wait_ready(Duration::from_secs(60)), "fleet came up");

    // Every replica socket answers real queries.
    for socket in fleet.sockets() {
        assert_is_timing(&one_shot(&socket, QUERY).expect("replica answers"));
    }

    // The control socket reports per-replica state/generation/uptime.
    let resp = one_shot(fleet.control_socket(), r#"{"op":"fleet"}"#).expect("fleet op");
    let json = Json::parse(&resp).expect("parse fleet response");
    let stats = json.get("fleet").expect("fleet object");
    assert_eq!(
        stats.get("replicas_up").and_then(Json::as_f64),
        Some(3.0),
        "{resp}"
    );
    assert_eq!(stats.get("quarantined").and_then(Json::as_f64), Some(0.0));
    let replicas = stats
        .get("replica")
        .and_then(Json::as_arr)
        .expect("replica array");
    assert_eq!(replicas.len(), 3);
    for r in replicas {
        assert_eq!(r.get("state").and_then(Json::as_str), Some("up"), "{resp}");
        assert!(r.get("pid").and_then(Json::as_f64).is_some(), "{resp}");
        assert!(
            r.get("generation").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
            "{resp}"
        );
    }

    // The control socket aggregates health and refuses everything else.
    let health = one_shot(fleet.control_socket(), r#"{"op":"health"}"#).expect("health");
    assert!(health.contains("\"serving\""), "{health}");
    let refused = one_shot(fleet.control_socket(), QUERY).expect("typed refusal");
    assert!(refused.contains("bad_request"), "{refused}");

    fleet.begin_shutdown();
    let snap = fleet.join();
    assert_eq!(snap.counter(sm::FLEET_RESTARTS), 0);
    assert_eq!(snap.counter(sm::FLEET_QUARANTINED), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_one_replica_fails_over_and_restarts_to_full_strength() {
    let dir = scratch_dir("sigkill");
    seed_store(&dir.join("store"));
    let fleet = Fleet::start(fleet_opts(&dir, 3)).expect("fleet starts");
    assert!(fleet.wait_ready(Duration::from_secs(60)), "fleet came up");

    let client = FleetClient::new(
        fleet.sockets(),
        FleetClientOptions {
            retry: RetryPolicy {
                base: Duration::from_millis(5),
                cap: Duration::from_millis(100),
                ..RetryPolicy::default()
            },
            ..FleetClientOptions::default()
        },
    );

    // SIGKILL replica 0 mid-churn: every query must still answer.
    let victim = fleet.states()[0].pid.expect("replica 0 pid");
    for i in 0..60 {
        if i == 10 {
            let status = Command::new("kill")
                .arg("-9")
                .arg(victim.to_string())
                .status()
                .expect("send SIGKILL");
            assert!(status.success(), "kill -9 failed");
        }
        let out = client
            .call(QUERY)
            .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
        assert_is_timing(&out.response);
    }

    // The supervisor restarts the victim back to full strength.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let states = fleet.states();
        let up = states
            .iter()
            .filter(|s| s.state == ReplicaState::Up)
            .count();
        let restarts: u64 = states.iter().map(|s| s.restarts).sum();
        if up == 3 && restarts >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never returned to full strength: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The restarted replica answers on its original socket.
    assert_is_timing(&one_shot(&fleet.sockets()[0], QUERY).expect("restarted replica"));

    fleet.begin_shutdown();
    let snap = fleet.join();
    assert!(snap.counter(sm::FLEET_RESTARTS) >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_store_replica_is_quarantined_while_survivors_serve() {
    let dir = scratch_dir("quarantine");
    seed_store(&dir.join("store"));
    // Replica 2 gets its own deliberately corrupt store: a garbage entry
    // that --strict-store turns into a startup failure (and after the
    // first start quarantines it aside, leaving the store empty — still a
    // strict failure), so the replica crash-loops into quarantine.
    let bad_store = dir.join("bad_store");
    std::fs::create_dir_all(&bad_store).expect("bad store dir");
    std::fs::write(bad_store.join("inv.pxm"), b"not a model container").expect("garbage entry");

    let mut opts = fleet_opts(&dir, 3);
    opts.replica_stores = vec![dir.join("store"), dir.join("store"), bad_store];
    opts.strict_store = true;
    opts.quarantine_threshold = 3;
    opts.restart_backoff_base = Duration::from_millis(10);
    opts.restart_backoff_cap = Duration::from_millis(50);
    let fleet = Fleet::start(opts).expect("fleet starts");

    // The bad replica crash-loops into quarantine while the two healthy
    // replicas serve throughout.
    let client = FleetClient::new(fleet.sockets()[..2].to_vec(), FleetClientOptions::default());
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert_is_timing(&client.call(QUERY).expect("survivors answer").response);
        if fleet.states()[2].state == ReplicaState::Quarantined {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica 2 never quarantined: {:?}",
            fleet.states()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The fleet op reports the quarantine typed; survivors still count.
    let resp = one_shot(fleet.control_socket(), r#"{"op":"fleet"}"#).expect("fleet op");
    assert!(resp.contains("replica_quarantined"), "{resp}");
    let json = Json::parse(&resp).expect("parse");
    let stats = json.get("fleet").expect("fleet object");
    assert_eq!(
        stats.get("quarantined").and_then(Json::as_f64),
        Some(1.0),
        "{resp}"
    );
    let up = stats
        .get("replicas_up")
        .and_then(Json::as_f64)
        .expect("replicas_up");
    assert!(up >= 2.0, "{resp}");
    // Aggregate health says degraded, not down.
    let health = one_shot(fleet.control_socket(), r#"{"op":"health"}"#).expect("health");
    assert!(health.contains("degraded"), "{health}");
    // And queries still answer after the quarantine settles.
    assert_is_timing(&client.call(QUERY).expect("still serving").response);

    fleet.begin_shutdown();
    let snap = fleet.join();
    assert_eq!(snap.counter(sm::FLEET_QUARANTINED), 1);
    assert!(
        snap.counter(sm::FLEET_RESTARTS) >= 2,
        "crash loop restarts counted"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rolling_reload_upgrades_every_replica_without_dropping_capacity() {
    let dir = scratch_dir("rolling");
    seed_store(&dir.join("store"));
    let fleet = Fleet::start(fleet_opts(&dir, 3)).expect("fleet starts");
    assert!(fleet.wait_ready(Duration::from_secs(60)), "fleet came up");

    // Closed-loop churn through the balancer while the reload walks the
    // fleet: zero client-visible failures allowed.
    let client = Arc::new(FleetClient::new(
        fleet.sockets(),
        FleetClientOptions::default(),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));
    let churners: Vec<_> = (0..4)
        .map(|_| {
            let client = Arc::clone(&client);
            let stop = Arc::clone(&stop);
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match client.call(QUERY) {
                        Ok(out) if out.response.contains("\"timing\"") => ok += 1,
                        _ => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                ok
            })
        })
        .collect();

    let results = fleet.rolling_reload(true, Some("upgrade"));
    stop.store(true, Ordering::Relaxed);
    let served: u64 = churners
        .into_iter()
        .map(|c| c.join().expect("churner"))
        .sum();

    assert_eq!(results.len(), 3);
    for (i, result) in results.iter().enumerate() {
        let response = result
            .as_ref()
            .unwrap_or_else(|e| panic!("replica {i} reload: {e}"));
        assert!(
            response.contains("\"generation\":2"),
            "replica {i}: {response}"
        );
    }
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "rolling reload must not drop client requests"
    );
    assert!(served > 0, "churners actually ran");

    // Every replica probes healthy on the new generation.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let states = fleet.states();
        if states
            .iter()
            .all(|s| s.generation == 2 && s.state == ReplicaState::Up)
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "generations never settled: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    fleet.begin_shutdown();
    let _ = fleet.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hedged_requests_win_against_a_stalled_replica() {
    let dir = scratch_dir("hedge");
    let store = seed_store(&dir.join("store"));

    // Two in-process replicas: one deterministically slow (200 ms stall
    // per job), one fast. Hedging after 20 ms must route around the stall.
    let slow = Server::start(
        ModelLibrary::open(&store),
        dir.join("slow.sock"),
        ServeOptions {
            worker_stall: Duration::from_millis(200),
            ..ServeOptions::default()
        },
    )
    .expect("slow server");
    let fast = Server::start(
        ModelLibrary::open(&store),
        dir.join("fast.sock"),
        ServeOptions::default(),
    )
    .expect("fast server");

    let client = FleetClient::new(
        vec![dir.join("slow.sock"), dir.join("fast.sock")],
        FleetClientOptions {
            hedge_delay: Some(Duration::from_millis(20)),
            ..FleetClientOptions::default()
        },
    );
    let mut wins_seen = 0u64;
    for i in 0..10 {
        let out = client
            .call(QUERY)
            .unwrap_or_else(|e| panic!("hedged query {i} failed: {e}"));
        assert_is_timing(&out.response);
        if out.hedge_won {
            wins_seen += 1;
        }
    }
    assert!(
        client.hedges() > 0,
        "the stalled replica must trigger hedges"
    );
    assert!(client.hedge_wins() > 0, "some hedges must win");
    assert_eq!(client.hedge_wins(), wins_seen);
    assert!(client.hedge_wins() <= client.hedges());

    slow.begin_shutdown();
    fast.begin_shutdown();
    slow.join();
    fast.join();
    std::fs::remove_dir_all(&dir).ok();
}
