//! Simulator-level validation against closed-form solutions and logic
//! truth tables — the substrate has to be trustworthy before the model
//! built on it means anything.

use proxim::cells::{Cell, Technology};
use proxim::numeric::pwl::Edge;
use proxim::spice::circuit::{Circuit, Waveform};
use proxim::spice::tran::{Integrator, TranOptions};

#[test]
fn rc_step_matches_exponential_everywhere() {
    let (r, c) = (2.2e3, 0.47e-12);
    let tau = r * c;
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 1e-13, 3.0));
    ckt.resistor("R", inp, out, r);
    ckt.capacitor("C", out, Circuit::GND, c);
    let result = ckt
        .tran(&TranOptions::to(8.0 * tau).with_dv_max(0.01))
        .expect("runs");
    let w = result.waveform(out);
    for k in 1..=20 {
        let t = k as f64 * 0.35 * tau;
        let expect = 3.0 * (1.0 - (-t / tau).exp());
        assert!(
            (w.eval(t) - expect).abs() < 0.02,
            "t/tau = {:.2}: {} vs {}",
            t / tau,
            w.eval(t),
            expect
        );
    }
}

#[test]
fn two_stage_rc_ladder_matches_state_space_solution() {
    // R1-C1-R2-C2 ladder driven by a step: compare against the analytic
    // two-pole response computed by eigendecomposition by hand.
    let (r1, c1, r2, c2) = (1e3, 1e-12, 1e3, 1e-12);
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.vsource("VIN", inp, Circuit::GND, Waveform::step(0.0, 1e-14, 1.0));
    ckt.resistor("R1", inp, mid, r1);
    ckt.capacitor("C1", mid, Circuit::GND, c1);
    ckt.resistor("R2", mid, out, r2);
    ckt.capacitor("C2", out, Circuit::GND, c2);
    let result = ckt
        .tran(&TranOptions::to(15e-9).with_dv_max(0.005))
        .expect("runs");
    let w = result.waveform(out);

    // State matrix for x = [v_mid, v_out]:
    //   dv_mid/dt = ((1 - v_mid)/r1 - (v_mid - v_out)/r2) / c1
    //   dv_out/dt = (v_mid - v_out) / (r2 c2)
    // With equal RC the eigenvalues are (-3 ± sqrt(5)) / (2 RC).
    let rc = r1 * c1;
    let l1 = (-3.0 + 5.0f64.sqrt()) / (2.0 * rc);
    let l2 = (-3.0 - 5.0f64.sqrt()) / (2.0 * rc);
    // v_out(t) = 1 + a e^{l1 t} + b e^{l2 t}; with v_out(0) = 0 and
    // v_out'(0) = 0: a + b = -1 and a l1 + b l2 = 0, giving
    // a = l2/(l1 - l2), b = -l1/(l1 - l2).
    let a = l2 / (l1 - l2);
    let b = -l1 / (l1 - l2);
    for k in 1..=10 {
        let t = k as f64 * 1e-9;
        let expect = 1.0 + a * (l1 * t).exp() + b * (l2 * t).exp();
        assert!(
            (w.eval(t) - expect).abs() < 0.01,
            "t = {t:.1e}: {} vs {}",
            w.eval(t),
            expect
        );
    }
}

#[test]
fn integrators_agree_on_smooth_response() {
    let build = || {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::ramp(0.5e-9, 2e-9, 0.0, 2.0),
        );
        ckt.resistor("R", inp, out, 1e3);
        ckt.capacitor("C", out, Circuit::GND, 1e-12);
        (ckt, out)
    };
    let (ckt, out) = build();
    let trap = ckt
        .tran(&TranOptions::to(8e-9).with_dv_max(0.01))
        .expect("trap runs");
    let be = ckt
        .tran(
            &TranOptions::to(8e-9)
                .with_dv_max(0.01)
                .with_integrator(Integrator::BackwardEuler),
        )
        .expect("be runs");
    for k in 1..=16 {
        let t = k as f64 * 0.5e-9;
        let a = trap.waveform(out).eval(t);
        let b = be.waveform(out).eval(t);
        assert!((a - b).abs() < 0.01, "t = {t:.1e}: trap {a} vs be {b}");
    }
}

#[test]
fn every_generated_cell_matches_its_truth_table_in_dc() {
    let tech = Technology::demo_5v();
    for cell in [
        Cell::inv(),
        Cell::nand(2),
        Cell::nand(3),
        Cell::nand(4),
        Cell::nor(2),
        Cell::nor(3),
        Cell::aoi21(),
        Cell::oai21(),
    ] {
        let n = cell.input_count();
        for mask in 0..(1u32 << n) {
            let levels: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let mut net = cell.netlist(&tech, 50e-15);
            for (pin, &hi) in levels.iter().enumerate() {
                net.set_level(pin, hi);
            }
            let op = net.circuit.dc_op().expect("dc converges");
            let v = op.voltage(net.out);
            let expect = cell.output_for(&levels);
            if expect {
                assert!(v > 0.9 * tech.vdd, "{} {levels:?}: {v}", cell.name());
            } else {
                assert!(v < 0.1 * tech.vdd, "{} {levels:?}: {v}", cell.name());
            }
        }
    }
}

#[test]
fn transient_switching_respects_logic_for_all_cells() {
    // Drive each cell's pin 0 with a ramp while the rest sit at
    // sensitizing levels; the output must complete the predicted edge.
    let tech = Technology::demo_5v();
    for cell in [
        Cell::inv(),
        Cell::nand(3),
        Cell::nor(2),
        Cell::aoi21(),
        Cell::oai21(),
    ] {
        let Some(mut levels) = cell.sensitizing_levels(0) else {
            panic!("{} pin 0 must be sensitizable", cell.name());
        };
        let mut net = cell.netlist(&tech, 50e-15);
        for (pin, &hi) in levels.iter().enumerate() {
            if pin != 0 {
                net.set_level(pin, hi);
            }
        }
        net.set_waveform(0, Waveform::ramp(0.5e-9, 0.5e-9, 0.0, tech.vdd));
        let result = net.circuit.tran(&TranOptions::to(8e-9)).expect("runs");
        let w = result.waveform(net.out);

        levels[0] = false;
        let v_before = cell.output_for(&levels);
        levels[0] = true;
        let v_after = cell.output_for(&levels);
        let start = w.eval(0.1e-9);
        let end = w.eval(8e-9);
        assert_eq!(start > 2.5, v_before, "{} initial level", cell.name());
        assert_eq!(end > 2.5, v_after, "{} final level", cell.name());
        let edge = if v_after { Edge::Rising } else { Edge::Falling };
        assert!(
            w.first_crossing(2.5, edge).is_some(),
            "{} output must cross mid-rail",
            cell.name()
        );
    }
}

#[test]
fn source_branch_current_balances_load() {
    // KCL at the source: a 5 V source over 1 kOhm draws exactly 5 mA.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::GND, Waveform::Dc(5.0));
    ckt.resistor("R1", a, Circuit::GND, 1e3);
    let op = ckt.dc_op().expect("converges");
    assert!((op.branch_current(0) + 5e-3).abs() < 1e-9);
}

#[test]
fn vtc_endpoints_hit_rails_for_nand_family() {
    let tech = Technology::demo_5v();
    for n in 2..=4 {
        let cell = Cell::nand(n);
        let mut net = cell.netlist(&tech, 50e-15);
        for pin in 1..n {
            net.set_level(pin, true);
        }
        let sw = net
            .circuit
            .dc_sweep("Va", 0.0, tech.vdd, 101)
            .expect("sweep converges");
        let curve = sw.transfer_curve(net.out);
        assert!(curve.eval(0.0) > 0.98 * tech.vdd, "NAND{n} low end");
        assert!(curve.eval(tech.vdd) < 0.02 * tech.vdd, "NAND{n} high end");
    }
}
