//! Audit & self-repair suite: the model audit catches silent table
//! corruption, the repair pass restores clean values byte-exactly by
//! re-simulating only the suspect grid points, and unrepairable slices are
//! demoted to degraded provenance instead of serving unphysical numbers.
//!
//! Runs under the `fault-injection` feature for two reasons: the
//! `tamper_table_value` corruption hook lives behind it, and the
//! demotion/20%-fault scenarios drive the repair pipeline through the same
//! deterministic fault harness the resilience suite uses.

#![cfg(feature = "fault-injection")]

use proxim_cells::{Cell, Technology};
use proxim_model::audit::{AuditOptions, TableRole};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::model::ProximityModel;
use proxim_model::{DegradedReason, InputEvent, RunControl, SliceKind};
use proxim_numeric::pwl::Edge;
use proxim_spice::faultpoint::{self, FaultConfig};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The fault configuration is process-global, and even the fault-free tests
/// here must not run while another test has faults armed — so every test in
/// this binary serializes on this lock for its whole body.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_disarmed() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faultpoint::disarm();
    guard
}

/// Disarms the fault harness on drop, panic included.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        faultpoint::disarm();
    }
}

fn nand2_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        jobs: 2,
        ..CharacterizeOptions::fast()
    }
}

fn characterize_nand2() -> ProximityModel {
    ProximityModel::characterize(&Cell::nand(2), &Technology::demo_5v(), &nand2_opts())
        .expect("characterization succeeds")
}

/// A dual-table flat index whose separation coordinate is non-negative
/// (`fast()` puts w ≥ 0 at the tail of each 8-point row), so a negative
/// tampered value violates §2 positivity deterministically.
const DUAL_POSITIVE_W_IDX: usize = 5;

#[test]
fn clean_model_audits_clean_and_repair_is_a_noop() {
    let _guard = lock_disarmed();
    let mut model = characterize_nand2();
    let json_before = model.to_json().expect("serializes");

    let report = model.audit(&AuditOptions::default());
    assert!(
        report.is_clean(),
        "untampered model must audit clean, first finding: {}",
        report.findings[0]
    );

    let (report, outcome) = model
        .audit_and_repair(&nand2_opts(), &AuditOptions::default(), &RunControl::new())
        .expect("repair of a clean model succeeds");
    assert!(report.is_clean());
    assert_eq!(outcome.repaired_points, 0);
    assert_eq!(outcome.demoted_slices, 0);
    assert_eq!(outcome.sims_run, 0, "a clean model must not re-simulate");
    assert_eq!(
        model.to_json().expect("serializes"),
        json_before,
        "a no-op repair must leave the model bytes untouched"
    );
}

#[test]
fn tampered_points_are_found_and_repaired_byte_exactly() {
    let _guard = lock_disarmed();
    let mut model = characterize_nand2();
    let clean_json = model.to_json().expect("serializes");

    // Corrupt one dual-table point in the positive-separation region and
    // one single-input delay sample — both §2 positivity violations the
    // audit must catch with full provenance.
    model
        .tamper_table_value(
            SliceKind::Dual,
            0,
            Edge::Falling,
            TableRole::Delay,
            DUAL_POSITIVE_W_IDX,
            -0.5,
        )
        .expect("dual slice exists");
    model
        .tamper_table_value(
            SliceKind::Single,
            1,
            Edge::Rising,
            TableRole::Delay,
            1,
            -1.0,
        )
        .expect("single slice exists");

    let report = model.audit(&AuditOptions::default());
    assert!(
        report.len() >= 2,
        "both tampered points must be flagged, got {:?}",
        report.findings
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.slice == SliceKind::Dual && f.index.is_some()));
    assert!(report
        .findings
        .iter()
        .any(|f| f.slice == SliceKind::Single && f.index == Some(1)));

    let (pre_repair, outcome) = model
        .audit_and_repair(&nand2_opts(), &AuditOptions::default(), &RunControl::new())
        .expect("repair succeeds");
    assert_eq!(pre_repair.len(), report.len());
    assert!(outcome.repaired_points >= 2, "{outcome:?}");
    assert_eq!(outcome.demoted_slices, 0, "{outcome:?}");
    assert!(outcome.sims_run > 0);

    // The re-simulated points reproduce the clean characterization
    // bit-for-bit, so the whole model returns to byte equality.
    assert_eq!(
        model.to_json().expect("serializes"),
        clean_json,
        "repair must restore the clean model bytes exactly"
    );
    assert!(model.audit(&AuditOptions::default()).is_clean());
}

#[test]
fn unrepairable_slice_is_demoted_with_audit_provenance() {
    let _guard = lock_disarmed();
    let mut model = characterize_nand2();

    model
        .tamper_table_value(
            SliceKind::Dual,
            0,
            Edge::Falling,
            TableRole::Delay,
            DUAL_POSITIVE_W_IDX,
            -0.5,
        )
        .expect("dual slice exists");

    // Every repair re-simulation is killed: the slice cannot be restored
    // on either tolerance rung and must be demoted, not silently kept.
    let _disarm = Disarm;
    faultpoint::configure(FaultConfig {
        newton_rate: 0.0,
        accept_rate: 0.0,
        kill_rate: 1.0,
        seed: 42,
    });
    let (report, outcome) = model
        .audit_and_repair(&nand2_opts(), &AuditOptions::default(), &RunControl::new())
        .expect("demotion is a success path, not an error");
    faultpoint::disarm();

    assert!(!report.is_clean());
    assert_eq!(outcome.repaired_points, 0, "{outcome:?}");
    assert!(outcome.demoted_slices >= 1, "{outcome:?}");

    let demoted = model
        .degraded_slices()
        .iter()
        .find(|d| d.kind == SliceKind::Dual && d.pin == 0 && d.edge == Edge::Falling)
        .expect("the unrepairable dual must be recorded as degraded");
    assert!(
        demoted.reason.contains("audit"),
        "degradation must carry audit provenance: {}",
        demoted.reason
    );

    // The model keeps answering: the dual query falls back to the
    // single-input path and says so.
    let events = [
        InputEvent::new(0, Edge::Falling, 0.0, 400e-12),
        InputEvent::new(1, Edge::Falling, 50e-12, 400e-12),
    ];
    let t = model
        .gate_timing(&events)
        .expect("demoted duals must fall back, not error");
    assert_eq!(t.degradation, Some(DegradedReason::DualSliceMissing));
    assert!(t.delay > 0.0 && t.output_transition > 0.0);

    // And the post-demotion model audits clean: the bad table is gone.
    assert!(model.audit(&AuditOptions::default()).is_clean());
}

#[test]
fn fault_injected_characterization_audits_clean_and_repairs_to_clean_run_bytes() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faultpoint::disarm();
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let opts = nand2_opts();

    // Reference: the same characterization with no faults at all.
    let clean = ProximityModel::characterize(&cell, &tech, &opts).expect("clean run succeeds");

    // The resilience suite's 20%-fault recipe: recoveries and a few doomed
    // runs, deterministic in (seed, run).
    let (mut model, stats) = {
        let _disarm = Disarm;
        faultpoint::configure(FaultConfig {
            newton_rate: 0.20,
            accept_rate: 0.05,
            kill_rate: 0.02,
            seed: 1996,
        });
        ProximityModel::characterize_with_stats(&cell, &tech, &opts)
            .expect("fault pressure must degrade, not fail")
    };
    assert!(stats.recoveries > 0, "the recipe must exercise recovery");
    assert!(model.is_degraded(), "the kill rate must doom some slice");
    assert_eq!(
        stats.audit_findings, 0,
        "surviving slices of a fault-laden run must still satisfy the \
         physics invariants"
    );

    // Tamper a surviving single-input sample, then repair with faults
    // disarmed. A single-input stimulus depends only on (pin, edge, τ), so
    // the fault-free re-simulation must land exactly on the clean run's
    // stored value — byte-level equality for the repaired point even
    // though the rest of this model lived through the fault storm.
    let (pin, edge) = (1, Edge::Rising);
    let tampered_idx = 1;
    model
        .tamper_table_value(
            SliceKind::Single,
            pin,
            edge,
            TableRole::Delay,
            tampered_idx,
            -1.0,
        )
        .expect("this single survives seed 1996; pick another if the volume changes");
    let report = model.audit(&AuditOptions::default());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.slice == SliceKind::Single && f.pin == pin),
        "{report:?}"
    );

    let (_, outcome) = model
        .audit_and_repair(&opts, &AuditOptions::default(), &RunControl::new())
        .expect("repair succeeds once faults are disarmed");
    assert!(outcome.repaired_points >= 1, "{outcome:?}");

    let (_, repaired_delays, _) = model
        .single_model(pin, edge)
        .expect("repaired single still present")
        .samples();
    let (_, clean_delays, _) = clean
        .single_model(pin, edge)
        .expect("clean single present")
        .samples();
    assert_eq!(
        repaired_delays[tampered_idx].to_bits(),
        clean_delays[tampered_idx].to_bits(),
        "the repaired point must equal the clean-run value bit-for-bit"
    );
    assert!(model.audit(&AuditOptions::default()).is_clean());
}
