//! Lifecycle suite for the timing-query daemon: validated hot reload under
//! sustained load, memory-budgeted residency, and (behind
//! `fault-injection`) a synthetically full disk against every durable
//! sink.
//!
//! The invariants under test: a generation swap never drops, errors, or
//! blocks an in-flight query; a rejected candidate leaves the live
//! generation untouched; with a budget below the store's total size the
//! daemon still serves the *full* model set via cold misses and eviction
//! while the resident-bytes gauge stays at or under the budget; and a
//! disk that refuses every write degrades the daemon — typed counters, a
//! clean `SIGTERM` drain, exit `0` — never panics it.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_obs::serve_metrics as sm;
use proxim_serve::server::one_shot;
use proxim_serve::{LibraryOptions, ModelLibrary, ModelStore, ServeOptions, Server};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_srvlc_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One shared fast model (characterization is the expensive part), saved
/// under however many names a test needs.
fn shared_model() -> &'static ProximityModel {
    static MODEL: OnceLock<ProximityModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
            .expect("test model characterizes")
    })
}

fn seed_store(dir: &Path, names: &[&str]) -> ModelStore {
    let store = ModelStore::new(dir.join("store"));
    for name in names {
        store.save(name, shared_model()).expect("seed store");
    }
    store
}

fn query_for(name: &str) -> String {
    format!(
        r#"{{"op":"query","model":"{name}","events":[{{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}}]}}"#
    )
}

#[test]
fn hot_reload_under_sustained_load_never_drops_errors_or_blocks_a_query() {
    const CLIENTS: usize = 64;
    const SWAPS: u64 = 10;

    let dir = scratch_dir("reload_load");
    let store = seed_store(&dir, &["inv"]);
    let library = ModelLibrary::open(&store);
    let opts = ServeOptions {
        workers: 4,
        queue_capacity: 256,
        ..ServeOptions::default()
    };
    let server = Server::start(library, dir.join("serve.sock"), opts).expect("server starts");
    let sock = server.socket_path().to_path_buf();

    // 64 closed-loop clients hammer the daemon for the whole reload storm.
    // Every response must be a complete `ok` answer: a shed, a typed
    // error, or a transport failure during a swap is a test failure.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let sock = sock.clone();
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let request = query_for("inv");
                while !stop.load(Ordering::Relaxed) {
                    let resp = one_shot(&sock, &request)
                        .unwrap_or_else(|e| panic!("client {i} dropped mid-swap: {e}"));
                    assert!(
                        resp.contains("\"timing\""),
                        "client {i} got a non-ok answer mid-swap: {resp}"
                    );
                    served.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Let the load establish, then run back-to-back swaps.
    while served.load(Ordering::Relaxed) < CLIENTS as u64 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for i in 0..SWAPS {
        let outcome = server
            .reload(false, Some("storm".to_string()))
            .unwrap_or_else(|rej| panic!("swap {i} rejected: {rej}"));
        assert_eq!(outcome.generation, i + 2, "generations are sequential");
        let floor = served.load(Ordering::Relaxed);
        // The swap must not block the data plane: traffic keeps flowing
        // between consecutive swaps.
        while served.load(Ordering::Relaxed) < floor + CLIENTS as u64 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }

    let health = one_shot(&sock, r#"{"op":"health"}"#).expect("health");
    assert!(
        health.contains(&format!("\"generation\":{}", SWAPS + 1)),
        "{health}"
    );
    server.begin_shutdown();
    let snap = server.join();
    assert_eq!(snap.counter(sm::RELOAD_SWAPPED), SWAPS);
    assert_eq!(snap.counter(sm::RELOAD_REJECTED), 0);
    assert_eq!(snap.counter(sm::SHED), 0, "a swap must never shed load");
    assert!(
        served.load(Ordering::Relaxed) >= CLIENTS as u64 * (SWAPS + 1),
        "traffic must flow across every swap"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_worse_candidate_is_rejected_and_the_live_generation_is_untouched() {
    let dir = scratch_dir("reload_gate");
    let store = seed_store(&dir, &["keep", "extra"]);
    let library = ModelLibrary::open(&store);
    let server =
        Server::start(library, dir.join("serve.sock"), ServeOptions::default()).expect("starts");
    let sock = server.socket_path().to_path_buf();

    // A clean reload over the wire swaps to generation 2.
    let resp = one_shot(&sock, r#"{"op":"reload","label":"clean"}"#).expect("reload rt");
    assert!(resp.contains("\"swapped\":true"), "{resp}");
    assert!(resp.contains("\"generation\":2"), "{resp}");

    // Corrupt one entry on disk: the next candidate loads fewer models and
    // quarantines, so the gate must reject it and keep serving generation 2
    // in full — including the model whose entry just rotted.
    std::fs::write(store.entry_path("extra"), b"rotten").expect("corrupt entry");
    let rej = one_shot(&sock, r#"{"op":"reload"}"#).expect("rejected rt");
    assert!(rej.contains("\"ok\":false"), "{rej}");
    assert!(rej.contains("\"reload_rejected\""), "{rej}");
    assert!(rej.contains("\"candidate_loaded\":1"), "{rej}");
    assert!(rej.contains("\"live_loaded\":2"), "{rej}");
    let health = one_shot(&sock, r#"{"op":"health"}"#).expect("health");
    assert!(health.contains("\"generation\":2"), "{health}");
    assert!(health.contains("\"models\":2"), "{health}");
    let resp = one_shot(&sock, &query_for("extra")).expect("live generation serves");
    assert!(resp.contains("\"timing\""), "{resp}");

    // `force` is the operator's override: the shrunken candidate swaps in.
    let forced = one_shot(&sock, r#"{"op":"reload","force":true}"#).expect("forced rt");
    assert!(forced.contains("\"swapped\":true"), "{forced}");
    assert!(forced.contains("\"models\":1"), "{forced}");

    server.begin_shutdown();
    let snap = server.join();
    assert_eq!(snap.counter(sm::RELOAD_SWAPPED), 2);
    assert_eq!(snap.counter(sm::RELOAD_REJECTED), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_budget_below_the_store_size_serves_the_full_set_within_the_gauge() {
    let names = ["m_a", "m_b", "m_c", "m_d", "m_e", "m_f"];
    let dir = scratch_dir("budget");
    let store = seed_store(&dir, &names);
    let entry_cost = std::fs::metadata(store.entry_path("m_a"))
        .expect("entry metadata")
        .len();
    // Room for two resident models (plus slack), out of six on disk.
    let budget = entry_cost * 5 / 2;
    let library = ModelLibrary::open_with(
        &store,
        LibraryOptions {
            memory_budget: Some(budget),
            ..LibraryOptions::default()
        },
    );
    let server =
        Server::start(library, dir.join("serve.sock"), ServeOptions::default()).expect("starts");
    let sock = server.socket_path().to_path_buf();

    // Three full passes over a set 2.4x the budget: every model answers,
    // cold misses and evictions do the cycling.
    let mut cold_seen = 0u64;
    for _ in 0..3 {
        for name in &names {
            let resp = one_shot(&sock, &query_for(name)).expect("query");
            assert!(resp.contains("\"timing\""), "{name}: {resp}");
            if resp.contains("\"cold\":true") {
                assert!(resp.contains("\"load_us\""), "{name}: {resp}");
                cold_seen += 1;
            }
        }
    }
    assert!(
        cold_seen > 0,
        "a set over budget must pay cold misses on the wire"
    );
    let library = server.library();
    assert!(
        library.resident_bytes() <= budget,
        "resident bytes {} exceed the budget {budget}",
        library.resident_bytes()
    );
    assert!(library.resident_len() < names.len());

    server.begin_shutdown();
    let snap = server.join();
    assert!(snap.counter(sm::LIBRARY_COLD_MISSES) >= cold_seen);
    assert!(snap.counter(sm::LIBRARY_EVICTIONS) > 0);
    assert!(
        snap.gauge(sm::LIBRARY_RESIDENT_BYTES) <= budget as f64,
        "the resident-bytes gauge must respect the budget"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Disk-fault paths: every durable sink against a synthetically full disk
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod full_disk {
    use super::*;
    use proxim_serve::diskfault::{self, DiskFaultConfig, DiskFaultKind};
    use proxim_serve::StoreError;
    use std::process::{Command, Stdio};
    use std::sync::{Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Disk-fault configuration is process-global; serialize the tests
    /// that arm it and always disarm, even on panic.
    static DISK_LOCK: Mutex<()> = Mutex::new(());

    fn with_disk_faults<T>(cfg: DiskFaultConfig, f: impl FnOnce() -> T) -> T {
        let _guard = DISK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                diskfault::disarm();
            }
        }
        let _disarm = Disarm;
        diskfault::configure(cfg);
        f()
    }

    #[test]
    fn store_writes_on_a_full_disk_fail_typed_and_leave_no_debris() {
        let dir = scratch_dir("disk_store");
        let store = ModelStore::new(dir.join("store"));
        with_disk_faults(DiskFaultConfig::FULL_DISK, || {
            let e = store
                .save("inv", shared_model())
                .expect_err("a full disk must refuse the save");
            assert!(
                matches!(e, StoreError::DiskFull { .. }),
                "ENOSPC must surface as the typed variant, got: {e}"
            );
            assert!(e.to_string().contains("disk full"), "{e}");
        });
        assert!(
            !store.entry_path("inv").exists(),
            "a failed save must not leave a partial entry"
        );
        store.save("inv", shared_model()).expect("disk recovered");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_rename_failure_degrades_typed_and_the_daemon_serves() {
        let dir = scratch_dir("disk_quarantine");
        let store = seed_store(&dir, &["good"]);
        std::fs::write(store.entry_path("bad"), b"rotten").expect("corrupt entry");

        let library = with_disk_faults(
            DiskFaultConfig {
                fail_writes: false,
                fail_renames: true,
                kind: DiskFaultKind::Io,
                after: 0,
            },
            || ModelLibrary::open(&store),
        );
        assert_eq!(library.names(), vec!["good"]);
        assert_eq!(library.report().quarantine_failed.len(), 1);
        assert!(library.is_degraded());

        let server = Server::start(library, dir.join("serve.sock"), ServeOptions::default())
            .expect("degraded start");
        let sock = server.socket_path().to_path_buf();
        let health = one_shot(&sock, r#"{"op":"health"}"#).expect("health");
        assert!(health.contains("\"degraded\":true"), "{health}");
        let resp = one_shot(&sock, &query_for("good")).expect("survivor serves");
        assert!(resp.contains("\"timing\""), "{resp}");

        server.begin_shutdown();
        let snap = server.join();
        assert_eq!(snap.counter(sm::QUARANTINE_FAILED), 1);
        assert!(snap.counter(sm::DISK_FAULTS) >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// End to end against the spawned binary: `PROXIM_DISKFAULT=enospc`
    /// dooms the metrics snapshot and the flight dump, and the `SIGTERM`
    /// drain must still exit `0` with the degradation on stderr.
    #[test]
    fn a_full_disk_never_turns_a_clean_drain_into_a_failed_exit() {
        let dir = scratch_dir("disk_drain");
        let store = dir.join("store");
        let socket = dir.join("serve.sock");
        let metrics = dir.join("final_metrics.json");
        let flight = dir.join("flight.jsonl");

        // Seed the store before the faulted daemon runs: the injector arms
        // per process, so this parent-side save is clean.
        seed_store(&dir, &["inv"]);

        let daemon = Command::new(env!("CARGO_BIN_EXE_proxim_serve"))
            .args(["serve", "--store"])
            .arg(&store)
            .arg("--socket")
            .arg(&socket)
            .arg("--metrics-out")
            .arg(&metrics)
            .arg("--flight-out")
            .arg(&flight)
            .env("PROXIM_DISKFAULT", "enospc")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");

        // Wait for readiness via the socket (stdout is piped, not a file).
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if one_shot(&socket, r#"{"op":"health"}"#).is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "daemon never became ready");
            std::thread::sleep(Duration::from_millis(10));
        }
        let resp = one_shot(&socket, &query_for("inv")).expect("reads still serve");
        assert!(resp.contains("\"timing\""), "{resp}");

        let term = Command::new("kill")
            .arg("-TERM")
            .arg(daemon.id().to_string())
            .status()
            .expect("send SIGTERM");
        assert!(term.success());
        let output = daemon.wait_with_output().expect("reap daemon");
        let stderr = String::from_utf8_lossy(&output.stderr);
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert_eq!(
            output.status.code(),
            Some(0),
            "a full disk must not fail the drain\nstderr: {stderr}"
        );
        assert!(stdout.contains("drained"), "{stdout}");
        assert!(
            stderr.contains("metrics flush degraded") && stderr.contains("disk full"),
            "the degradation must be typed on stderr: {stderr}"
        );
        assert!(
            stderr.contains("flight dump degraded"),
            "the flight sink must degrade too: {stderr}"
        );
        assert!(!metrics.exists(), "no partial snapshot may land");
        assert!(!flight.exists(), "no partial dump may land");
        std::fs::remove_dir_all(&dir).ok();
    }
}
