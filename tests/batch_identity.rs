//! Batched-kernel identity suite: the lockstep SoA transient kernel
//! (`proxim_spice::batch`) and the worker pool that schedules it must be
//! invisible in the output. Characterization is pinned byte-identical
//! across every `(jobs, batch_lanes)` combination, with and without fault
//! pressure:
//!
//! 1. Healthy pipeline: `jobs ∈ {1, 4} × batch_lanes ∈ {1 (off), 8 (on)}`
//!    all serialize to the same model JSON.
//! 2. Under injected solver faults (`fault-injection` feature), lanes are
//!    evicted from the lockstep loop mid-batch and rerun on the scalar
//!    recovery ladder — and the model is *still* byte-identical to a run
//!    with batching disabled, because fault streams are a pure function of
//!    the run, not of the execution strategy.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::model::ProximityModel;
use std::sync::{Mutex, PoisonError};

/// The fault configuration (and the metrics level the eviction assertion
/// reads) is process-global; serialize the tests in this binary so cargo's
/// parallel runner cannot interleave them.
static BATCH_LOCK: Mutex<()> = Mutex::new(());

/// One characterization at the given execution policy, reduced to the bytes
/// that must not vary.
fn characterize_json(jobs: usize, batch_lanes: usize) -> String {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let opts = CharacterizeOptions {
        jobs,
        batch_lanes,
        ..CharacterizeOptions::fast()
    };
    let (model, stats) = ProximityModel::characterize_with_stats(&cell, &tech, &opts)
        .expect("characterization must succeed");
    assert_eq!(stats.invariant_violation(), None);
    assert_eq!(
        stats.threads, jobs,
        "resolved worker count must be recorded"
    );
    model.to_json().expect("model serializes")
}

#[test]
fn characterization_is_byte_identical_across_jobs_and_batching() {
    let _guard = BATCH_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    #[cfg(feature = "fault-injection")]
    proxim_spice::faultpoint::disarm();

    let reference = characterize_json(1, 1);
    for (jobs, lanes) in [(1, 8), (4, 1), (4, 8)] {
        assert_eq!(
            reference,
            characterize_json(jobs, lanes),
            "model diverged at jobs = {jobs}, batch_lanes = {lanes}"
        );
    }
}

/// A lane that trips the fault injector mid-batch leaves the lockstep loop
/// and reruns on the scalar path, recovery ladder included. The model must
/// not care.
#[cfg(feature = "fault-injection")]
#[test]
fn fault_evicted_lanes_stay_byte_identical() {
    use proxim_obs as obs;
    use proxim_spice::faultpoint::{self, FaultConfig};

    let _guard = BATCH_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            faultpoint::disarm();
            obs::set_level(obs::Level::Off);
        }
    }
    let _disarm = Disarm;
    // The same pressure as the resilience suite: enough Newton faults that
    // batched groups are guaranteed to lose lanes to the scalar ladder,
    // plus a kill rate so some reruns degrade their slice outright.
    faultpoint::configure(FaultConfig {
        newton_rate: 0.20,
        accept_rate: 0.05,
        kill_rate: 0.02,
        seed: 1996,
    });
    // Metrics on, so lane evictions are observable on the global registry.
    obs::set_level(obs::Level::Metrics);
    let evictions = || {
        obs::Registry::global()
            .snapshot()
            .counter(obs::batch_metrics::EVICTIONS)
    };
    let before = evictions();

    let scalar = characterize_json(1, 1);
    let batched = characterize_json(1, 8);
    let batched_parallel = characterize_json(4, 8);

    assert!(
        evictions() > before,
        "this fault pressure must evict at least one lane mid-batch \
         (tune the seed if the characterization volume changes)"
    );
    assert_eq!(
        scalar, batched,
        "eviction + scalar rerun must reproduce the scalar bytes"
    );
    assert_eq!(
        scalar, batched_parallel,
        "worker count must not interact with fault replay"
    );
}
