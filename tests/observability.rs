//! Observability suite: the tracing/metrics layer (`proxim-obs`) driven
//! through the real characterization stack.
//!
//! Three invariants are pinned down here:
//!
//! 1. Spans nest correctly *per thread*: each worker thread carries its own
//!    span stack, so parent links never cross threads and sibling workers
//!    get distinct, stable thread ids.
//! 2. Disabled levels are silent: below [`proxim_obs::Level::Trace`] no
//!    span or event reaches the sink — the instrumentation sites reduce to
//!    an atomic check.
//! 3. A real characterization trace round-trips through the Chrome
//!    `trace_event` converter: every emitted JSONL record converts — spans
//!    to complete events, instants to `"i"` events, and the scalar samples
//!    inside metrics records fan out into counter-track (`"C"`) events —
//!    and the output is valid JSON with the expected event shapes.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::model::ProximityModel;
use proxim_obs as obs;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

/// The sink and level are process-global; serialize the tests that touch
/// them so cargo's parallel test runner cannot interleave them.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// An in-memory sink the tests can read back.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Capture {
    fn take_string(&self) -> String {
        let mut buf = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8(std::mem::take(&mut *buf)).expect("trace output is UTF-8")
    }
}

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Restores the quiet default state even when a test body panics.
struct ObsGuard;

impl Drop for ObsGuard {
    fn drop(&mut self) {
        obs::sink::uninstall();
        obs::set_level(obs::Level::Off);
    }
}

/// Runs `f` with an in-memory sink at [`obs::Level::Trace`] and returns the
/// captured JSONL.
fn with_trace_capture<T>(f: impl FnOnce() -> T) -> (T, String) {
    let _lock = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _guard = ObsGuard;
    let cap = Capture::default();
    obs::sink::install_writer(Box::new(cap.clone()));
    obs::set_level(obs::Level::Trace);
    let result = f();
    obs::sink::flush();
    let jsonl = cap.take_string();
    (result, jsonl)
}

/// Parses every JSONL line into a [`obs::json::Json`] object.
fn parse_lines(jsonl: &str) -> Vec<obs::json::Json> {
    jsonl
        .lines()
        .map(|l| obs::json::Json::parse(l).unwrap_or_else(|e| panic!("bad record {l:?}: {e}")))
        .collect()
}

fn num(rec: &obs::json::Json, key: &str) -> Option<f64> {
    rec.get(key)?.as_f64()
}

#[test]
fn spans_nest_correctly_across_worker_threads() {
    const WORKERS: usize = 3;
    let ((), jsonl) = with_trace_capture(|| {
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                s.spawn(move || {
                    let outer = obs::span("outer").arg("worker", w);
                    assert!(outer.is_active());
                    {
                        let _inner = obs::span("inner").arg("worker", w);
                    }
                    drop(outer);
                });
            }
        });
    });

    let records = parse_lines(&jsonl);
    assert_eq!(records.len(), 2 * WORKERS, "one record per span: {jsonl}");
    let by_name = |name: &str| -> Vec<&obs::json::Json> {
        records
            .iter()
            .filter(|r| r.get("name").and_then(|n| n.as_str()) == Some(name))
            .collect()
    };
    let outers = by_name("outer");
    let inners = by_name("inner");
    assert_eq!(outers.len(), WORKERS);
    assert_eq!(inners.len(), WORKERS);

    // Each worker's inner span is parented to that worker's outer span, on
    // the same thread id; top-level spans have no parent at all.
    for inner in &inners {
        let worker = inner
            .get("args")
            .and_then(|a| a.get("worker"))
            .and_then(|w| w.as_str())
            .expect("inner spans carry their worker arg");
        let outer = outers
            .iter()
            .find(|o| {
                o.get("args")
                    .and_then(|a| a.get("worker"))
                    .and_then(|w| w.as_str())
                    == Some(worker)
            })
            .expect("every inner has a matching outer");
        assert_eq!(
            num(inner, "parent"),
            num(outer, "id"),
            "inner must be parented to its own thread's outer span"
        );
        assert_eq!(
            num(inner, "tid"),
            num(outer, "tid"),
            "nesting must stay on one thread"
        );
        assert_eq!(num(outer, "parent"), None, "outer spans are roots");
    }
    // Sibling workers are distinguishable: three distinct thread ids.
    let mut tids: Vec<String> = outers
        .iter()
        .map(|o| format!("{:?}", num(o, "tid")))
        .collect();
    tids.sort();
    tids.dedup();
    assert_eq!(tids.len(), WORKERS, "each worker gets its own tid");
}

#[test]
fn disabled_levels_emit_nothing() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _guard = ObsGuard;
    let cap = Capture::default();
    obs::sink::install_writer(Box::new(cap.clone()));

    for level in [obs::Level::Off, obs::Level::Metrics] {
        obs::set_level(level);
        let span = obs::span("quiet").arg("k", 1);
        assert!(
            !span.is_active(),
            "spans below Trace must be inert at {level:?}"
        );
        drop(span);
        let _ = obs::event("quiet.event").arg("k", 2);
        obs::trace::emit_metrics(&obs::Registry::global().snapshot());
        obs::sink::flush();
        assert_eq!(
            cap.take_string(),
            "",
            "nothing may reach the sink at {level:?}"
        );
    }
}

#[test]
fn characterization_trace_roundtrips_through_chrome_converter() {
    let (stats, jsonl) = with_trace_capture(|| {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        let opts = CharacterizeOptions {
            jobs: 2,
            ..CharacterizeOptions::fast()
        };
        let (_, stats) = ProximityModel::characterize_with_stats(&cell, &tech, &opts)
            .expect("traced characterization must succeed");
        obs::trace::emit_metrics(&obs::Registry::global().snapshot());
        stats
    });

    // The derived stats agree with their own accounting invariant.
    assert_eq!(stats.invariant_violation(), None);
    assert!(stats.enumerated_jobs > 0);
    assert_eq!(
        stats.succeeded_jobs + stats.failed_jobs,
        stats.enumerated_jobs
    );

    // The trace covers every pipeline boundary of the run.
    for name in [
        "\"name\":\"char.characterize\"",
        "\"name\":\"char.phase.vtc\"",
        "\"name\":\"char.execute\"",
        "\"name\":\"char.job\"",
        "\"name\":\"spice.tran\"",
    ] {
        assert!(jsonl.contains(name), "trace must contain {name}");
    }
    let records = parse_lines(&jsonl);
    let metrics = records
        .iter()
        .filter(|r| r.get("t").and_then(|t| t.as_str()) == Some("metrics"))
        .collect::<Vec<_>>();
    assert_eq!(metrics.len(), 1);
    // Each scalar sample inside a metrics record becomes one counter-track
    // point in the Chrome output; histograms stay span-side only.
    let counter_samples: usize = metrics
        .iter()
        .map(|r| {
            let data = r.get("data").expect("metrics records carry data");
            ["counters", "gauges"]
                .iter()
                .map(|g| match data.get(g) {
                    Some(obs::json::Json::Obj(members)) => members.len(),
                    _ => 0,
                })
                .sum::<usize>()
        })
        .sum();
    assert!(counter_samples > 0, "characterization registers counters");

    // Convert and re-parse: valid JSON, spans as complete ("X") events,
    // instants as "i", metrics samples fanned out into counter tracks.
    let chrome = obs::chrome::chrome_trace(&jsonl).expect("conversion must succeed");
    let parsed = obs::json::Json::parse(&chrome).expect("chrome output is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("chrome output has a traceEvents array");
    assert_eq!(
        events.len(),
        records.len() - metrics.len() + counter_samples,
        "every span/event converts; each metrics sample becomes one counter point"
    );
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("phase");
        match ph {
            "X" => {
                for key in ["name", "ts", "dur", "tid", "pid"] {
                    assert!(ev.get(key).is_some(), "complete events carry {key}");
                }
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(|s| s.as_str()), Some("t"));
            }
            "C" => {
                assert_eq!(ev.get("cat").and_then(|c| c.as_str()), Some("counter"));
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_f64());
                assert!(value.is_some(), "counter points carry a numeric value");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
}
