//! Property-based tests of the paper's invariants, spanning crates.
//!
//! Implemented as seeded random sweeps over the same stimulus ranges the
//! paper validates (50–2000 ps transitions, ±800 ps separations). Each test
//! draws its cases from an explicitly seeded generator, so failures are
//! reproducible without a shrinker: the failure message prints the exact
//! stimulus.

use proxim::cells::{Cell, Technology};
use proxim::model::characterize::CharacterizeOptions;
use proxim::model::dominance::{rank_by_dominance, rank_for_scenario, RankedEvent};
use proxim::model::measure::{separation, InputEvent};
use proxim::model::{ProximityModel, Thresholds};
use proxim::numeric::pwl::{Edge, Pwl};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::LazyLock;

static NAND2_MODEL: LazyLock<ProximityModel> = LazyLock::new(|| {
    ProximityModel::characterize(
        &Cell::nand(2),
        &Technology::demo_5v(),
        &CharacterizeOptions::fast(),
    )
    .expect("characterization succeeds")
});

static NAND3_MODEL: LazyLock<ProximityModel> = LazyLock::new(|| {
    ProximityModel::characterize(
        &Cell::nand(3),
        &Technology::demo_5v(),
        &CharacterizeOptions::fast(),
    )
    .expect("characterization succeeds")
});

/// The paper's validation range for transition times: 50 ps to 2000 ps.
fn random_tau(rng: &mut StdRng) -> f64 {
    rng.random_range(50.0f64..2000.0) * 1e-12
}

/// Event separations spanning well past the proximity window.
fn random_sep(rng: &mut StdRng) -> f64 {
    rng.random_range(-800.0f64..800.0) * 1e-12
}

/// The §2 theorem: with min-V_il / max-V_ih thresholds, the composed delay
/// is positive for ANY combination of transition times and separations,
/// both edges, two or three inputs.
#[test]
fn delay_always_positive_nand2() {
    let model = &*NAND2_MODEL;
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for case in 0..64 {
        let (tau_a, tau_b, s) = (
            random_tau(&mut rng),
            random_tau(&mut rng),
            random_sep(&mut rng),
        );
        let edge = if case % 2 == 0 {
            Edge::Rising
        } else {
            Edge::Falling
        };
        let events = [
            InputEvent::new(0, edge, 0.0, tau_a),
            InputEvent::new(1, edge, s, tau_b),
        ];
        let t = model.gate_timing(&events).expect("query succeeds");
        assert!(
            t.delay > 0.0,
            "delay {} for tau=({tau_a},{tau_b}) s={s}",
            t.delay
        );
        assert!(t.output_transition > 0.0);
        assert!(t.inputs_in_window >= 1);
    }
}

#[test]
fn delay_always_positive_nand3() {
    let model = &*NAND3_MODEL;
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for _ in 0..64 {
        let events = [
            InputEvent::new(0, Edge::Falling, 0.0, random_tau(&mut rng)),
            InputEvent::new(1, Edge::Falling, random_sep(&mut rng), random_tau(&mut rng)),
            InputEvent::new(2, Edge::Falling, random_sep(&mut rng), random_tau(&mut rng)),
        ];
        let t = model.gate_timing(&events).expect("query succeeds");
        assert!(t.delay > 0.0, "delay {} for {events:?}", t.delay);
    }
}

/// Time-translation invariance: shifting every event by the same amount
/// shifts the output arrival by that amount and changes nothing else.
#[test]
fn timing_is_shift_invariant() {
    let model = &*NAND2_MODEL;
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for _ in 0..64 {
        let (tau_a, tau_b, s) = (
            random_tau(&mut rng),
            random_tau(&mut rng),
            random_sep(&mut rng),
        );
        let shift = rng.random_range(-5000.0f64..5000.0) * 1e-12;
        let base = [
            InputEvent::new(0, Edge::Falling, 0.0, tau_a),
            InputEvent::new(1, Edge::Falling, s, tau_b),
        ];
        let shifted: Vec<InputEvent> = base.iter().map(|e| e.delayed(shift)).collect();
        let t0 = model.gate_timing(&base).expect("query succeeds");
        let t1 = model.gate_timing(&shifted).expect("query succeeds");
        assert!(
            (t0.delay - t1.delay).abs() < 1e-18,
            "shift={shift} tau=({tau_a},{tau_b}) s={s}"
        );
        assert!((t0.output_transition - t1.output_transition).abs() < 1e-18);
        assert!((t1.output_arrival - t0.output_arrival - shift).abs() < 1e-15);
    }
}

/// Separation antisymmetry (§3): s_ab = -s_ba for any pair of events.
#[test]
fn separation_antisymmetric() {
    let th = Thresholds::new(1.25, 3.37, 5.0);
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for _ in 0..64 {
        let t_a = rng.random_range(-1000.0f64..1000.0) * 1e-12;
        let t_b = rng.random_range(-1000.0f64..1000.0) * 1e-12;
        let a = InputEvent::new(0, Edge::Falling, t_a, random_tau(&mut rng));
        let b = InputEvent::new(1, Edge::Falling, t_b, random_tau(&mut rng));
        assert!(
            (separation(&a, &b, &th) + separation(&b, &a, &th)).abs() < 1e-18,
            "t_a={t_a} t_b={t_b}"
        );
    }
}

/// Dominance ranking sorts by crossing time and is permutation invariant.
#[test]
fn dominance_rank_sorted_and_stable() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0005);
    for _ in 0..64 {
        let n = rng.random_range(2usize..6);
        let events: Vec<RankedEvent> = (0..n)
            .map(|i| {
                let arrival = rng.random_range(0.0f64..2000.0) * 1e-12;
                RankedEvent {
                    event: InputEvent::new(i, Edge::Falling, arrival, 100e-12),
                    arrival,
                    d1: rng.random_range(50.0f64..800.0) * 1e-12,
                    t1: 100e-12,
                }
            })
            .collect();
        let ranked = rank_by_dominance(events.clone());
        for w in ranked.windows(2) {
            assert!(w[0].crossing_time() <= w[1].crossing_time());
        }
        let mut reversed = events;
        reversed.reverse();
        let ranked_rev = rank_by_dominance(reversed);
        let pins: Vec<usize> = ranked.iter().map(|r| r.event.pin).collect();
        let pins_rev: Vec<usize> = ranked_rev.iter().map(|r| r.event.pin).collect();
        // With distinct crossing keys the order must agree.
        let keys: Vec<f64> = ranked.iter().map(|r| r.crossing_time()).collect();
        let distinct = keys.windows(2).all(|w| (w[1] - w[0]).abs() > 1e-18);
        if distinct {
            assert_eq!(pins, pins_rev);
        }
    }
}

/// rank_for_scenario(k = 1) equals rank_by_dominance, and for any k the
/// dominant is the k-th smallest crossing.
#[test]
fn scenario_rank_picks_kth_crossing() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0006);
    for _ in 0..64 {
        let n = rng.random_range(3usize..6);
        let events: Vec<RankedEvent> = (0..n)
            .map(|i| {
                let arrival = rng.random_range(0.0f64..2000.0) * 1e-12;
                RankedEvent {
                    event: InputEvent::new(i, Edge::Rising, arrival, 100e-12),
                    arrival,
                    d1: 300e-12,
                    t1: 100e-12,
                }
            })
            .collect();
        let k = rng.random_range(0usize..n) + 1;
        let sorted = rank_by_dominance(events.clone());
        let ranked = rank_for_scenario(events, k);
        assert_eq!(ranked[0].event.pin, sorted[k - 1].event.pin);
        assert_eq!(ranked.len(), n);
    }
}

/// PWL crossing times are monotone under time shift.
#[test]
fn pwl_shift_moves_crossings() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0007);
    for _ in 0..64 {
        let t_start = rng.random_range(0.0f64..100.0);
        let width = rng.random_range(1.0f64..100.0);
        let dt = rng.random_range(-50.0f64..50.0);
        let w = Pwl::ramp(t_start, width, 0.0, 1.0);
        let t0 = w.first_rising_crossing(0.5).expect("ramp crosses");
        let t1 = w
            .shifted(dt)
            .first_rising_crossing(0.5)
            .expect("ramp crosses");
        assert!(
            (t1 - t0 - dt).abs() < 1e-9 * width.max(1.0),
            "t_start={t_start} width={width} dt={dt}"
        );
    }
}

/// Transition time between interior thresholds is a fixed fraction of the
/// ramp width, independent of direction.
#[test]
fn ramp_transition_time_fraction() {
    let th = Thresholds::new(1.25, 3.37, 5.0);
    let mut rng = StdRng::seed_from_u64(0x5EED_0008);
    for case in 0..64 {
        let width_ps = rng.random_range(10.0f64..5000.0);
        let width = width_ps * 1e-12;
        let (edge, w) = if case % 2 == 0 {
            (Edge::Rising, Pwl::ramp(0.0, width, 0.0, 5.0))
        } else {
            (Edge::Falling, Pwl::ramp(0.0, width, 5.0, 0.0))
        };
        let tt = w
            .transition_time(th.v_il, th.v_ih, edge)
            .expect("full-swing ramp crosses both");
        let expect = (3.37 - 1.25) / 5.0 * width;
        assert!(
            (tt - expect).abs() < 1e-12 * width_ps,
            "width={width_ps}ps edge={edge}"
        );
    }
}

/// The simulator's RC step response matches the analytic exponential for
/// random component values spanning two decades each. Transient simulations
/// are heavier; fewer cases.
#[test]
fn rc_step_matches_analytic_for_random_components() {
    use proxim::spice::circuit::{Circuit, Waveform};
    use proxim::spice::tran::TranOptions;

    let mut rng = StdRng::seed_from_u64(0x5EED_0009);
    for _ in 0..12 {
        let r = rng.random_range(0.2f64..20.0) * 1e3;
        let c = rng.random_range(0.05f64..5.0) * 1e-12;
        let v_step = rng.random_range(0.5f64..5.0);
        let tau = r * c;
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            "VIN",
            inp,
            Circuit::GND,
            Waveform::step(0.0, tau * 1e-3, v_step),
        );
        ckt.resistor("R", inp, out, r);
        ckt.capacitor("C", out, Circuit::GND, c);
        let result = ckt
            .tran(&TranOptions::to(6.0 * tau).with_dv_max(0.01 * v_step))
            .expect("rc transient converges");
        let w = result.waveform(out);
        for frac in [0.5f64, 1.0, 2.0, 4.0] {
            let t = frac * tau;
            let expect = v_step * (1.0 - (-frac).exp());
            assert!(
                (w.eval(t) - expect).abs() < 0.02 * v_step,
                "R={r:.0} C={c:.2e} t/tau={frac}: {} vs {expect}",
                w.eval(t)
            );
        }
    }
}

/// The §2 positivity theorem holds all the way down to the stored tables:
/// a clean characterization of NAND2 and NAND3 over the paper's stimulus
/// ranges passes the full physics audit with zero findings.
#[test]
fn clean_models_audit_clean() {
    use proxim::model::audit::AuditOptions;
    for (name, model) in [("nand2", &*NAND2_MODEL), ("nand3", &*NAND3_MODEL)] {
        let report = model.audit(&AuditOptions::default());
        assert!(
            report.is_clean(),
            "{name}: {} findings, first: {}",
            report.len(),
            report.findings[0]
        );
    }
}

/// A deliberately wrong threshold policy — measuring a rising input at
/// 4.5 V instead of the family's min-V_il — produces the §2 failure mode
/// the paper's policy exists to prevent (negative measured delays for slow
/// inputs), and the audit must flag it.
#[test]
fn audit_flags_wrong_threshold_construction() {
    use proxim::model::audit::{check_single, AuditCheck, AuditOptions};
    use proxim::model::characterize::Simulator;
    use proxim::model::single::SingleInputModel;
    use proxim::numeric::grid::logspace;

    let cell = Cell::nand(2);
    let tech = Technology::demo_5v();
    // Violates the min-V_il rule: a slow rising ramp "arrives" at 90% of
    // its width, long after the output has already fallen.
    let bad_th = Thresholds::new(4.5, 4.9, 5.0);
    let sim = Simulator::new(&cell, &tech, bad_th, 100e-15, 0.08);
    let single =
        SingleInputModel::characterize(&sim, 0, Edge::Rising, &logspace(60e-12, 2000e-12, 4))
            .expect("characterization succeeds even with bad thresholds");
    let findings = check_single(&single, &AuditOptions::default());
    assert!(
        findings
            .iter()
            .any(|f| f.check == AuditCheck::Positivity && f.value <= 0.0),
        "negative delays from the broken threshold policy must be flagged, got {findings:?}"
    );
}

/// A NAND2's single-input delay is monotone in load capacitance.
#[test]
fn nand_delay_monotone_in_load() {
    let model = &*NAND2_MODEL;
    let mut rng = StdRng::seed_from_u64(0x5EED_000A);
    for _ in 0..12 {
        let tau = rng.random_range(100.0f64..1500.0) * 1e-12;
        let scale = rng.random_range(1.2f64..3.0);
        let c0 = model.reference_load();
        let e = [InputEvent::new(0, Edge::Rising, 0.0, tau)];
        let d_base = model.gate_timing_at_load(&e, c0).expect("query").delay;
        let d_more = model
            .gate_timing_at_load(&e, c0 * scale)
            .expect("query")
            .delay;
        assert!(
            d_more >= d_base,
            "load {scale}x at tau={tau}: {d_more} < {d_base}"
        );
    }
}
