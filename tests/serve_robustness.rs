//! Robustness suite for the timing-query daemon: hostile bytes on the
//! wire, corrupt bytes in the store, and (behind `fault-injection`)
//! injected wire faults and degraded-model provenance — all end to end
//! over a real Unix socket against an in-process [`Server`].
//!
//! The invariant under test everywhere: malformed input produces a *typed*
//! outcome (a `{"ok":false,"error":{"kind":...}}` response, a quarantined
//! file, a clean close) and never a panic, a wedge, or a silent drop. After
//! every abuse, the daemon must still answer its health probe.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_obs::json::Json;
use proxim_serve::proto::{frame_bytes, MAX_FRAME_BYTES};
use proxim_serve::server::one_shot;
use proxim_serve::{ModelLibrary, ModelStore, ServeOptions, Server};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_srvrb_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One shared fast model: characterization is the expensive part of this
/// suite, so it runs once for every test in the file.
fn shared_model() -> &'static ProximityModel {
    static MODEL: OnceLock<ProximityModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let tech = Technology::demo_5v();
        let cell = Cell::inv();
        ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
            .expect("test model characterizes")
    })
}

fn start_server(dir: &Path, opts: ServeOptions) -> Server {
    let store = ModelStore::new(dir.join("store"));
    store.save("inv", shared_model()).expect("seed store");
    let library = ModelLibrary::open(&store);
    Server::start(library, dir.join("serve.sock"), opts).expect("server starts")
}

/// Sends raw bytes, half-closes the write side, and drains everything the
/// server says back before it closes the connection.
fn send_raw(socket: &Path, bytes: &[u8]) -> Vec<u8> {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(bytes).expect("send corpus bytes");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

/// Decodes a drained byte stream as length-prefixed frames; every frame
/// must be complete and UTF-8 (a torn or binary-garbage response would be
/// its own protocol violation).
fn decode_frames(mut bytes: &[u8]) -> Vec<String> {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        assert!(bytes.len() >= 4, "torn length prefix in server response");
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert!(bytes.len() >= 4 + len, "torn frame in server response");
        frames.push(String::from_utf8(bytes[4..4 + len].to_vec()).expect("UTF-8 response"));
        bytes = &bytes[4 + len..];
    }
    frames
}

/// The malformed-wire corpus: (name, raw bytes, expected error kind;
/// `None` = a clean close is the only correct answer). Shared by the Unix
/// and TCP runs — the front ends must harden identically.
fn malformed_wire_corpus() -> Vec<(&'static str, Vec<u8>, Option<&'static str>)> {
    let huge_advert = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
    let nesting_bomb = frame_bytes("[".repeat(200_000).as_bytes());
    let negative_tt = frame_bytes(
        br#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0,"tt":-1e-9}]}"#,
    );
    let batch_bomb = {
        let q = r#"{"events":[{"pin":0,"edge":"rise","t":0,"tt":1e-9}]}"#;
        frame_bytes(
            format!(
                r#"{{"op":"batch","model":"inv","queries":[{}]}}"#,
                vec![q; 300].join(",")
            )
            .as_bytes(),
        )
    };
    let oversized_label =
        frame_bytes(format!(r#"{{"op":"reload","label":"{}"}}"#, "g".repeat(65)).as_bytes());

    vec![
        ("empty connection", vec![], None),
        ("truncated length prefix", vec![0x00, 0x01], Some("bad_frame")),
        ("truncated payload", frame_bytes(b"{\"op\":")[..7].to_vec(), Some("bad_frame")),
        ("oversized advertisement", huge_advert, Some("bad_frame")),
        ("non-UTF8 payload", frame_bytes(&[0xff, 0xfe, 0x80, 0x00]), Some("bad_frame")),
        // 0x07 is a valid (control) UTF-8 byte, so this passes the frame
        // layer and fails as an unparseable request.
        ("binary garbage, plausible length", frame_bytes(&[0x07; 64]), Some("bad_request")),
        ("garbage JSON", frame_bytes(b"}}}}not json"), Some("bad_request")),
        ("nesting bomb", nesting_bomb, Some("bad_request")),
        ("unknown op", frame_bytes(br#"{"op":"conquer"}"#), Some("bad_request")),
        ("missing events", frame_bytes(br#"{"op":"query","model":"inv"}"#), Some("bad_request")),
        ("negative transition time", negative_tt, Some("bad_request")),
        ("oversized batch", batch_bomb, Some("bad_request")),
        (
            "path-traversal model name",
            frame_bytes(
                br#"{"op":"query","model":"../../etc","events":[{"pin":0,"edge":"rise","t":0,"tt":1e-9}]}"#,
            ),
            Some("bad_request"),
        ),
        (
            "unknown model",
            frame_bytes(
                br#"{"op":"query","model":"absent","events":[{"pin":0,"edge":"rise","t":0,"tt":1e-9}]}"#,
            ),
            Some("unknown_model"),
        ),
        // The reload op is control-plane input and gets the same hostile
        // treatment: every malformed variant is a typed refusal, and the
        // live generation is untouched (checked via the swap counter at
        // the bottom of the test).
        (
            "reload with string force",
            frame_bytes(br#"{"op":"reload","force":"yes"}"#),
            Some("bad_request"),
        ),
        (
            "reload with numeric force",
            frame_bytes(br#"{"op":"reload","force":1}"#),
            Some("bad_request"),
        ),
        (
            "reload with null force",
            frame_bytes(br#"{"op":"reload","force":null}"#),
            Some("bad_request"),
        ),
        ("reload with oversized label", oversized_label, Some("bad_request")),
        (
            "reload with empty label",
            frame_bytes(br#"{"op":"reload","label":""}"#),
            Some("bad_request"),
        ),
        (
            "reload with hostile label charset",
            frame_bytes(br#"{"op":"reload","label":"has space"}"#),
            Some("bad_request"),
        ),
    ]
}

#[test]
fn malformed_wire_corpus_yields_typed_errors_and_zero_panics() {
    let dir = scratch_dir("corpus");
    let server = start_server(&dir, ServeOptions::default());
    let sock = server.socket_path().to_path_buf();

    for (what, bytes, expected) in malformed_wire_corpus() {
        let frames = decode_frames(&send_raw(&sock, &bytes));
        match expected {
            None => assert!(
                frames.is_empty(),
                "{what}: expected a clean close, got {frames:?}"
            ),
            Some(kind) => {
                assert_eq!(
                    frames.len(),
                    1,
                    "{what}: expected one typed response, got {frames:?}"
                );
                let json = Json::parse(&frames[0]).unwrap_or_else(|e| {
                    panic!("{what}: unparseable response ({e}): {}", frames[0])
                });
                let got = json
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("{what}: no error kind in {}", frames[0]));
                assert_eq!(got, kind, "{what}: {}", frames[0]);
            }
        }
        // The daemon survived this corpus entry: the probe still answers.
        let health = one_shot(&sock, r#"{"op":"health"}"#)
            .unwrap_or_else(|e| panic!("health probe dead after {what}: {e}"));
        assert!(
            health.contains("\"status\":\"serving\""),
            "{what}: {health}"
        );
    }

    // A valid query still works after the whole corpus.
    let resp = one_shot(
        &sock,
        r#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}"#,
    )
    .expect("post-corpus query");
    assert!(resp.contains("\"timing\""), "{resp}");

    server.begin_shutdown();
    let snap = server.join();
    assert!(
        snap.counter(proxim_obs::serve_metrics::PROTO_ERRORS) >= 10,
        "every corpus rejection must be counted"
    );
    assert_eq!(
        snap.counter(proxim_obs::serve_metrics::RELOAD_SWAPPED),
        0,
        "no malformed reload may swap a generation"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// [`send_raw`] over the TCP front end.
fn send_raw_tcp(addr: &str, bytes: &[u8]) -> Vec<u8> {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect tcp");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(bytes).expect("send corpus bytes");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

#[test]
fn malformed_wire_corpus_over_tcp_yields_typed_errors_and_zero_panics() {
    use proxim_serve::server::one_shot_tcp;

    let dir = scratch_dir("corpus_tcp");
    let store = ModelStore::new(dir.join("store"));
    store.save("inv", shared_model()).expect("seed store");
    let server = Server::start_with(
        ModelLibrary::open(&store),
        None,
        Some("127.0.0.1:0"),
        ServeOptions::default(),
    )
    .expect("tcp server starts");
    let addr = server.tcp_addr().expect("tcp addr").to_string();

    for (what, bytes, expected) in malformed_wire_corpus() {
        let frames = decode_frames(&send_raw_tcp(&addr, &bytes));
        match expected {
            None => assert!(
                frames.is_empty(),
                "{what} over tcp: expected a clean close, got {frames:?}"
            ),
            Some(kind) => {
                assert_eq!(
                    frames.len(),
                    1,
                    "{what} over tcp: expected one typed response, got {frames:?}"
                );
                let json = Json::parse(&frames[0]).unwrap_or_else(|e| {
                    panic!("{what} over tcp: unparseable response ({e}): {}", frames[0])
                });
                let got = json
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("{what} over tcp: no error kind in {}", frames[0]));
                assert_eq!(got, kind, "{what} over tcp: {}", frames[0]);
            }
        }
        let health = one_shot_tcp(&addr, r#"{"op":"health"}"#)
            .unwrap_or_else(|e| panic!("tcp health probe dead after {what}: {e}"));
        assert!(
            health.contains("\"status\":\"serving\""),
            "{what} over tcp: {health}"
        );
    }

    let resp = one_shot_tcp(
        &addr,
        r#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}"#,
    )
    .expect("post-corpus tcp query");
    assert!(resp.contains("\"timing\""), "{resp}");

    server.begin_shutdown();
    let snap = server.join();
    assert!(
        snap.counter(proxim_obs::serve_metrics::PROTO_ERRORS) >= 10,
        "every corpus rejection must be counted over tcp too"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_racing_shutdown_is_refused_typed_and_never_swaps() {
    use proxim_serve::proto::{read_frame, write_frame};

    let dir = scratch_dir("reload_race");
    let server = start_server(&dir, ServeOptions::default());
    let sock = server.socket_path().to_path_buf();

    // The connection predates the drain; the reload it then sends must be
    // refused typed (`shutting_down`) or see a clean close — never a swap,
    // never a hang.
    let mut stream = UnixStream::connect(&sock).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    server.begin_shutdown();
    let sent = write_frame(&mut stream, br#"{"op":"reload"}"#);
    if sent.is_ok() {
        match read_frame(&mut stream) {
            // A typed refusal, a clean close, or a reset (the drain tore
            // down the idle connection before the frame landed) are all
            // honest; a *partial* frame would not be.
            Ok(None) => {}
            Ok(Some(frame)) => {
                let text = String::from_utf8(frame).expect("UTF-8 response");
                assert!(
                    text.contains("\"shutting_down\""),
                    "a reload during drain must be a typed refusal: {text}"
                );
            }
            Err(e) => assert!(
                !e.detail.contains("truncated"),
                "reload during drain must not tear a frame: {e}"
            ),
        }
    }
    drop(stream);

    let snap = server.join();
    assert_eq!(
        snap.counter(proxim_obs::serve_metrics::RELOAD_SWAPPED),
        0,
        "a drain must never be interleaved with a generation swap"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_store_entries_quarantine_and_the_daemon_starts_degraded() {
    let dir = scratch_dir("store");
    let store = ModelStore::new(dir.join("store"));
    store.save("good", shared_model()).expect("seed store");

    // Three distinct corruptions: garbage, a torn (half-length) entry, and
    // a single flipped payload byte behind an intact header.
    let good_bytes = std::fs::read(store.entry_path("good")).expect("entry bytes");
    std::fs::write(store.entry_path("garbage"), b"not a store entry").expect("write");
    std::fs::write(
        store.entry_path("torn"),
        &good_bytes[..good_bytes.len() / 2],
    )
    .expect("write");
    let mut flipped = good_bytes.clone();
    let n = flipped.len();
    flipped[n - 1] ^= 0x40;
    std::fs::write(store.entry_path("bitrot"), &flipped).expect("write");

    let library = ModelLibrary::open(&store);
    assert_eq!(library.names(), vec!["good"]);
    assert_eq!(library.report().quarantined.len(), 3);
    for (path, reason) in &library.report().quarantined {
        assert!(path.exists(), "evidence missing: {}", path.display());
        assert!(
            path.to_string_lossy().ends_with(".quarantined"),
            "{}",
            path.display()
        );
        assert!(!reason.is_empty());
    }

    // The daemon starts *degraded*, says so, and serves the survivor.
    let server = Server::start(library, dir.join("serve.sock"), ServeOptions::default())
        .expect("degraded start");
    let sock = server.socket_path().to_path_buf();
    let health = one_shot(&sock, r#"{"op":"health"}"#).expect("health");
    assert!(health.contains("\"degraded\":true"), "{health}");
    assert!(health.contains("\"models\":1"), "{health}");
    let resp = one_shot(
        &sock,
        r#"{"op":"query","model":"good","events":[{"pin":0,"edge":"fall","t":0.0,"tt":1e-9}]}"#,
    )
    .expect("query survivor");
    assert!(resp.contains("\"timing\""), "{resp}");

    server.begin_shutdown();
    let snap = server.join();
    assert_eq!(
        snap.counter(proxim_obs::serve_metrics::STORE_QUARANTINED),
        3
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Fault-injected paths (wire tears, slow reads, degraded models)
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod faulted {
    use super::*;
    use proxim_model::{DegradedReason, InputEvent, SliceKind};
    use proxim_numeric::pwl::Edge;
    use proxim_serve::proto::{read_frame, write_frame, ErrorKind};
    use proxim_serve::wirefault::{self, WireFaultConfig};
    use proxim_spice::faultpoint::{self, FaultConfig};
    use std::sync::{Mutex, PoisonError};

    /// Wire-fault configuration is process-global; serialize the tests
    /// that arm it and always disarm, even on panic.
    static WIRE_LOCK: Mutex<()> = Mutex::new(());

    fn with_wire_faults<T>(cfg: WireFaultConfig, f: impl FnOnce() -> T) -> T {
        let _guard = WIRE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                wirefault::disarm();
            }
        }
        let _disarm = Disarm;
        wirefault::configure(cfg);
        f()
    }

    #[test]
    fn torn_server_frames_surface_as_typed_truncation_on_the_client() {
        let dir = scratch_dir("torn");
        let server = start_server(&dir, ServeOptions::default());
        let sock = server.socket_path().to_path_buf();
        let cfg = WireFaultConfig {
            torn_write_rate: 1.0,
            slow_read_rate: 0.0,
            slow_read: Duration::ZERO,
            seed: 7,
        };
        with_wire_faults(cfg, || {
            let mut stream = UnixStream::connect(&sock).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            write_frame(&mut stream, br#"{"op":"health"}"#).expect("send");
            // Every response write is torn to a strict prefix, so the
            // client-side frame reader must report a *typed* truncation
            // (or, if the tear kept zero bytes, a clean close) — never a
            // hang and never garbage accepted as a frame.
            match read_frame(&mut stream) {
                Ok(None) => {}
                Ok(Some(frame)) => panic!("torn write delivered a whole frame: {frame:?}"),
                Err(e) => {
                    assert_eq!(e.kind, ErrorKind::BadFrame, "{e}");
                    assert!(
                        e.detail.contains("truncated") || e.detail.contains("closed"),
                        "{e}"
                    );
                }
            }
        });
        // Disarmed again: the same daemon answers intact.
        let health = one_shot(&sock, r#"{"op":"health"}"#).expect("health after tears");
        assert!(health.contains("serving"), "{health}");
        server.begin_shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_slow_reads_delay_but_never_wedge() {
        let dir = scratch_dir("slowread");
        let server = start_server(&dir, ServeOptions::default());
        let sock = server.socket_path().to_path_buf();
        let cfg = WireFaultConfig {
            torn_write_rate: 0.0,
            slow_read_rate: 1.0,
            slow_read: Duration::from_millis(30),
            seed: 11,
        };
        with_wire_faults(cfg, || {
            let resp = one_shot(&sock, r#"{"op":"health"}"#).expect("slowed but served");
            assert!(resp.contains("serving"), "{resp}");
        });
        server.begin_shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degraded_model_answers_carry_provenance_over_the_wire() {
        // The proven recipe from tests/fault_injection.rs: this seed dooms
        // a deterministic subset of characterization runs, degrading at
        // least one dual slice whose single-input models survive.
        let cfg = FaultConfig {
            newton_rate: 0.20,
            accept_rate: 0.05,
            kill_rate: 0.02,
            seed: 1996,
        };
        faultpoint::configure(cfg);
        let tech = Technology::demo_5v();
        let cell = Cell::nand(2);
        let opts = CharacterizeOptions {
            jobs: 2,
            ..CharacterizeOptions::fast()
        };
        let model = ProximityModel::characterize(&cell, &tech, &opts)
            .expect("fault pressure degrades, not fails");
        faultpoint::disarm();
        assert!(model.is_degraded(), "seed 1996 must degrade slices");

        // Find a degraded dual whose singles survived and build the wire
        // query that makes the degraded pin dominant.
        let query = model
            .degraded_slices()
            .iter()
            .filter(|d| d.kind == SliceKind::Dual)
            .find_map(|d| {
                let partner = (d.pin + 1) % 2;
                if model.single_model(d.pin, d.edge).is_none()
                    || model.single_model(partner, d.edge).is_none()
                {
                    return None;
                }
                let (t_deg, t_partner) = match d.edge {
                    Edge::Falling => (0.0, 50e-12),
                    Edge::Rising => (50e-12, 0.0),
                };
                let events = [
                    InputEvent::new(d.pin, d.edge, t_deg, 400e-12),
                    InputEvent::new(partner, d.edge, t_partner, 400e-12),
                ];
                // Only serve the scenario if the in-process evaluation is
                // itself flagged (mirrors the fault_injection.rs check).
                let t = model.gate_timing(&events).ok()?;
                (t.degradation == Some(DegradedReason::DualSliceMissing)).then(|| {
                    let edge = |e: Edge| if e == Edge::Rising { "rise" } else { "fall" };
                    format!(
                        r#"{{"op":"query","model":"nand2","events":[
                            {{"pin":{},"edge":"{}","t":{:e},"tt":4e-10}},
                            {{"pin":{},"edge":"{}","t":{:e},"tt":4e-10}}]}}"#,
                        d.pin,
                        edge(d.edge),
                        t_deg,
                        partner,
                        edge(d.edge),
                        t_partner
                    )
                })
            })
            .expect("a degraded dual with surviving singles");

        let dir = scratch_dir("degraded_wire");
        let store = ModelStore::new(dir.join("store"));
        store.save("nand2", &model).expect("save degraded model");
        let library = ModelLibrary::open(&store);
        let server = Server::start(library, dir.join("serve.sock"), ServeOptions::default())
            .expect("server starts");
        let sock = server.socket_path().to_path_buf();

        let resp = one_shot(&sock, &query).expect("degraded query served");
        let json = Json::parse(&resp).expect("response json");
        let degraded = json
            .get("timing")
            .and_then(|t| t.get("degraded"))
            .and_then(Json::as_str);
        assert_eq!(
            degraded,
            Some("dual_slice_missing"),
            "degradation provenance must survive store round-trip and wire: {resp}"
        );

        server.begin_shutdown();
        let snap = server.join();
        assert_eq!(snap.counter(proxim_obs::serve_metrics::DEGRADED_ANSWERS), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
