//! End-to-end integration: characterize → query → cross-check against the
//! simulator, and run the full netlist-timing pipeline.

use proxim::cells::{Cell, Technology};
use proxim::model::characterize::{CharacterizeOptions, Simulator};
use proxim::model::{InputEvent, ProximityModel};
use proxim::numeric::pwl::Edge;
use proxim::sta::circuits::{c17, full_adder};
use proxim::sta::timing::{DelayMode, PiAssignment, Sta};
use proxim::sta::TimingLibrary;
use std::sync::LazyLock;

static NAND2_MODEL: LazyLock<ProximityModel> = LazyLock::new(|| {
    // Medium fidelity: the roundtrip accuracy bands below assume only a few
    // percent of table-interpolation error (full fidelity is validated in
    // EXPERIMENTS.md; `fast()` is for structural tests, not accuracy).
    ProximityModel::characterize(
        &Cell::nand(2),
        &Technology::demo_5v(),
        &CharacterizeOptions::medium(),
    )
    .expect("characterization succeeds")
});

#[test]
fn characterize_query_simulate_roundtrip() {
    let model = &*NAND2_MODEL;
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let sim = Simulator::new(
        &cell,
        &tech,
        *model.thresholds(),
        model.reference_load(),
        0.04,
    );

    for &(s, tau_a, tau_b, edge) in &[
        (0.0, 400e-12, 400e-12, Edge::Falling),
        (150e-12, 800e-12, 200e-12, Edge::Falling),
        (-200e-12, 300e-12, 1200e-12, Edge::Falling),
        (0.0, 500e-12, 500e-12, Edge::Rising),
        (100e-12, 1000e-12, 400e-12, Edge::Rising),
    ] {
        let e_a = InputEvent::new(0, edge, 0.0, tau_a);
        let arrival_a = e_a.arrival(model.thresholds());
        let frac_b = InputEvent::new(1, edge, 0.0, tau_b).arrival(model.thresholds());
        let e_b = InputEvent::new(1, edge, arrival_a + s - frac_b, tau_b);
        let events = [e_a, e_b];

        let predicted = model.gate_timing(&events).expect("query succeeds");
        let r = sim.simulate(&events).expect("simulation succeeds");
        let k = events
            .iter()
            .position(|e| e.pin == predicted.reference_pin)
            .expect("reference pin present");
        let measured = r
            .delay_from(k, model.thresholds())
            .expect("output switches");
        let err = (predicted.delay - measured).abs() / measured;
        assert!(
            err < 0.15,
            "{edge} s={s:.1e}: model {:.1}ps vs sim {:.1}ps ({:.1}% error)",
            predicted.delay * 1e12,
            measured * 1e12,
            err * 100.0
        );
    }
}

#[test]
fn model_generalizes_across_load() {
    // The dimensionless tables were characterized at 100 fF; they must
    // stay accurate at a different load.
    let model = &*NAND2_MODEL;
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let c_load = 220e-15;
    let sim = Simulator::new(&cell, &tech, *model.thresholds(), c_load, 0.04);

    let events = [
        InputEvent::new(0, Edge::Falling, 0.0, 600e-12),
        InputEvent::new(1, Edge::Falling, 100e-12, 600e-12),
    ];
    let predicted = model
        .gate_timing_at_load(&events, c_load)
        .expect("query succeeds");
    let r = sim.simulate(&events).expect("simulation succeeds");
    let k = events
        .iter()
        .position(|e| e.pin == predicted.reference_pin)
        .expect("pin present");
    let measured = r
        .delay_from(k, model.thresholds())
        .expect("output switches");
    let err = (predicted.delay - measured).abs() / measured;
    assert!(err < 0.20, "load generalization error {:.1}%", err * 100.0);
}

#[test]
fn nldm_surfaces_carry_queries_far_off_reference() {
    // A 100 fF-characterized library queried at a 15 fF fanout-like load:
    // the hybrid lookup routes through the load-slew surfaces and stays
    // accurate where the fixed-load dimensionless form would clamp.
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let opts = CharacterizeOptions {
        load_grid: Some(proxim::numeric::grid::logspace(8e-15, 300e-15, 4)),
        ..CharacterizeOptions::medium()
    };
    let model =
        ProximityModel::characterize(&cell, &tech, &opts).expect("characterization succeeds");
    assert!(model.load_slew_model(0, Edge::Falling).is_some());

    let c_small = 15e-15;
    let sim = Simulator::new(&cell, &tech, *model.thresholds(), c_small, 0.04);
    let events = [
        InputEvent::new(0, Edge::Falling, 0.0, 600e-12),
        InputEvent::new(1, Edge::Falling, 100e-12, 600e-12),
    ];
    let predicted = model
        .gate_timing_at_load(&events, c_small)
        .expect("query succeeds");
    let r = sim.simulate(&events).expect("simulation succeeds");
    let k = events
        .iter()
        .position(|e| e.pin == predicted.reference_pin)
        .expect("pin present");
    let measured = r
        .delay_from(k, model.thresholds())
        .expect("output switches");
    let err = (predicted.delay - measured).abs() / measured;
    assert!(err < 0.12, "off-reference error {:.1}%", err * 100.0);
}

#[test]
fn model_generalizes_across_technology() {
    // The entire flow runs unchanged on a different process corner.
    let tech = Technology::demo_3v3();
    let cell = Cell::nand(2);
    let model = ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
        .expect("3.3 V characterization succeeds");
    let th = model.thresholds();
    assert!(th.v_il > 0.0 && th.v_ih < tech.vdd);

    let events = [
        InputEvent::new(0, Edge::Falling, 0.0, 400e-12),
        InputEvent::new(1, Edge::Falling, 0.0, 400e-12),
    ];
    let t = model.gate_timing(&events).expect("query succeeds");
    assert!(t.delay > 0.0 && t.output_transition > 0.0);
}

#[test]
fn sta_pipeline_times_c17_both_modes() {
    let mut library = TimingLibrary::new();
    let nand2 = library.add(NAND2_MODEL.clone());
    let (nl, pis, pos) = c17(nand2);
    let sta = Sta::new(&library, &nl);
    let assignments = vec![
        PiAssignment::switching(pis[0], Edge::Rising, 0.0, 300e-12),
        PiAssignment::stable(pis[1], true),
        PiAssignment::stable(pis[2], true),
        PiAssignment::stable(pis[3], true),
        PiAssignment::stable(pis[4], true),
    ];
    for mode in [DelayMode::Proximity, DelayMode::SingleInput] {
        let report = sta.run(&assignments, mode).expect("timing runs");
        let ev = report.net_event(pos[0]).expect("N22 switches");
        assert!(
            ev.arrival > 0.0 && ev.arrival < 5e-9,
            "{mode:?}: {}",
            ev.arrival
        );
    }
}

#[test]
fn proximity_sta_differs_from_classic_on_simultaneous_inputs() {
    let mut library = TimingLibrary::new();
    let nand2 = library.add(NAND2_MODEL.clone());
    let (nl, ins, outs) = full_adder(nand2);
    let sta = Sta::new(&library, &nl);
    // a and b rise almost together: NAND(a, b) sees proximal inputs.
    let assignments = vec![
        PiAssignment::switching(ins[0], Edge::Rising, 0.0, 300e-12),
        PiAssignment::switching(ins[1], Edge::Rising, 30e-12, 300e-12),
        PiAssignment::stable(ins[2], false),
    ];
    let prox = sta.run(&assignments, DelayMode::Proximity).expect("runs");
    let single = sta.run(&assignments, DelayMode::SingleInput).expect("runs");
    let (po, tp) = prox.critical_arrival().expect("outputs switch");
    let (_, ts) = single.critical_arrival().expect("outputs switch");
    assert!(
        (tp - ts).abs() / ts > 0.005,
        "modes should disagree on proximal stimulus: {tp} vs {ts} (output {})",
        nl.net_name(po)
    );
    let _ = outs;
}

#[test]
fn cgaas_class_technology_characterizes_end_to_end() {
    // The paper's stated future work (§7): apply the technique to CGaAs.
    // The flow is technology-agnostic — thresholds come out of the gate's
    // own VTC family and all tables are dimensionless — so the surrogate
    // CGaAs-class corner runs unchanged.
    let tech = Technology::cgaas_like();
    let cell = Cell::nand(2);
    let model = ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
        .expect("CGaAs-class characterization succeeds");
    let th = model.thresholds();
    assert!(
        0.0 < th.v_il && th.v_il < th.v_ih && th.v_ih < tech.vdd,
        "{th:?}"
    );

    // The proximity speedup for falling inputs survives the corner.
    let together = model
        .gate_timing(&[
            InputEvent::new(0, Edge::Falling, 0.0, 300e-12),
            InputEvent::new(1, Edge::Falling, 0.0, 300e-12),
        ])
        .expect("query succeeds");
    let apart = model
        .gate_timing(&[
            InputEvent::new(0, Edge::Falling, 0.0, 300e-12),
            InputEvent::new(1, Edge::Falling, 30e-9, 300e-12),
        ])
        .expect("query succeeds");
    assert!(
        together.delay < apart.delay,
        "proximity speedup holds in CGaAs-class tech"
    );
}

#[test]
fn nor2_characterizes_with_flipped_threshold_policy() {
    // The NOR's V_il comes from the all-switching curve and V_ih from the
    // pin nearest the supply (§2) — the mirror of the NAND — and the model
    // still answers proximity queries with positive delays on both edges.
    let tech = Technology::demo_5v();
    let cell = Cell::nor(2);
    let model = ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
        .expect("NOR characterization succeeds");
    let th = model.thresholds();
    // NOR switching thresholds sit below mid-rail (weak PMOS stack).
    assert!(th.v_il < th.v_ih);
    for edge in [Edge::Rising, Edge::Falling] {
        let events = [
            InputEvent::new(0, edge, 0.0, 400e-12),
            InputEvent::new(1, edge, 60e-12, 700e-12),
        ];
        let t = model.gate_timing(&events).expect("query succeeds");
        assert!(t.delay > 0.0 && t.output_transition > 0.0, "{edge}");
        // NOR is inverting: rising inputs drop the output.
        let expect_edge = if edge == Edge::Rising {
            Edge::Falling
        } else {
            Edge::Rising
        };
        assert_eq!(t.output_edge, expect_edge);
    }
}

#[test]
fn aoi21_characterizes_despite_pin_without_controlling_value() {
    // AOI21's `a` pin has no single controlling value; scenario resolution
    // and characterization must still find sensitizing levels.
    let tech = Technology::demo_5v();
    let cell = Cell::aoi21();
    assert_eq!(cell.controlling_level(0), None);
    // AOI pins have heterogeneous partners (a-b is a series pair, c is a
    // parallel branch), so the one-partner-per-pin scheme is ambiguous;
    // asymmetric cells characterize the full pair matrix (DESIGN.md §7).
    let opts = CharacterizeOptions {
        full_pair_matrix: true,
        ..CharacterizeOptions::fast()
    };
    let model =
        ProximityModel::characterize(&cell, &tech, &opts).expect("AOI21 characterization succeeds");
    assert!(
        !model.extra_dual_models().is_empty(),
        "pair matrix characterized"
    );
    // The series pair (a, b) rising in proximity must show the stack
    // slowdown, like the NAND.
    let events = [
        InputEvent::new(0, Edge::Rising, 0.0, 500e-12),
        InputEvent::new(1, Edge::Rising, 0.0, 500e-12),
    ];
    let both = model.gate_timing(&events).expect("query succeeds");
    let spread = [
        InputEvent::new(0, Edge::Rising, 0.0, 500e-12),
        InputEvent::new(1, Edge::Rising, -20e-9, 500e-12),
    ];
    let apart = model.gate_timing(&spread).expect("query succeeds");
    assert!(
        both.delay > apart.delay,
        "stack proximity slows AOI21: {} vs {}",
        both.delay,
        apart.delay
    );
}

#[test]
fn mixed_cell_library_times_a_heterogeneous_netlist() {
    // NAND2 + INV in one netlist: per-cell models, per-net loads.
    let tech = Technology::demo_5v();
    let mut library = TimingLibrary::new();
    let nand2 = library.add(NAND2_MODEL.clone());
    let inv = library.add(
        ProximityModel::characterize(&Cell::inv(), &tech, &CharacterizeOptions::fast())
            .expect("INV characterization succeeds"),
    );

    let mut nl = proxim::sta::GateNetlist::new();
    let a = nl.net("a");
    let b = nl.net("b");
    let n1 = nl.net("n1");
    let y = nl.net("y");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    nl.add_gate("g1", nand2, &[a, b], n1);
    nl.add_gate("g2", inv, &[n1], y);
    let sta = Sta::new(&library, &nl);
    let report = sta
        .run(
            &[
                PiAssignment::switching(a, Edge::Rising, 0.0, 300e-12),
                PiAssignment::switching(b, Edge::Rising, 40e-12, 300e-12),
            ],
            DelayMode::Proximity,
        )
        .expect("mixed netlist times");
    let ev_n1 = report.net_event(n1).expect("NAND output switches");
    let ev_y = report.net_event(y).expect("INV output switches");
    assert_eq!(ev_n1.edge, Edge::Falling);
    assert_eq!(ev_y.edge, Edge::Rising);
    assert!(ev_y.arrival > ev_n1.arrival, "inverter adds delay");
    // Rising inputs gate the NAND's series stack on the later arrival (b),
    // so the critical path runs through it.
    assert_eq!(report.critical_path(), vec![b, n1, y]);
}

#[test]
fn model_persistence_roundtrip_through_disk() {
    let model = &*NAND2_MODEL;
    let path = std::env::temp_dir().join("proxim_e2e_model.json");
    model.save(&path).expect("save succeeds");
    let back = ProximityModel::load(&path).expect("load succeeds");
    std::fs::remove_file(&path).ok();
    let events = [
        InputEvent::new(0, Edge::Falling, 0.0, 500e-12),
        InputEvent::new(1, Edge::Falling, 100e-12, 500e-12),
    ];
    let a = model.gate_timing(&events).expect("query");
    let b = back.gate_timing(&events).expect("query");
    assert!((a.delay - b.delay).abs() < 1e-18 + 1e-12 * a.delay.abs());
}

#[test]
fn baselines_run_on_the_same_scenarios() {
    let model = &*NAND2_MODEL;
    let events = [
        InputEvent::new(0, Edge::Falling, 0.0, 400e-12),
        InputEvent::new(1, Edge::Falling, 80e-12, 700e-12),
    ];
    let prox = model.gate_timing(&events).expect("proximity query");
    let single =
        proxim::model::baseline::single_switching_timing(model, &events).expect("baseline");
    // The single-input baseline ignores the second pull-up path, so for
    // falling inputs in proximity it must be slower than the proximity
    // prediction.
    assert!(
        single.delay > prox.delay,
        "single-input {:.1}ps should exceed proximity {:.1}ps",
        single.delay * 1e12,
        prox.delay * 1e12
    );

    let mut collapsed = proxim::model::baseline::CollapsedInverter::new(
        Technology::demo_5v(),
        model.reference_load(),
        0.1,
        vec![150e-12, 600e-12, 1800e-12],
    );
    let coll = collapsed
        .timing(&Cell::nand(2), *model.thresholds(), &events)
        .expect("collapsed baseline");
    assert!(coll.delay > 0.0);
}
