//! Figure 2-1: the family of voltage-transfer curves of the 3-input NAND
//! (one per combination of switching inputs) and the table of candidate
//! thresholds, plus the paper's min-`V_il` / max-`V_ih` selection.

use proxim_cells::{Cell, Technology};
use proxim_model::thresholds::{extract_vtc_family, VtcFamily};
use proxim_model::ModelError;

/// Regenerates the VTC family at the given sweep resolution.
///
/// # Errors
///
/// Returns [`ModelError`] if a DC sweep fails to converge.
pub fn run(
    cell: &Cell,
    tech: &Technology,
    c_load: f64,
    points: usize,
) -> Result<VtcFamily, ModelError> {
    extract_vtc_family(cell, tech, c_load, points)
}

/// Prints the threshold table (the analogue of Figure 2-1(c)) and the
/// selected measurement thresholds.
pub fn print(cell: &Cell, family: &VtcFamily) {
    println!("\nFig 2-1(c): VTC thresholds per switching combination (V)");
    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "switching", "V_il", "V_m", "V_ih"
    );
    for c in family.curves() {
        let pins: Vec<String> = c
            .switching_pins()
            .iter()
            .map(|&p| cell.input_names()[p].clone())
            .collect();
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.3}",
            pins.join("+"),
            c.v_il,
            c.v_m,
            c.v_ih
        );
    }
    let th = family.thresholds();
    println!(
        "selected thresholds: V_il = {:.3} V (minimum), V_ih = {:.3} V (maximum)",
        th.v_il, th.v_ih
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand3_family_matches_paper_structure() {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(3);
        let family = run(&cell, &tech, 100e-15, 121).unwrap();
        // 2^3 - 1 = 7 sensitizable combinations for a NAND.
        assert_eq!(family.curves().len(), 7);
        // Every curve satisfies V_il < V_m < V_ih.
        for c in family.curves() {
            assert!(
                c.v_il < c.v_m && c.v_m < c.v_ih,
                "curve {:#b}",
                c.switching_mask
            );
        }
        // The paper's guarantee: min V_il < every V_m < max V_ih.
        let th = family.thresholds();
        for c in family.curves() {
            assert!(th.v_il < c.v_m && c.v_m < th.v_ih);
        }
    }

    #[test]
    fn nand_extremes_come_from_the_paper_predicted_curves() {
        // §2: "In case of a NAND gate, the V_il chosen would be from the
        // input closest to the ground and V_ih would be from the VTC
        // corresponding to all inputs switching at the same time."
        let tech = Technology::demo_5v();
        let cell = Cell::nand(3);
        let family = run(&cell, &tech, 100e-15, 121).unwrap();
        let min_curve = family
            .curves()
            .iter()
            .min_by(|a, b| a.v_il.partial_cmp(&b.v_il).unwrap())
            .unwrap();
        assert_eq!(
            min_curve.switching_mask, 0b100,
            "bottom input alone gives min V_il"
        );
        let max_curve = family
            .curves()
            .iter()
            .max_by(|a, b| a.v_ih.partial_cmp(&b.v_ih).unwrap())
            .unwrap();
        assert_eq!(
            max_curve.switching_mask, 0b111,
            "all switching gives max V_ih"
        );
    }

    #[test]
    fn nor_extremes_come_from_the_paper_predicted_curves() {
        // §2: "For the case of NOR gates, V_il would be chosen from the VTC
        // corresponding to all inputs switching at the same time and V_ih
        // chosen from the input closest to the power rail."
        let tech = Technology::demo_5v();
        let cell = Cell::nor(3);
        let family = run(&cell, &tech, 100e-15, 121).unwrap();
        let min_curve = family
            .curves()
            .iter()
            .min_by(|a, b| a.v_il.partial_cmp(&b.v_il).unwrap())
            .unwrap();
        assert_eq!(
            min_curve.switching_mask, 0b111,
            "all switching gives min V_il"
        );
        let max_curve = family
            .curves()
            .iter()
            .max_by(|a, b| a.v_ih.partial_cmp(&b.v_ih).unwrap())
            .unwrap();
        // Pin 0 is the series PMOS closest to the supply.
        assert_eq!(
            max_curve.switching_mask, 0b001,
            "top input alone gives max V_ih"
        );
    }

    #[test]
    fn stack_position_shifts_vtc() {
        // The VTC when only the bottom input switches differs from the top
        // input: body effect and stack position move V_m.
        let tech = Technology::demo_5v();
        let cell = Cell::nand(3);
        let family = run(&cell, &tech, 100e-15, 121).unwrap();
        let top = family.curve_for_mask(0b001).unwrap();
        let bottom = family.curve_for_mask(0b100).unwrap();
        assert!(
            (top.v_m - bottom.v_m).abs() > 5e-3,
            "stack position should shift V_m: top {} vs bottom {}",
            top.v_m,
            bottom.v_m
        );
    }
}
