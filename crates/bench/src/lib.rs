//! Experiment harness for the proxim suite.
//!
//! Every table and figure in the paper's evaluation maps to one module here
//! (see DESIGN.md §4 for the index); the `experiments` binary dispatches on
//! experiment ids and prints the regenerated rows/series. The Criterion
//! benches under `benches/` exercise the same code paths at reduced sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod baselines;
pub mod env;
pub mod fanin;
pub mod fig1_2;
pub mod fig2_1;
pub mod fig3_3;
pub mod fig4_2;
pub mod fig6_1;
pub mod path_validation;
pub mod table5_1;

pub use env::ExperimentEnv;
