//! Figure 6-1(b): the inertial-delay connection — magnitude of the output
//! glitch versus the separation between opposite transitions.
//!
//! Setup per §6: on the NAND (c non-controlling), input `b` rises (pulling
//! the output low) while input `a` falls (restoring it high). τ_a = 500 ps;
//! τ_b ∈ {100, 500, 1000} ps. When `a` arrives well after `b`, the output
//! completes its falling transition; as the separation shrinks, `a` blocks
//! the transition and only a partial glitch remains. The minimum separation
//! at which the extremum still reaches `V_il` is the gate's inertial delay.

use crate::env::ExperimentEnv;
use proxim_model::measure::{InputEvent, Scenario};
use proxim_model::ModelError;
use proxim_numeric::grid::linspace;
use proxim_numeric::pwl::Edge;
use proxim_spice::tran::TranOptions;

/// One sweep series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Rise time of the causing input `b`, in seconds.
    pub tau_b: f64,
    /// `(separation, simulated extremum, model extremum)` rows; separation
    /// is the blocker's arrival minus the causer's arrival.
    pub rows: Vec<(f64, f64, Option<f64>)>,
    /// The model's minimum separation for a valid output, if the glitch
    /// model was characterized.
    pub min_separation_model: Option<f64>,
}

/// Simulates one causer/blocker pair and returns the output minimum.
fn simulate_pair(env: &ExperimentEnv, e_b: InputEvent, e_a: InputEvent) -> Result<f64, ModelError> {
    // Stable pin c at its sensitizing level for the causer; a starts high.
    let scenario = Scenario::resolve(&env.cell, &[e_b])?;
    let mut net = env.cell.netlist(&env.tech, env.model.reference_load());
    for (pin, lv) in scenario.stable_levels.iter().enumerate() {
        if pin == e_a.pin {
            continue;
        }
        if let Some(h) = lv {
            net.set_level(pin, *h);
        }
    }
    let shift = 0.3e-9 - e_b.ramp.t_start.min(e_a.ramp.t_start).min(0.0);
    let e_b = e_b.delayed(shift);
    let e_a = e_a.delayed(shift);
    net.set_waveform(e_b.pin, e_b.ramp.waveform(env.tech.vdd));
    net.set_waveform(e_a.pin, e_a.ramp.waveform(env.tech.vdd));
    let t_end = (e_b.ramp.t_start + e_b.ramp.transition_time)
        .max(e_a.ramp.t_start + e_a.ramp.transition_time)
        + 4e-9;
    let r = net
        .circuit
        .tran(&TranOptions::to(t_end).with_dv_max(0.03))?;
    Ok(r.waveform(net.out).min().1)
}

/// Regenerates the figure.
///
/// # Errors
///
/// Returns [`ModelError`] on simulation failure.
pub fn run(env: &ExperimentEnv, points: usize) -> Result<Vec<Series>, ModelError> {
    let th = env.thresholds();
    let tau_a = 500e-12;
    let glitch = env.model.glitch_model(Edge::Rising);
    let c_load = env.model.reference_load();

    let mut out = Vec::new();
    for &tau_b in &[100e-12, 500e-12, 1000e-12] {
        let single_b = env.model.single_model(1, Edge::Rising);
        let d1 = single_b.map(|s| s.delay(tau_b, c_load));

        let seps = linspace(-400e-12, 1500e-12, points);
        let mut rows = Vec::with_capacity(points);
        for &s in &seps {
            // b (causer, rising) at a fixed arrival; a (blocker, falling)
            // arrives s later.
            let e_b = InputEvent::new(1, Edge::Rising, 0.0, tau_b);
            let arrival_b = e_b.arrival(&th);
            let frac_a = InputEvent::new(0, Edge::Falling, 0.0, tau_a).arrival(&th);
            let e_a = InputEvent::new(0, Edge::Falling, arrival_b + s - frac_a, tau_a);
            let v_sim = simulate_pair(env, e_b, e_a)?;
            let v_model = match (glitch, d1) {
                (Some(g), Some(d1)) => Some(g.peak_voltage(tau_b, tau_a, s, d1)),
                _ => None,
            };
            rows.push((s, v_sim, v_model));
        }
        let min_separation_model = match (glitch, d1) {
            (Some(g), Some(d1)) => g.min_separation_for_valid_output(tau_b, tau_a, d1, th.v_il),
            _ => None,
        };
        out.push(Series {
            tau_b,
            rows,
            min_separation_model,
        });
    }
    Ok(out)
}

/// Prints the figure.
pub fn print(series: &[Series], v_il: f64) {
    for s in series {
        println!(
            "\nFig 6-1(b): tau_b = {:.0} ps (V_il line at {:.2} V{})",
            s.tau_b * 1e12,
            v_il,
            s.min_separation_model
                .map(|m| format!("; model min separation = {:.0} ps", m * 1e12))
                .unwrap_or_default()
        );
        println!("{:>10} {:>12} {:>12}", "s [ps]", "Vmin sim", "Vmin model");
        for &(sep, v_sim, v_model) in &s.rows {
            println!(
                "{:>10.0} {:>12.3} {:>12}",
                sep * 1e12,
                v_sim,
                v_model
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "-".into())
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Fidelity;

    #[test]
    fn glitch_magnitude_decreases_with_separation() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        let series = run(&env, 6).unwrap();
        let fast = &series[0];
        let first = fast.rows.first().unwrap();
        let last = fast.rows.last().unwrap();
        // Blocker early (small s): the output barely moves (extremum high).
        // Blocker late (large s): the output completes its fall.
        assert!(
            last.1 < first.1 - 1.0,
            "extremum must deepen with separation: {} -> {}",
            first.1,
            last.1
        );
        let th = env.thresholds();
        assert!(last.1 < th.v_il, "late blocker admits a full transition");
    }
}
