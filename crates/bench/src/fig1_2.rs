//! Figure 1-2: delay and output transition time of the 3-input NAND as a
//! function of the separation between the transitions on inputs `a` and `b`
//! (input `c` stable at its non-controlling value).
//!
//! Four panels: (a) delay and (b) output rise time for *falling* inputs;
//! (c) delay and (d) output fall time for *rising* inputs. τ_a is fixed at
//! 500 ps and τ_b takes {100, 500, 1000} ps. All values are measured on the
//! circuit simulator relative to input `a`, exactly as the paper measures
//! its HSPICE sweeps.

use crate::env::ExperimentEnv;
use proxim_model::measure::InputEvent;
use proxim_model::ModelError;
use proxim_numeric::grid::linspace;
use proxim_numeric::pwl::Edge;

/// One sweep series: a fixed τ_b and the per-separation measurements.
#[derive(Debug, Clone)]
pub struct Series {
    /// Partner transition time, in seconds.
    pub tau_b: f64,
    /// `(separation, delay, output transition time)` rows, in seconds.
    pub rows: Vec<(f64, f64, f64)>,
}

/// The regenerated figure: one panel pair per input edge.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Falling-input series (panels a and b).
    pub falling: Vec<Series>,
    /// Rising-input series (panels c and d).
    pub rising: Vec<Series>,
}

/// Regenerates the figure with `points` separations per series.
///
/// # Errors
///
/// Returns [`ModelError`] if a simulation fails; points whose output never
/// completes a transition are skipped (they do not occur for same-direction
/// pairs).
pub fn run(env: &ExperimentEnv, points: usize) -> Result<Fig12, ModelError> {
    let tau_a = 500e-12;
    let tau_bs = [100e-12, 500e-12, 1000e-12];
    let sim = env.reference_simulator();
    let th = env.thresholds();

    let mut panels = Vec::new();
    for edge in [Edge::Falling, Edge::Rising] {
        let mut series = Vec::new();
        for &tau_b in &tau_bs {
            // Separation convention per panel: `a` is the causing input in
            // both cases and delay is measured from it. Falling inputs
            // (parallel pull-ups): `b` trails `a` by `s` and its transition
            // is blocked once `s` exceeds the proximity window. Rising
            // inputs (series stack): `b` leads `a` by `s`, and for large
            // `s` its transistor is fully on before `a` ramps.
            let seps = linspace(0.0, 800e-12, points);
            let mut rows = Vec::with_capacity(points);
            for &s in &seps {
                let e_a = InputEvent::new(0, edge, 0.0, tau_a);
                let arrival_a = e_a.arrival(&th);
                let b_target = match edge {
                    Edge::Falling => arrival_a + s,
                    Edge::Rising => arrival_a - s,
                };
                let frac_b = InputEvent::new(1, edge, 0.0, tau_b).arrival(&th);
                let e_b = InputEvent::new(1, edge, b_target - frac_b, tau_b);
                let r = sim.simulate(&[e_a, e_b])?;
                let delay = r.delay_from(0, &th)?;
                let trans = r.transition_time(&th)?;
                rows.push((s, delay, trans));
            }
            series.push(Series { tau_b, rows });
        }
        panels.push(series);
    }
    let rising = panels.pop().expect("two panels pushed");
    let falling = panels.pop().expect("two panels pushed");
    Ok(Fig12 { falling, rising })
}

/// Prints the figure as aligned columns (ps units).
pub fn print(fig: &Fig12) {
    for (label, series, effect) in [
        (
            "Fig 1-2(a,b): falling inputs a,b (output rises)",
            &fig.falling,
            "speedup",
        ),
        (
            "Fig 1-2(c,d): rising inputs a,b (output falls)",
            &fig.rising,
            "slowdown",
        ),
    ] {
        println!("\n{label} — proximity {effect}");
        print!("{:>10}", "s [ps]");
        for s in series.iter() {
            print!(
                "{:>14}{:>14}",
                format!("d(tb={})", (s.tau_b * 1e12) as i64),
                format!("tt(tb={})", (s.tau_b * 1e12) as i64)
            );
        }
        println!();
        let n = series[0].rows.len();
        for k in 0..n {
            print!("{:>10.0}", series[0].rows[k].0 * 1e12);
            for s in series.iter() {
                print!("{:>14.1}{:>14.1}", s.rows[k].1 * 1e12, s.rows[k].2 * 1e12);
            }
            println!();
        }
    }
}

/// The paper's qualitative claims for this figure, checked programmatically
/// (used by integration tests and by `EXPERIMENTS.md` generation).
pub struct Fig12Checks {
    /// Falling inputs: delay at close proximity < delay at far separation.
    pub falling_speedup_factor: f64,
    /// Rising inputs: delay at close proximity > delay at far separation.
    pub rising_slowdown_factor: f64,
}

/// Computes the headline factors: far-separation delay divided by
/// zero-separation delay (falling: proximity speeds the output, so the
/// factor exceeds 1), and the inverse ratio (rising: proximity slows it).
pub fn checks(fig: &Fig12) -> Fig12Checks {
    let factor = |series: &Series| {
        let near = series.rows.first().expect("series is non-empty").1;
        let far = series.rows.last().expect("series is non-empty").1;
        (far, near)
    };
    // Use the slowest partner (τ_b = 1000 ps): a fast partner is already
    // done ramping at zero separation and barely perturbs the output.
    let (far_f, near_f) = factor(fig.falling.last().expect("three series"));
    let (far_r, near_r) = factor(fig.rising.last().expect("three series"));
    Fig12Checks {
        falling_speedup_factor: far_f / near_f,
        rising_slowdown_factor: near_r / far_r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Fidelity;

    #[test]
    fn shapes_match_the_paper() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        let fig = run(&env, 7).unwrap();
        assert_eq!(fig.falling.len(), 3);
        assert_eq!(fig.rising.len(), 3);
        let c = checks(&fig);
        assert!(
            c.falling_speedup_factor > 1.05,
            "falling proximity must speed the output: {}",
            c.falling_speedup_factor
        );
        assert!(
            c.rising_slowdown_factor > 1.05,
            "rising proximity must slow the output: {}",
            c.rising_slowdown_factor
        );
    }
}
