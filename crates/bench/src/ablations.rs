//! Ablations of the design choices DESIGN.md calls out: the correction
//! term, the dominance ordering, dual-table grid resolution, and the
//! transient integrator.

use crate::env::ExperimentEnv;
use crate::table5_1::{events_for, population};
use proxim_cells::{Cell, Technology};
use proxim_model::algorithm::{compose, CorrectionTerm};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::dominance::RankedEvent;
use proxim_model::dual::DualInputModel;
use proxim_model::measure::InputEvent;
use proxim_model::{ModelError, ProximityModel};
use proxim_numeric::grid::{linspace, logspace};
use proxim_numeric::pwl::Edge;
use proxim_numeric::Summary;
use proxim_spice::tran::Integrator;

/// Correction-term ablation: delay error with and without the correction.
#[derive(Debug, Clone)]
pub struct CorrectionAblation {
    /// With the correction applied (the paper's method).
    pub with_correction: Summary,
    /// Without it.
    pub without_correction: Summary,
}

/// Runs the correction ablation on the Table 5-1 population.
///
/// # Errors
///
/// Returns [`ModelError`] if a simulation or model query fails.
pub fn correction(
    env: &ExperimentEnv,
    count: usize,
    seed: u64,
) -> Result<CorrectionAblation, ModelError> {
    let sim = env.reference_simulator();
    let th = env.thresholds();
    let c_load = env.model.reference_load();
    let mut with = Vec::with_capacity(count);
    let mut without = Vec::with_capacity(count);

    for cfg in population(count, seed) {
        let events = events_for(env, &cfg);
        let on = env.model.gate_timing_opts(&events, c_load, true)?;
        let off = env.model.gate_timing_opts(&events, c_load, false)?;
        let r = sim.simulate(&events)?;
        let k = events
            .iter()
            .position(|e| e.pin == on.reference_pin)
            .expect("pin");
        let d_sim = r.delay_from(k, &th)?;
        with.push((on.delay - d_sim) / d_sim * 100.0);
        without.push((off.delay - d_sim) / d_sim * 100.0);
    }
    Ok(CorrectionAblation {
        with_correction: Summary::of(&with),
        without_correction: Summary::of(&without),
    })
}

/// Dominance-rule ablation: the paper's crossing-time ranking versus naive
/// arrival-order ranking, on dual-input falling scenarios where the two
/// rules disagree (a slow early input and a fast late one).
#[derive(Debug, Clone)]
pub struct DominanceAblation {
    /// Delay error with the paper's ranking, in percent.
    pub paper_rule: Summary,
    /// Delay error referencing the first-arriving input instead.
    pub arrival_rule: Summary,
}

/// Runs the dominance ablation.
///
/// # Errors
///
/// Returns [`ModelError`] if a simulation or model query fails.
pub fn dominance(env: &ExperimentEnv, points: usize) -> Result<DominanceAblation, ModelError> {
    let edge = Edge::Falling;
    let sim = env.reference_simulator();
    let th = env.thresholds();
    let c_load = env.model.reference_load();
    let single = |pin: usize| {
        env.model
            .single_model(pin, edge)
            .ok_or_else(|| ModelError::InvalidQuery {
                detail: format!("pin {pin} uncharacterized"),
            })
    };
    let duals: Vec<Option<&DualInputModel>> = (0..env.cell.input_count())
        .map(|p| env.model.dual_model(p, edge))
        .collect();

    // A slow input a arrives first; a fast input b arrives inside the
    // disagreement band 0 < s < Δ_a - Δ_b where b's crossing is earlier.
    let tau_a = 1500e-12;
    let tau_b = 100e-12;
    let d_a = single(0)?.delay(tau_a, c_load);
    let d_b = single(1)?.delay(tau_b, c_load);
    let band = (d_a - d_b).max(1e-12);

    let mut paper_errs = Vec::new();
    let mut arrival_errs = Vec::new();
    for s in linspace(0.1 * band, 0.9 * band, points) {
        let e_a = InputEvent::new(0, edge, 0.0, tau_a);
        let arrival_a = e_a.arrival(&th);
        let frac_b = InputEvent::new(1, edge, 0.0, tau_b).arrival(&th);
        let e_b = InputEvent::new(1, edge, arrival_a + s - frac_b, tau_b);
        let events = [e_a, e_b];

        // Paper rule (through the model).
        let paper = env.model.gate_timing_opts(&events, c_load, false)?;
        // Naive rule: force the first-arriving input (a) as the reference.
        let ranked: Vec<RankedEvent> = events
            .iter()
            .map(|e| {
                let sm = single(e.pin).expect("characterized");
                RankedEvent {
                    event: *e,
                    arrival: e.arrival(&th),
                    d1: sm.delay(e.transition_time(), c_load),
                    t1: sm.transition(e.transition_time(), c_load),
                }
            })
            .collect();
        let naive = compose(
            &ranked,
            &|dom, _| duals.get(dom).copied().flatten(),
            CorrectionTerm::default(),
            false,
            true,
        );

        let r = sim.simulate(&events)?;
        let arrival_sim = {
            let k = events
                .iter()
                .position(|e| e.pin == paper.reference_pin)
                .expect("pin");
            events[k].arrival(&th) + r.delay_from(k, &th)?
        };
        let d_ref = arrival_sim - events[0].arrival(&th).min(events[1].arrival(&th));
        paper_errs.push((paper.output_arrival - arrival_sim) / d_ref * 100.0);
        arrival_errs.push((naive.output_arrival - arrival_sim) / d_ref * 100.0);
    }
    Ok(DominanceAblation {
        paper_rule: Summary::of(&paper_errs),
        arrival_rule: Summary::of(&arrival_errs),
    })
}

/// Grid-resolution ablation: characterize a NAND2 at several dual-table
/// resolutions and report the validation error of each.
#[derive(Debug, Clone)]
pub struct GridAblation {
    /// `(points per dual axis, delay error summary)` rows.
    pub rows: Vec<(usize, Summary)>,
}

/// Runs the grid ablation (NAND2 to bound characterization cost).
///
/// # Errors
///
/// Returns [`ModelError`] if characterization or validation fails.
pub fn grid(points_per_axis: &[usize], configs: usize) -> Result<GridAblation, ModelError> {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let mut rows = Vec::new();
    for &g in points_per_axis {
        let opts = CharacterizeOptions {
            tau_grid: logspace(50e-12, 2000e-12, 4),
            dual_u_grid: logspace(0.2, 8.0, g),
            dual_v_grid: logspace(0.2, 8.0, g),
            dual_w_grid: linspace(-2.0, 1.5, (2 * g).max(4)),
            glitch: false,
            ..CharacterizeOptions::fast()
        };
        let model = ProximityModel::characterize(&cell, &tech, &opts)?;
        let sim = proxim_model::characterize::Simulator::new(
            &cell,
            &tech,
            *model.thresholds(),
            model.reference_load(),
            0.05,
        );
        let th = *model.thresholds();
        let mut errs = Vec::with_capacity(configs);
        let pop = population(configs, 99);
        for cfg in pop {
            // Two-input version: drop the third event.
            let e_a = InputEvent::new(0, Edge::Falling, 0.0, cfg.tau[0]);
            let arrival_a = e_a.arrival(&th);
            let frac_b = InputEvent::new(1, Edge::Falling, 0.0, cfg.tau[1]).arrival(&th);
            let e_b = InputEvent::new(1, Edge::Falling, arrival_a + cfg.s_ab - frac_b, cfg.tau[1]);
            let events = [e_a, e_b];
            let predicted = model.gate_timing(&events)?;
            let r = sim.simulate(&events)?;
            let k = events
                .iter()
                .position(|e| e.pin == predicted.reference_pin)
                .expect("pin");
            let d_sim = r.delay_from(k, &th)?;
            errs.push((predicted.delay - d_sim) / d_sim * 100.0);
        }
        rows.push((g, Summary::of(&errs)));
    }
    Ok(GridAblation { rows })
}

/// Analytic-form ablation: the table macromodels versus fitted closed forms
/// (§3's remark that closed forms exist), reporting accuracy and storage.
#[derive(Debug, Clone)]
pub struct AnalyticAblation {
    /// R² of the two-coefficient single-input delay law.
    pub single_delay_r2: f64,
    /// R² of the ten-coefficient dual-input delay surface.
    pub dual_delay_r2: f64,
    /// Delay error of table-backed predictions on a τ sweep, in percent.
    pub table_errs: Summary,
    /// Delay error of closed-form predictions on the same sweep.
    pub analytic_errs: Summary,
    /// `(table entries, coefficients)` for the single+dual pair.
    pub storage: (usize, usize),
}

/// Runs the analytic ablation on a NAND2 single+dual model pair.
///
/// # Errors
///
/// Returns [`ModelError`] on characterization or fitting failure.
pub fn analytic(env: &ExperimentEnv, points: usize) -> Result<AnalyticAblation, ModelError> {
    use proxim_model::analytic::{AnalyticDual, AnalyticSingle};

    let edge = Edge::Falling;
    let c_load = env.model.reference_load();
    let single = env
        .model
        .single_model(0, edge)
        .ok_or_else(|| ModelError::InvalidQuery {
            detail: "pin 0 uncharacterized".into(),
        })?;
    let dual = env
        .model
        .dual_model(0, edge)
        .ok_or_else(|| ModelError::InvalidQuery {
            detail: "pin 0 dual uncharacterized".into(),
        })?;
    let fit_single = AnalyticSingle::fit(single)?;
    let fit_dual = AnalyticDual::fit(dual, ((0.15, 9.0), (0.15, 9.0), (-2.5, 1.0)), 7)?;

    // Validate single-input delay over a τ sweep against simulation.
    let sim = env.reference_simulator();
    let th = env.thresholds();
    let mut table_errs = Vec::new();
    let mut analytic_errs = Vec::new();
    for tau in proxim_numeric::grid::logspace(60e-12, 1900e-12, points) {
        let r = sim.simulate(&[InputEvent::new(0, edge, 0.0, tau)])?;
        let d_sim = r.delay_from(0, &th)?;
        table_errs.push((single.delay(tau, c_load) - d_sim) / d_sim * 100.0);
        analytic_errs.push((fit_single.delay(tau, c_load) - d_sim) / d_sim * 100.0);
    }

    Ok(AnalyticAblation {
        single_delay_r2: fit_single.delay_r2,
        dual_delay_r2: fit_dual.delay_r2,
        table_errs: Summary::of(&table_errs),
        analytic_errs: Summary::of(&analytic_errs),
        storage: (
            single.table_len() + dual.table_len(),
            fit_single.coefficient_count() + fit_dual.coefficient_count(),
        ),
    })
}

/// Prints the analytic ablation.
pub fn print_analytic(a: &AnalyticAblation) {
    println!("\nAblation: table vs closed-form macromodels (NAND3 pin a, falling)");
    println!(
        "fit quality: single delay R² = {:.4}, dual delay surface R² = {:.4}",
        a.single_delay_r2, a.dual_delay_r2
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10}",
        "backend", "mean", "std-dev", "max", "min"
    );
    for (name, s) in [("table", &a.table_errs), ("closed form", &a.analytic_errs)] {
        println!(
            "{:>14} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name, s.mean, s.std_dev, s.max, s.min
        );
    }
    println!(
        "storage: {} table entries vs {} coefficients ({}x reduction)",
        a.storage.0,
        a.storage.1,
        a.storage.0 / a.storage.1.max(1)
    );
}

/// Pair-matrix ablation: the paper's `2n` dual-model scheme versus the full
/// `n(n-1)` pair matrix (Fig 4-2 option 2a), evaluated on the Table 5-1
/// population with a NAND3 characterized once including the extra pairs.
#[derive(Debug, Clone)]
pub struct PairAblation {
    /// Delay error with the paper's 2n scheme.
    pub paper_scheme: Summary,
    /// Delay error with exact-pair lookups.
    pub pair_matrix: Summary,
    /// Stored dual-table entries under each scheme.
    pub entries: (usize, usize),
}

/// Runs the pair-matrix ablation. Characterizes its own NAND3 with
/// `full_pair_matrix` enabled (medium grids to bound cost).
///
/// # Errors
///
/// Returns [`ModelError`] if characterization or validation fails.
pub fn pairs(configs: usize, seed: u64) -> Result<PairAblation, ModelError> {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(3);
    let opts = CharacterizeOptions {
        full_pair_matrix: true,
        glitch: false,
        ..CharacterizeOptions::medium()
    };
    let matrix_model = ProximityModel::characterize(&cell, &tech, &opts)?;
    // The same model *without* its extras behaves as the paper scheme; we
    // rebuild one cheaply by re-characterizing without the matrix flag.
    let paper_model = ProximityModel::characterize(
        &cell,
        &tech,
        &CharacterizeOptions {
            full_pair_matrix: false,
            ..opts
        },
    )?;

    let th = *matrix_model.thresholds();
    let sim = proxim_model::characterize::Simulator::new(
        &cell,
        &tech,
        th,
        matrix_model.reference_load(),
        0.04,
    );
    let mut paper_errs = Vec::with_capacity(configs);
    let mut matrix_errs = Vec::with_capacity(configs);
    for cfg in population(configs, seed) {
        let e_a = InputEvent::new(0, Edge::Falling, 0.0, cfg.tau[0]);
        let arrival_a = e_a.arrival(&th);
        let place = |pin: usize, tau: f64, s: f64| {
            let frac = InputEvent::new(pin, Edge::Falling, 0.0, tau).arrival(&th);
            InputEvent::new(pin, Edge::Falling, arrival_a + s - frac, tau)
        };
        let events = [
            e_a,
            place(1, cfg.tau[1], cfg.s_ab),
            place(2, cfg.tau[2], cfg.s_ac),
        ];

        let p = paper_model.gate_timing(&events)?;
        let m = matrix_model.gate_timing(&events)?;
        let r = sim.simulate(&events)?;
        let k = events
            .iter()
            .position(|e| e.pin == p.reference_pin)
            .expect("pin");
        let d_sim = r.delay_from(k, &th)?;
        let arrival_sim = events[k].arrival(&th) + d_sim;
        paper_errs.push((p.output_arrival - arrival_sim) / d_sim * 100.0);
        matrix_errs.push((m.output_arrival - arrival_sim) / d_sim * 100.0);
    }

    let dual_entries = |model: &ProximityModel| {
        let primary: usize = (0..cell.input_count())
            .flat_map(|p| {
                [Edge::Rising, Edge::Falling]
                    .into_iter()
                    .filter_map(move |e| model.dual_model(p, e).map(|m| m.table_len()))
            })
            .sum();
        primary
            + model
                .extra_dual_models()
                .iter()
                .map(|m| m.table_len())
                .sum::<usize>()
    };
    Ok(PairAblation {
        paper_scheme: Summary::of(&paper_errs),
        pair_matrix: Summary::of(&matrix_errs),
        entries: (dual_entries(&paper_model), dual_entries(&matrix_model)),
    })
}

/// Prints the pair ablation.
pub fn print_pairs(p: &PairAblation) {
    println!("\nAblation: dual-model storage scheme (NAND3, output-arrival error %)");
    println!(
        "{:>22} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "mean", "std-dev", "max", "min", "entries"
    );
    for (name, s, e) in [
        ("paper 2n", &p.paper_scheme, p.entries.0),
        ("full pair matrix", &p.pair_matrix, p.entries.1),
    ] {
        println!(
            "{:>22} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12}",
            name, s.mean, s.std_dev, s.max, s.min, e
        );
    }
}

/// Integrator ablation: the Fig 1-2(a) sweep under trapezoidal versus
/// backward-Euler integration; reports the worst relative delay deviation.
///
/// # Errors
///
/// Returns [`ModelError`] if a simulation fails.
pub fn integrator(env: &ExperimentEnv, points: usize) -> Result<f64, ModelError> {
    let th = env.thresholds();
    let tau = 500e-12;
    let mut worst: f64 = 0.0;
    for s in linspace(-300e-12, 500e-12, points) {
        let e_a = InputEvent::new(0, Edge::Falling, 0.0, tau);
        let arrival_a = e_a.arrival(&th);
        let frac_b = InputEvent::new(1, Edge::Falling, 0.0, tau).arrival(&th);
        let e_b = InputEvent::new(1, Edge::Falling, arrival_a + s - frac_b, tau);

        let mut delays = Vec::new();
        for method in [Integrator::Trapezoidal, Integrator::BackwardEuler] {
            let scenario = proxim_model::measure::Scenario::resolve(&env.cell, &[e_a, e_b])?;
            let mut net = env.cell.netlist(&env.tech, env.model.reference_load());
            for (pin, lv) in scenario.stable_levels.iter().enumerate() {
                if let Some(h) = lv {
                    net.set_level(pin, *h);
                }
            }
            let shift = 0.3e-9 - e_b.ramp.t_start.min(0.0);
            let ea = e_a.delayed(shift);
            let eb = e_b.delayed(shift);
            net.set_waveform(ea.pin, ea.ramp.waveform(env.tech.vdd));
            net.set_waveform(eb.pin, eb.ramp.waveform(env.tech.vdd));
            let t_end = (ea.ramp.t_start + tau).max(eb.ramp.t_start + tau) + 4e-9;
            let opts = proxim_spice::tran::TranOptions::to(t_end)
                .with_dv_max(0.03)
                .with_integrator(method);
            let r = net.circuit.tran(&opts)?;
            let out = r.waveform(net.out);
            let t_out =
                out.first_rising_crossing(th.v_il)
                    .ok_or_else(|| ModelError::MissingCrossing {
                        what: "integrator ablation".into(),
                    })?;
            delays.push(t_out - ea.arrival(&th));
        }
        let dev = (delays[0] - delays[1]).abs() / delays[0].abs().max(1e-15);
        worst = worst.max(dev);
    }
    Ok(worst)
}

/// Prints all ablation results.
pub fn print_correction(c: &CorrectionAblation) {
    println!("\nAblation: simultaneous-step correction term (delay error %)");
    println!(
        "{:>20} {:>10} {:>10} {:>10} {:>10}",
        "variant", "mean", "std-dev", "max", "min"
    );
    for (name, s) in [
        ("with correction", &c.with_correction),
        ("without", &c.without_correction),
    ] {
        println!(
            "{:>20} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name, s.mean, s.std_dev, s.max, s.min
        );
    }
}

/// Prints the dominance ablation.
pub fn print_dominance(d: &DominanceAblation) {
    println!("\nAblation: dominance rule (output-arrival error %, disagreement band)");
    println!(
        "{:>20} {:>10} {:>10} {:>10} {:>10}",
        "variant", "mean", "std-dev", "max", "min"
    );
    for (name, s) in [
        ("crossing (paper)", &d.paper_rule),
        ("naive arrival", &d.arrival_rule),
    ] {
        println!(
            "{:>20} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name, s.mean, s.std_dev, s.max, s.min
        );
    }
}

/// Prints the grid ablation.
pub fn print_grid(g: &GridAblation) {
    println!("\nAblation: dual-table grid resolution (NAND2, delay error %)");
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10}",
        "points/axis", "mean", "std-dev", "max", "min"
    );
    for (pts, s) in &g.rows {
        println!(
            "{:>14} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            pts, s.mean, s.std_dev, s.max, s.min
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Fidelity;

    #[test]
    fn correction_reduces_error_spread() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        let c = correction(&env, 8, 3).unwrap();
        // The correction should not make things dramatically worse; on
        // proximity-heavy populations it tightens the spread.
        assert!(
            c.with_correction.std_dev + c.with_correction.mean.abs()
                <= c.without_correction.std_dev + c.without_correction.mean.abs() + 2.0,
            "with {:?} vs without {:?}",
            c.with_correction,
            c.without_correction
        );
    }

    #[test]
    fn paper_dominance_rule_beats_arrival_order() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        let d = dominance(&env, 4).unwrap();
        let spread = |s: &Summary| s.mean.abs() + s.std_dev;
        assert!(
            spread(&d.paper_rule) <= spread(&d.arrival_rule) + 1.0,
            "paper {:?} vs naive {:?}",
            d.paper_rule,
            d.arrival_rule
        );
    }

    #[test]
    fn integrators_agree() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        let worst = integrator(&env, 3).unwrap();
        assert!(worst < 0.05, "integrator disagreement {worst}");
    }
}
