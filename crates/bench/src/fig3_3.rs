//! Figure 3-3: the proximity effect on delay with the delay *referenced to
//! the dominant input*, exhibiting the discontinuity where the dominant
//! input changes (the measurement reference switches), and the dual-input
//! macromodel tracking the simulation.
//!
//! Setup per the paper: the NAND3 with `c` tied to its non-controlling
//! value, falling inputs, τ_a = 500 ps, τ_b ∈ {100, 500, 1000} ps, s_ab
//! swept from `-(Δ_b⁽¹⁾ + τ_b)` to `Δ_a⁽¹⁾ + τ_a`.

use crate::env::ExperimentEnv;
use proxim_model::measure::InputEvent;
use proxim_model::ModelError;
use proxim_numeric::grid::linspace;
use proxim_numeric::pwl::Edge;

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Separation `s_ab`, in seconds.
    pub s: f64,
    /// Which input is dominant at this separation (0 = a, 1 = b).
    pub dominant: usize,
    /// Simulated delay relative to the dominant input.
    pub delay_sim: f64,
    /// Model-predicted delay relative to the dominant input.
    pub delay_model: f64,
}

/// One series at fixed τ_b, with the predicted crossover separation.
#[derive(Debug, Clone)]
pub struct Series {
    /// The partner transition time, in seconds.
    pub tau_b: f64,
    /// The dominance crossover `s = Δ_a⁽¹⁾ − Δ_b⁽¹⁾` (§3), in seconds.
    pub crossover: f64,
    /// The sweep rows.
    pub rows: Vec<Row>,
}

/// Regenerates the figure.
///
/// # Errors
///
/// Returns [`ModelError`] on simulation or model-query failure.
pub fn run(env: &ExperimentEnv, points: usize) -> Result<Vec<Series>, ModelError> {
    let edge = Edge::Falling;
    let tau_a = 500e-12;
    let sim = env.reference_simulator();
    let th = env.thresholds();
    let c_load = env.model.reference_load();

    let single_a = env
        .model
        .single_model(0, edge)
        .ok_or_else(|| ModelError::InvalidQuery {
            detail: "pin a uncharacterized".into(),
        })?;
    let d_a = single_a.delay(tau_a, c_load);
    let t_a = single_a.transition(tau_a, c_load);

    let mut out = Vec::new();
    for &tau_b in &[100e-12, 500e-12, 1000e-12] {
        let single_b = env
            .model
            .single_model(1, edge)
            .ok_or_else(|| ModelError::InvalidQuery {
                detail: "pin b uncharacterized".into(),
            })?;
        let d_b = single_b.delay(tau_b, c_load);
        let t_b = single_b.transition(tau_b, c_load);
        let crossover = d_a - d_b;

        let seps = linspace(-(d_b + tau_b), d_a + tau_a, points);
        let mut rows = Vec::with_capacity(points);
        for &s in &seps {
            let e_a = InputEvent::new(0, edge, 0.0, tau_a);
            let arrival_a = e_a.arrival(&th);
            let frac_b = InputEvent::new(1, edge, 0.0, tau_b).arrival(&th);
            let e_b = InputEvent::new(1, edge, arrival_a + s - frac_b, tau_b);

            let events = [e_a, e_b];
            let predicted = env.model.gate_timing(&events)?;
            let dominant = predicted.reference_pin;

            let r = sim.simulate(&events)?;
            let k_ref = events
                .iter()
                .position(|e| e.pin == dominant)
                .expect("reference pin is one of the events");
            let delay_sim = r.delay_from(k_ref, &th)?;
            rows.push(Row {
                s,
                dominant,
                delay_sim,
                delay_model: predicted.delay,
            });
        }
        out.push(Series {
            tau_b,
            crossover,
            rows,
        });
        let _ = (t_a, t_b); // transition windows are exercised by fig1_2
    }
    Ok(out)
}

/// Prints the figure.
pub fn print(series: &[Series]) {
    for s in series {
        println!(
            "\nFig 3-3: tau_a = 500 ps, tau_b = {:.0} ps — crossover at s = {:.1} ps",
            s.tau_b * 1e12,
            s.crossover * 1e12
        );
        println!(
            "{:>10} {:>5} {:>12} {:>12} {:>8}",
            "s [ps]", "dom", "sim [ps]", "model [ps]", "err %"
        );
        for r in &s.rows {
            let err = (r.delay_model - r.delay_sim) / r.delay_sim * 100.0;
            println!(
                "{:>10.0} {:>5} {:>12.1} {:>12.1} {:>8.2}",
                r.s * 1e12,
                if r.dominant == 0 { "a" } else { "b" },
                r.delay_sim * 1e12,
                r.delay_model * 1e12,
                err
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Fidelity;

    #[test]
    fn dominance_crossover_appears() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        let series = run(&env, 9).unwrap();
        assert_eq!(series.len(), 3);
        // For the fast-partner series (tau_b = 100 ps) the reference must
        // switch from b (negative separations: b's crossing is earliest) to
        // a (large positive separations).
        let fast = &series[0];
        assert_eq!(fast.rows.first().unwrap().dominant, 1, "b dominates early");
        assert_eq!(fast.rows.last().unwrap().dominant, 0, "a dominates late");
        // The model tracks simulation within a loose band at fast fidelity.
        for r in &fast.rows {
            let err = (r.delay_model - r.delay_sim).abs() / r.delay_sim;
            assert!(err < 0.35, "model diverges at s = {}: {err}", r.s);
        }
    }
}
