//! Benchmarks the enumerate → execute → assemble characterization pipeline
//! and emits `BENCH_characterize.json`.
//!
//! Usage:
//!
//! ```text
//! bench_characterize [--out PATH] [--jobs N]
//! ```
//!
//! Measures, on a NAND2 at reduced (`fast`) grids with glitch and load–slew
//! surfaces enabled so every job kind is exercised:
//!
//! 1. sequential characterization (`jobs = 1`) — the pre-pipeline baseline,
//! 2. parallel characterization (`jobs = N`, default
//!    `available_parallelism()`), asserting the output is byte-identical,
//! 3. a cold-miss / warm-hit pass through the on-disk [`ModelCache`].
//!
//! Per-run per-phase wall-clock and sims/sec come from [`CharStats`]; the
//! speedup line compares total wall-clock of (2) against (1).

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::jobs::CharStats;
use proxim_model::persist::ModelCache;
use proxim_model::ProximityModel;
use proxim_numeric::grid::logspace;
use std::process::ExitCode;
use std::time::Instant;

fn bench_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        glitch: true,
        load_grid: Some(logspace(20e-15, 200e-15, 3)),
        ..CharacterizeOptions::fast()
    }
}

/// One timed characterization; returns (model JSON, stats, wall seconds).
fn run(cell: &Cell, tech: &Technology, jobs: usize) -> (String, CharStats, f64) {
    let opts = CharacterizeOptions {
        jobs,
        ..bench_opts()
    };
    let t0 = Instant::now();
    let (model, stats) = ProximityModel::characterize_with_stats(cell, tech, &opts)
        .expect("benchmark characterization must succeed");
    let wall = t0.elapsed().as_secs_f64();
    (model.to_json().expect("model serializes"), stats, wall)
}

fn stats_json(stats: &CharStats, wall: f64) -> String {
    let p = stats.phases;
    format!(
        concat!(
            "{{\"threads\": {}, \"sims_run\": {}, \"wall_s\": {:.6}, ",
            "\"sims_per_sec\": {:.1}, ",
            "\"phases_s\": {{\"vtc\": {:.6}, \"singles\": {:.6}, ",
            "\"pairs\": {:.6}, \"finish\": {:.6}}}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, ",
            "\"cache_quarantined\": {}, \"recoveries\": {}, ",
            "\"failed_jobs\": {}, \"degraded_slices\": {}}}"
        ),
        stats.threads,
        stats.sims_run,
        wall,
        stats.sims_run as f64 / wall.max(1e-12),
        p.vtc,
        p.singles,
        p.pairs,
        p.finish,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_quarantined,
        stats.recoveries,
        stats.failed_jobs,
        stats.degraded_slices,
    )
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_characterize.json");
    let mut jobs = 0usize; // 0 → available_parallelism
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = path;
            }
            "--jobs" => {
                let Some(n) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--jobs needs a non-negative count");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--help" | "-h" => {
                println!("usage: bench_characterize [--out PATH] [--jobs N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let threads = CharacterizeOptions {
        jobs,
        ..bench_opts()
    }
    .worker_threads();

    // Untimed warmup so the baseline is not penalized for cold page/file
    // caches relative to the runs after it.
    run(&cell, &tech, 1);

    eprintln!("sequential baseline (jobs = 1)...");
    let (json_seq, seq, wall_seq) = run(&cell, &tech, 1);
    eprintln!("  {} sims in {:.2} s", seq.sims_run, wall_seq);

    eprintln!("parallel (jobs = {threads})...");
    let (json_par, par, wall_par) = run(&cell, &tech, threads.max(1));
    eprintln!("  {} sims in {:.2} s", par.sims_run, wall_par);
    assert_eq!(json_seq, json_par, "parallel output must be byte-identical");

    // Cache pass: cold miss then warm hit, in a scratch directory.
    let cache_root = std::env::temp_dir().join("proxim_bench_cache");
    let cache = ModelCache::new(&cache_root);
    cache.wipe().expect("cache wipe");
    let opts = CharacterizeOptions {
        jobs: threads,
        ..bench_opts()
    };
    let mut cold = CharStats::default();
    let t0 = Instant::now();
    cache
        .characterize(&cell, &tech, &opts, &mut cold)
        .expect("cold characterize");
    let wall_cold = t0.elapsed().as_secs_f64();
    let mut warm = CharStats::default();
    let t0 = Instant::now();
    cache
        .characterize(&cell, &tech, &opts, &mut warm)
        .expect("warm characterize");
    let wall_warm = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&cache_root).ok();
    eprintln!(
        "cache: cold {:.2} s ({} miss), warm {:.4} s ({} hit, {} sims)",
        wall_cold, cold.cache_misses, wall_warm, warm.cache_hits, warm.sims_run
    );

    let speedup = wall_seq / wall_par.max(1e-12);
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"characterize\",\n",
            "  \"cell\": \"nand2\",\n",
            "  \"byte_identical\": true,\n",
            "  \"speedup\": {:.3},\n",
            "  \"sequential\": {},\n",
            "  \"parallel\": {},\n",
            "  \"cache_cold\": {},\n",
            "  \"cache_warm\": {}\n",
            "}}\n"
        ),
        speedup,
        stats_json(&seq, wall_seq),
        stats_json(&par, wall_par),
        stats_json(&cold, wall_cold),
        stats_json(&warm, wall_warm),
    );
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{report}");
    eprintln!("wrote {out} (speedup {speedup:.2}x on {threads} worker(s))");
    ExitCode::SUCCESS
}
