//! Benchmarks the enumerate → execute → assemble characterization pipeline
//! and emits `BENCH_characterize.json`.
//!
//! Usage:
//!
//! ```text
//! bench_characterize [--out PATH] [--jobs N] [--baseline PATH]
//! ```
//!
//! Measures, on a NAND2 at reduced (`fast`) grids with glitch and load–slew
//! surfaces enabled so every job kind is exercised:
//!
//! 1. sequential characterization (`jobs = 1`) — the pre-pipeline baseline,
//! 2. parallel characterization (`jobs = N`, default
//!    `available_parallelism()`), asserting the output is byte-identical,
//! 3. a cold-miss / warm-hit pass through the on-disk [`ModelCache`].
//!
//! Per-run per-phase wall-clock and sims/sec come from [`CharStats`]; the
//! speedup line compares total wall-clock of (2) against (1). The run also
//! drives the observability stack end-to-end:
//!
//! - metrics are always on ([`obs::Level::Metrics`]); the report's
//!   `"histograms"` section carries per-job wall-time and Newton-iteration
//!   percentiles from the global registry, and the registry summary table
//!   is printed at the end of the run;
//! - `PROXIM_TRACE=trace.jsonl` raises the level to [`obs::Level::Trace`]
//!   and streams spans/events to that file (convert with `trace2chrome` and
//!   open in Perfetto);
//! - unless tracing is armed, the sequential run is gated against the
//!   committed baseline report: a `sims_per_sec` regression beyond
//!   `PROXIM_BENCH_TOLERANCE` percent (default 5) fails the run. Set
//!   `PROXIM_BENCH_NO_GATE=1` to skip, e.g. on a different machine than the
//!   one that produced the baseline.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::jobs::CharStats;
use proxim_model::persist::ModelCache;
use proxim_model::ProximityModel;
use proxim_numeric::grid::logspace;
use proxim_obs as obs;
use std::process::ExitCode;
use std::time::Instant;

fn bench_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        glitch: true,
        load_grid: Some(logspace(20e-15, 200e-15, 3)),
        ..CharacterizeOptions::fast()
    }
}

/// One timed characterization; returns (model JSON, stats, wall seconds).
fn run(cell: &Cell, tech: &Technology, jobs: usize) -> (String, CharStats, f64) {
    let opts = CharacterizeOptions {
        jobs,
        ..bench_opts()
    };
    let t0 = Instant::now();
    let (model, stats) = ProximityModel::characterize_with_stats(cell, tech, &opts)
        .expect("benchmark characterization must succeed");
    let wall = t0.elapsed().as_secs_f64();
    (model.to_json().expect("model serializes"), stats, wall)
}

fn stats_json(stats: &CharStats, wall: f64) -> String {
    let p = stats.phases;
    format!(
        concat!(
            "{{\"threads\": {}, \"sims_run\": {}, \"wall_s\": {:.6}, ",
            "\"sims_per_sec\": {:.1}, ",
            "\"phases_s\": {{\"vtc\": {:.6}, \"singles\": {:.6}, ",
            "\"pairs\": {:.6}, \"finish\": {:.6}}}, ",
            "\"jobs\": {{\"enumerated\": {}, \"succeeded\": {}, \"failed\": {}}}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, ",
            "\"cache_quarantined\": {}, \"recoveries\": {}, ",
            "\"recovery_seconds\": {:.6}, \"degraded_slices\": {}}}"
        ),
        stats.threads,
        stats.sims_run,
        wall,
        stats.sims_run as f64 / wall.max(1e-12),
        p.vtc,
        p.singles,
        p.pairs,
        p.finish,
        stats.enumerated_jobs,
        stats.succeeded_jobs,
        stats.failed_jobs,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_quarantined,
        stats.recoveries,
        stats.recovery_seconds,
        stats.degraded_slices,
    )
}

/// Percentile summaries of the interesting global-registry histograms.
fn histograms_json(snap: &obs::Snapshot) -> String {
    let mut body = String::new();
    for name in ["char.job.seconds", "spice.tran.newton_iters_per_solve"] {
        let Some(h) = snap.histogram(name) else {
            continue;
        };
        if !body.is_empty() {
            body.push_str(", ");
        }
        body.push_str(&format!(
            concat!(
                "\"{}\": {{\"count\": {}, \"mean\": {:.6}, ",
                "\"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6}}}"
            ),
            name,
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
        ));
    }
    format!("{{{body}}}")
}

/// Pulls `"sequential" → "sims_per_sec"` out of a previously written report.
fn baseline_sims_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = obs::json::Json::parse(&text).ok()?;
    json.get("sequential")?.get("sims_per_sec")?.as_f64()
}

/// Compares the fresh sequential throughput against the baseline rate
/// captured before the report was overwritten. Returns an error message on
/// a regression beyond the tolerance.
fn perf_gate(
    current: f64,
    baseline_rate: Option<f64>,
    baseline_path: &str,
) -> Result<String, String> {
    if std::env::var_os("PROXIM_BENCH_NO_GATE").is_some() {
        return Ok("perf gate: skipped (PROXIM_BENCH_NO_GATE)".into());
    }
    let Some(baseline) = baseline_rate else {
        return Ok(format!(
            "perf gate: no parseable baseline at {baseline_path}, skipped"
        ));
    };
    let tol_pct = std::env::var("PROXIM_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(5.0);
    let floor = baseline * (1.0 - tol_pct / 100.0);
    let delta_pct = (current / baseline - 1.0) * 100.0;
    if current < floor {
        Err(format!(
            "perf gate FAILED: sequential {current:.1} sims/s is {delta_pct:+.1}% \
             vs baseline {baseline:.1} (tolerance -{tol_pct:.1}%)"
        ))
    } else {
        Ok(format!(
            "perf gate: sequential {current:.1} sims/s, {delta_pct:+.1}% vs \
             baseline {baseline:.1} (tolerance -{tol_pct:.1}%)"
        ))
    }
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_characterize.json");
    let mut baseline: Option<String> = None;
    let mut jobs = 0usize; // 0 → available_parallelism
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = path;
            }
            "--baseline" => {
                let Some(path) = args.next() else {
                    eprintln!("--baseline needs a path");
                    return ExitCode::FAILURE;
                };
                baseline = Some(path);
            }
            "--jobs" => {
                let Some(n) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--jobs needs a non-negative count");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--help" | "-h" => {
                println!("usage: bench_characterize [--out PATH] [--jobs N] [--baseline PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The gate compares against the committed report by default — the same
    // file the run overwrites, so the baseline number is captured up front.
    let baseline = baseline.unwrap_or_else(|| out.clone());

    // The bench is the profiling harness: metrics are always on, and
    // PROXIM_TRACE upgrades to full span tracing.
    let trace_path = obs::init_from_env();
    if obs::level() < obs::Level::Metrics {
        obs::set_level(obs::Level::Metrics);
    }
    if let Some(p) = &trace_path {
        eprintln!("tracing to {} (perf gate disabled)", p.display());
    }
    let baseline_rate = baseline_sims_per_sec(&baseline);

    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let threads = CharacterizeOptions {
        jobs,
        ..bench_opts()
    }
    .worker_threads();

    // Untimed warmup so the baseline is not penalized for cold page/file
    // caches relative to the runs after it.
    run(&cell, &tech, 1);

    eprintln!("sequential baseline (jobs = 1)...");
    let (json_seq, seq, wall_seq) = run(&cell, &tech, 1);
    eprintln!("  {} sims in {:.2} s", seq.sims_run, wall_seq);

    eprintln!("parallel (jobs = {threads})...");
    let (json_par, par, wall_par) = run(&cell, &tech, threads.max(1));
    eprintln!("  {} sims in {:.2} s", par.sims_run, wall_par);
    assert_eq!(json_seq, json_par, "parallel output must be byte-identical");

    // Audit pass: the full physics-invariant sweep over every table must
    // come back clean on an untampered model, and must stay a rounding
    // error next to the characterization it guards (< 5% of wall-clock).
    let model = ProximityModel::from_json(&json_par).expect("bench model round-trips");
    let t0 = Instant::now();
    let audit_report = model.audit(&proxim_model::audit::AuditOptions::default());
    let wall_audit = t0.elapsed().as_secs_f64();
    let audit_pct = 100.0 * wall_audit / wall_par.max(1e-12);
    eprintln!(
        "audit: {} finding(s) in {:.4} s ({:.2}% of characterization)",
        audit_report.len(),
        wall_audit,
        audit_pct
    );
    if !audit_report.is_clean() {
        eprintln!(
            "audit gate FAILED: untampered model has findings, first: {}",
            audit_report.findings[0]
        );
        return ExitCode::FAILURE;
    }
    if audit_pct >= 5.0 {
        eprintln!("audit gate FAILED: {audit_pct:.2}% of characterization wall-time (limit 5%)");
        return ExitCode::FAILURE;
    }

    // Cache pass: cold miss then warm hit, in a scratch directory.
    let cache_root = std::env::temp_dir().join("proxim_bench_cache");
    let cache = ModelCache::new(&cache_root);
    cache.wipe().expect("cache wipe");
    let opts = CharacterizeOptions {
        jobs: threads,
        ..bench_opts()
    };
    let mut cold = CharStats::default();
    let t0 = Instant::now();
    cache
        .characterize(&cell, &tech, &opts, &mut cold)
        .expect("cold characterize");
    let wall_cold = t0.elapsed().as_secs_f64();
    let mut warm = CharStats::default();
    let t0 = Instant::now();
    cache
        .characterize(&cell, &tech, &opts, &mut warm)
        .expect("warm characterize");
    let wall_warm = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&cache_root).ok();
    eprintln!(
        "cache: cold {:.2} s ({} miss), warm {:.4} s ({} hit, {} sims)",
        wall_cold, cold.cache_misses, wall_warm, warm.cache_hits, warm.sims_run
    );

    let snap = obs::Registry::global().snapshot();
    let speedup = wall_seq / wall_par.max(1e-12);
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"characterize\",\n",
            "  \"cell\": \"nand2\",\n",
            "  \"byte_identical\": true,\n",
            "  \"speedup\": {:.3},\n",
            "  \"sequential\": {},\n",
            "  \"parallel\": {},\n",
            "  \"cache_cold\": {},\n",
            "  \"cache_warm\": {},\n",
            "  \"audit\": {{\"findings\": {}, \"wall_s\": {:.6}, ",
            "\"pct_of_characterization\": {:.3}}},\n",
            "  \"histograms\": {}\n",
            "}}\n"
        ),
        speedup,
        stats_json(&seq, wall_seq),
        stats_json(&par, wall_par),
        stats_json(&cold, wall_cold),
        stats_json(&warm, wall_warm),
        audit_report.len(),
        wall_audit,
        audit_pct,
        histograms_json(&snap),
    );
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{report}");
    eprintln!("{}", snap.render_summary());
    eprintln!("wrote {out} (speedup {speedup:.2}x on {threads} worker(s))");

    // Close out the trace with a final metrics record so the JSONL file is
    // self-describing, then gate (tracing skews timing, so only untraced
    // runs are compared against the committed baseline).
    obs::trace::emit_metrics(&snap);
    obs::sink::flush();
    if trace_path.is_none() {
        // Re-reading the baseline now would see our own report; use the
        // rate captured before the write.
        let current = seq.sims_run as f64 / wall_seq.max(1e-12);
        match perf_gate(current, baseline_rate, &baseline) {
            Ok(msg) => eprintln!("{msg}"),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
