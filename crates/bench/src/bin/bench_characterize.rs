//! Benchmarks the enumerate → execute → assemble characterization pipeline
//! and emits `BENCH_characterize.json`.
//!
//! Usage:
//!
//! ```text
//! bench_characterize [--out PATH] [--jobs N] [--baseline PATH] [--scaling]
//!                    [--pool-smoke]
//! ```
//!
//! Measures, on a NAND2 at reduced (`fast`) grids with glitch and load–slew
//! surfaces enabled so every job kind is exercised:
//!
//! 1. sequential scalar characterization (`jobs = 1`, `batch_lanes = 1`) —
//!    the pre-batching baseline the perf gate compares against,
//! 2. the batched SoA kernel at the same single worker (`jobs = 1`,
//!    `batch_lanes = 8`), asserting byte-identical output and reporting the
//!    kernel-only speedup,
//! 3. parallel characterization (`jobs = N`, default
//!    `available_parallelism()`), again asserting byte identity,
//! 4. a cold-miss / warm-hit pass through the on-disk [`ModelCache`].
//!
//! `--scaling` adds a worker sweep over `{1, 2, 4, host_cpus}` (deduplicated)
//! and emits a `scaling` section with per-point wall-clock, throughput,
//! speedup, and efficiency. `--pool-smoke` runs a quick two-worker
//! characterization and fails unless both workers actually claimed jobs —
//! the regression test for a dead worker pool — then exits without writing
//! a report.
//!
//! The pool-health gates are always on: a run whose parallel section
//! resolves to one engaged worker while more were requested (or available)
//! fails with a diagnostic instead of silently benchmarking sequential
//! execution. On a single-CPU host the report records
//! `"parallel_limited": true` instead of failing.
//!
//! Per-run per-phase wall-clock and sims/sec come from [`CharStats`]; the
//! speedup line compares total wall-clock of (3) against (1). The run also
//! drives the observability stack end-to-end:
//!
//! - metrics are always on ([`obs::Level::Metrics`]); the report's
//!   `"histograms"` section carries per-job wall-time, Newton-iteration,
//!   and batch lane-occupancy percentiles from the global registry, and the
//!   registry summary table is printed at the end of the run;
//! - `PROXIM_TRACE=trace.jsonl` raises the level to [`obs::Level::Trace`]
//!   and streams spans/events to that file (convert with `trace2chrome` and
//!   open in Perfetto);
//! - unless tracing is armed, the sequential run is gated against the
//!   committed baseline report: a `sims_per_sec` regression beyond
//!   `PROXIM_BENCH_TOLERANCE` percent (default 5) fails the run. Set
//!   `PROXIM_BENCH_NO_GATE=1` to skip, e.g. on a different machine than the
//!   one that produced the baseline.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::jobs::CharStats;
use proxim_model::persist::ModelCache;
use proxim_model::ProximityModel;
use proxim_numeric::grid::logspace;
use proxim_obs as obs;
use std::process::ExitCode;
use std::time::Instant;

fn bench_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        glitch: true,
        load_grid: Some(logspace(20e-15, 200e-15, 3)),
        ..CharacterizeOptions::fast()
    }
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One timed characterization; returns (model JSON, stats, wall seconds).
fn run(
    cell: &Cell,
    tech: &Technology,
    jobs: usize,
    batch_lanes: usize,
) -> (String, CharStats, f64) {
    let opts = CharacterizeOptions {
        jobs,
        batch_lanes,
        ..bench_opts()
    };
    let t0 = Instant::now();
    let (model, stats) = ProximityModel::characterize_with_stats(cell, tech, &opts)
        .expect("benchmark characterization must succeed");
    let wall = t0.elapsed().as_secs_f64();
    (model.to_json().expect("model serializes"), stats, wall)
}

fn stats_json(stats: &CharStats, wall: f64) -> String {
    let p = stats.phases;
    format!(
        concat!(
            "{{\"threads\": {}, \"workers_engaged\": {}, \"sims_run\": {}, ",
            "\"wall_s\": {:.6}, ",
            "\"sims_per_sec\": {:.1}, ",
            "\"phases_s\": {{\"vtc\": {:.6}, \"singles\": {:.6}, ",
            "\"pairs\": {:.6}, \"finish\": {:.6}}}, ",
            "\"jobs\": {{\"enumerated\": {}, \"succeeded\": {}, \"failed\": {}}}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, ",
            "\"cache_quarantined\": {}, \"recoveries\": {}, ",
            "\"recovery_seconds\": {:.6}, \"degraded_slices\": {}}}"
        ),
        stats.threads,
        stats.workers_engaged,
        stats.sims_run,
        wall,
        stats.sims_run as f64 / wall.max(1e-12),
        p.vtc,
        p.singles,
        p.pairs,
        p.finish,
        stats.enumerated_jobs,
        stats.succeeded_jobs,
        stats.failed_jobs,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_quarantined,
        stats.recoveries,
        stats.recovery_seconds,
        stats.degraded_slices,
    )
}

/// Percentile summaries of the interesting global-registry histograms.
fn histograms_json(snap: &obs::Snapshot) -> String {
    let mut body = String::new();
    for name in [
        "char.job.seconds",
        "spice.tran.newton_iters_per_solve",
        obs::batch_metrics::LANES,
        obs::batch_metrics::ACTIVE_LANES,
    ] {
        let Some(h) = snap.histogram(name) else {
            continue;
        };
        if !body.is_empty() {
            body.push_str(", ");
        }
        body.push_str(&format!(
            concat!(
                "\"{}\": {{\"count\": {}, \"mean\": {:.6}, ",
                "\"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6}}}"
            ),
            name,
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
        ));
    }
    format!("{{{body}}}")
}

/// Pulls `"sequential" → "sims_per_sec"` out of a previously written report.
fn baseline_sims_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = obs::json::Json::parse(&text).ok()?;
    json.get("sequential")?.get("sims_per_sec")?.as_f64()
}

/// Compares the fresh sequential throughput against the baseline rate
/// captured before the report was overwritten. Returns an error message on
/// a regression beyond the tolerance.
fn perf_gate(
    current: f64,
    baseline_rate: Option<f64>,
    baseline_path: &str,
) -> Result<String, String> {
    if std::env::var_os("PROXIM_BENCH_NO_GATE").is_some() {
        return Ok("perf gate: skipped (PROXIM_BENCH_NO_GATE)".into());
    }
    let Some(baseline) = baseline_rate else {
        return Ok(format!(
            "perf gate: no parseable baseline at {baseline_path}, skipped"
        ));
    };
    let tol_pct = std::env::var("PROXIM_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(5.0);
    let floor = baseline * (1.0 - tol_pct / 100.0);
    let delta_pct = (current / baseline - 1.0) * 100.0;
    if current < floor {
        Err(format!(
            "perf gate FAILED: sequential {current:.1} sims/s is {delta_pct:+.1}% \
             vs baseline {baseline:.1} (tolerance -{tol_pct:.1}%)"
        ))
    } else {
        Ok(format!(
            "perf gate: sequential {current:.1} sims/s, {delta_pct:+.1}% vs \
             baseline {baseline:.1} (tolerance -{tol_pct:.1}%)"
        ))
    }
}

/// Fails when a multi-worker phase was requested but only one worker ever
/// claimed work — the dead-pool regression this bench exists to catch.
fn pool_gate(label: &str, stats: &CharStats) -> Result<(), String> {
    if stats.threads > 1 && stats.workers_engaged < 2 {
        return Err(format!(
            "pool gate FAILED ({label}): {} worker threads requested but only \
             {} engaged — the parallel section resolved to sequential \
             execution (dead worker pool)",
            stats.threads, stats.workers_engaged
        ));
    }
    Ok(())
}

/// Quick two-worker characterization asserting the pool actually spreads
/// work. Uses the plain `fast` grid (no glitch, no load surface) so it stays
/// a smoke test, writes no report, and skips the perf gate.
fn pool_smoke(cell: &Cell, tech: &Technology) -> ExitCode {
    let opts = CharacterizeOptions {
        jobs: 2,
        ..CharacterizeOptions::fast()
    };
    let t0 = Instant::now();
    let (_, stats) = ProximityModel::characterize_with_stats(cell, tech, &opts)
        .expect("pool-smoke characterization must succeed");
    let wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "pool smoke: {} sims in {:.2} s on {} thread(s), {} engaged",
        stats.sims_run, wall, stats.threads, stats.workers_engaged
    );
    if stats.threads != 2 {
        eprintln!(
            "pool smoke FAILED: jobs = 2 resolved to {} worker thread(s)",
            stats.threads
        );
        return ExitCode::FAILURE;
    }
    if stats.workers_engaged != 2 {
        eprintln!(
            "pool smoke FAILED: 2 worker threads requested but only {} \
             engaged — the parallel section resolved to sequential \
             execution (dead worker pool)",
            stats.workers_engaged
        );
        return ExitCode::FAILURE;
    }
    eprintln!("pool smoke OK: both workers claimed jobs");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_characterize.json");
    let mut baseline: Option<String> = None;
    let mut jobs = 0usize; // 0 → available_parallelism
    let mut scaling = false;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = path;
            }
            "--baseline" => {
                let Some(path) = args.next() else {
                    eprintln!("--baseline needs a path");
                    return ExitCode::FAILURE;
                };
                baseline = Some(path);
            }
            "--jobs" => {
                let Some(n) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--jobs needs a non-negative count");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--scaling" => scaling = true,
            "--pool-smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_characterize [--out PATH] [--jobs N] \
                     [--baseline PATH] [--scaling] [--pool-smoke]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The gate compares against the committed report by default — the same
    // file the run overwrites, so the baseline number is captured up front.
    let baseline = baseline.unwrap_or_else(|| out.clone());

    // The bench is the profiling harness: metrics are always on, and
    // PROXIM_TRACE upgrades to full span tracing.
    let trace_path = obs::init_from_env();
    if obs::level() < obs::Level::Metrics {
        obs::set_level(obs::Level::Metrics);
    }
    if let Some(p) = &trace_path {
        eprintln!("tracing to {} (perf gate disabled)", p.display());
    }
    let baseline_rate = baseline_sims_per_sec(&baseline);

    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    if smoke {
        return pool_smoke(&cell, &tech);
    }

    let cpus = host_cpus();
    let threads = CharacterizeOptions {
        jobs,
        ..bench_opts()
    }
    .worker_threads();
    let lanes = bench_opts().batch_lanes;
    // Honest accounting up front: a bench invoked with default jobs on a
    // multi-core host that still resolves to one worker is the bug, not an
    // environment quirk.
    if jobs == 0 && cpus > 1 && threads < 2 {
        eprintln!(
            "pool gate FAILED: host has {cpus} CPUs but jobs = 0 resolved to \
             {threads} worker thread(s) — parallel section resolved to 1 \
             worker unexpectedly"
        );
        return ExitCode::FAILURE;
    }
    let parallel_limited = cpus == 1;
    if parallel_limited {
        eprintln!("note: single-CPU host — thread-scaling numbers are not meaningful here");
    }

    // Untimed warmup so the baseline is not penalized for cold page/file
    // caches relative to the runs after it.
    run(&cell, &tech, 1, 1);

    eprintln!("sequential scalar baseline (jobs = 1, batch_lanes = 1)...");
    let (json_seq, seq, wall_seq) = run(&cell, &tech, 1, 1);
    eprintln!("  {} sims in {:.2} s", seq.sims_run, wall_seq);

    eprintln!("batched kernel (jobs = 1, batch_lanes = {lanes})...");
    let (json_batched, batched, wall_batched) = run(&cell, &tech, 1, lanes);
    let kernel_speedup = wall_seq / wall_batched.max(1e-12);
    eprintln!(
        "  {} sims in {:.2} s ({:.2}x the scalar kernel)",
        batched.sims_run, wall_batched, kernel_speedup
    );
    assert_eq!(
        json_seq, json_batched,
        "batched output must be byte-identical"
    );

    eprintln!("parallel (jobs = {threads}, batch_lanes = {lanes})...");
    let (json_par, par, wall_par) = run(&cell, &tech, threads.max(1), lanes);
    eprintln!(
        "  {} sims in {:.2} s, {} of {} worker(s) engaged",
        par.sims_run, wall_par, par.workers_engaged, par.threads
    );
    assert_eq!(json_seq, json_par, "parallel output must be byte-identical");
    if let Err(msg) = pool_gate("parallel", &par) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }

    // Optional worker sweep: throughput at 1/2/4/host workers, each point
    // byte-checked against the scalar baseline. `speedup` is relative to
    // the sweep's own single-worker point (same batched kernel), so it
    // isolates thread scaling from kernel gains; `efficiency` divides by
    // the worker count.
    let mut scaling_json = String::from("[]");
    if scaling {
        let mut ns: Vec<usize> = vec![1, 2, 4, cpus];
        ns.sort_unstable();
        ns.dedup();
        let mut points = Vec::new();
        let mut wall_one = wall_batched;
        for &n in &ns {
            let (json_n, stats_n, wall_n) = if n == 1 {
                (json_batched.clone(), batched, wall_batched)
            } else {
                eprintln!("scaling sweep (jobs = {n})...");
                run(&cell, &tech, n, lanes)
            };
            assert_eq!(
                json_seq, json_n,
                "scaling sweep output must be byte-identical at jobs = {n}"
            );
            if let Err(msg) = pool_gate(&format!("scaling jobs = {n}"), &stats_n) {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
            if n == 1 {
                wall_one = wall_n;
            }
            let speedup = wall_one / wall_n.max(1e-12);
            points.push(format!(
                concat!(
                    "{{\"jobs\": {}, \"threads\": {}, \"workers_engaged\": {}, ",
                    "\"wall_s\": {:.6}, \"sims_per_sec\": {:.1}, ",
                    "\"speedup\": {:.3}, \"efficiency\": {:.3}}}"
                ),
                n,
                stats_n.threads,
                stats_n.workers_engaged,
                wall_n,
                stats_n.sims_run as f64 / wall_n.max(1e-12),
                speedup,
                speedup / n as f64,
            ));
            eprintln!(
                "  jobs = {n}: {:.2} s, {:.1} sims/s, {} engaged",
                wall_n,
                stats_n.sims_run as f64 / wall_n.max(1e-12),
                stats_n.workers_engaged
            );
        }
        scaling_json = format!("[{}]", points.join(", "));
    }

    // Audit pass: the full physics-invariant sweep over every table must
    // come back clean on an untampered model, and must stay a rounding
    // error next to the characterization it guards (< 5% of wall-clock).
    let model = ProximityModel::from_json(&json_par).expect("bench model round-trips");
    let t0 = Instant::now();
    let audit_report = model.audit(&proxim_model::audit::AuditOptions::default());
    let wall_audit = t0.elapsed().as_secs_f64();
    let audit_pct = 100.0 * wall_audit / wall_par.max(1e-12);
    eprintln!(
        "audit: {} finding(s) in {:.4} s ({:.2}% of characterization)",
        audit_report.len(),
        wall_audit,
        audit_pct
    );
    if !audit_report.is_clean() {
        eprintln!(
            "audit gate FAILED: untampered model has findings, first: {}",
            audit_report.findings[0]
        );
        return ExitCode::FAILURE;
    }
    if audit_pct >= 5.0 {
        eprintln!("audit gate FAILED: {audit_pct:.2}% of characterization wall-time (limit 5%)");
        return ExitCode::FAILURE;
    }

    // Cache pass: cold miss then warm hit, in a scratch directory.
    let cache_root = std::env::temp_dir().join("proxim_bench_cache");
    let cache = ModelCache::new(&cache_root);
    cache.wipe().expect("cache wipe");
    let opts = CharacterizeOptions {
        jobs: threads,
        ..bench_opts()
    };
    let mut cold = CharStats::default();
    let t0 = Instant::now();
    cache
        .characterize(&cell, &tech, &opts, &mut cold)
        .expect("cold characterize");
    let wall_cold = t0.elapsed().as_secs_f64();
    let mut warm = CharStats::default();
    let t0 = Instant::now();
    cache
        .characterize(&cell, &tech, &opts, &mut warm)
        .expect("warm characterize");
    let wall_warm = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&cache_root).ok();
    eprintln!(
        "cache: cold {:.2} s ({} miss), warm {:.4} s ({} hit, {} sims)",
        wall_cold, cold.cache_misses, wall_warm, warm.cache_hits, warm.sims_run
    );

    let snap = obs::Registry::global().snapshot();
    let speedup = wall_seq / wall_par.max(1e-12);
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"characterize\",\n",
            "  \"cell\": \"nand2\",\n",
            "  \"host_cpus\": {},\n",
            "  \"parallel_limited\": {},\n",
            "  \"byte_identical\": true,\n",
            "  \"speedup\": {:.3},\n",
            "  \"kernel_speedup\": {:.3},\n",
            "  \"sequential\": {},\n",
            "  \"batched\": {},\n",
            "  \"parallel\": {},\n",
            "  \"scaling\": {},\n",
            "  \"cache_cold\": {},\n",
            "  \"cache_warm\": {},\n",
            "  \"audit\": {{\"findings\": {}, \"wall_s\": {:.6}, ",
            "\"pct_of_characterization\": {:.3}}},\n",
            "  \"histograms\": {}\n",
            "}}\n"
        ),
        cpus,
        parallel_limited,
        speedup,
        kernel_speedup,
        stats_json(&seq, wall_seq),
        stats_json(&batched, wall_batched),
        stats_json(&par, wall_par),
        scaling_json,
        stats_json(&cold, wall_cold),
        stats_json(&warm, wall_warm),
        audit_report.len(),
        wall_audit,
        audit_pct,
        histograms_json(&snap),
    );
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{report}");
    eprintln!("{}", snap.render_summary());
    eprintln!(
        "wrote {out} (speedup {speedup:.2}x on {threads} worker(s), \
         batched kernel {kernel_speedup:.2}x)"
    );

    // Close out the trace with a final metrics record so the JSONL file is
    // self-describing, then gate (tracing skews timing, so only untraced
    // runs are compared against the committed baseline).
    obs::trace::emit_metrics(&snap);
    obs::sink::flush();
    if trace_path.is_none() {
        // Re-reading the baseline now would see our own report; use the
        // rate captured before the write.
        let current = seq.sims_run as f64 / wall_seq.max(1e-12);
        match perf_gate(current, baseline_rate, &baseline) {
            Ok(msg) => eprintln!("{msg}"),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
