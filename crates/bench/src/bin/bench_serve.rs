//! Benchmarks the `proxim-serve` daemon end to end over its Unix socket and
//! emits `BENCH_serve.json`.
//!
//! Usage:
//!
//! ```text
//! bench_serve [--out PATH] [--requests N]
//! ```
//!
//! Two measurements, both against an in-process [`Server`] with a real
//! socket (so framing, admission, and worker dispatch are all on the
//! measured path):
//!
//! 1. **Latency/throughput** — closed-loop clients at 1, 8, and 64
//!    concurrent connections, each issuing single-query requests against a
//!    fast-grid NAND2 model and waiting for the response before sending the
//!    next. Reports p50/p99 latency and aggregate qps per concurrency
//!    level. The server is sized (queue ≥ client count, generous deadline)
//!    so nothing is shed — this measures the happy path.
//! 2. **Overload** — a deliberately starved server (one worker with an
//!    artificial per-job stall, tiny admission queue) under 64 closed-loop
//!    clients. Reports the shed rate and cross-checks the client-observed
//!    counts against the server's own `serve.requests` / `serve.shed`
//!    counters: every request must be either answered or shed typed —
//!    never dropped.
//!
//! Latencies are wall-clock microseconds measured around one
//! request/response round trip ([`proto::call`]), queue wait included.
//! Each response also carries the server's per-phase breakdown
//! (`admit_us`/`queue_us`/`execute_us`), which the bench cross-checks
//! against the client-observed end-to-end time — the server cannot claim
//! more phase time than the client measured — and reports as p50/p99 per
//! phase. A third section measures the cost of tracing itself: nine
//! traced-off/traced-on run pairs against one server, flipped at runtime
//! through the `obs` protocol op, with the shipped observability config on
//! the traced side (level=trace, head-sampling every 16th request into a
//! JSONL sink, flight ring armed). The gate compares total process CPU
//! across all traced-on runs against all traced-off runs — wall-clock
//! qps is reported but too noisy to gate on a shared box — and fails if
//! tracing costs more than 5% on each of up to three from-scratch
//! measurement attempts; a real regression is sustained and trips all of
//! them, co-tenant interference moves on
//! (`PROXIM_SERVE_TRACE_TOLERANCE` overrides the percentage,
//! `PROXIM_BENCH_NO_GATE` skips the assert).
//!
//! Two lifecycle sections follow: **reload latency** — p50/p99 of the
//! load-validate-swap cycle, measured while 8 closed-loop clients keep
//! querying (none of which may shed or error during the storm) — and
//! **eviction churn** — round-robin queries over a model set 2.4x the
//! configured memory budget, reporting the cold-miss penalty (cold vs
//! warm end-to-end p50, plus the pure store-load component the server
//! echoes as `load_us`).

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_obs::json::Json;
use proxim_obs::serve_metrics as sm;
use proxim_obs::{flight, sink};
use proxim_serve::client::RetryPolicy;
use proxim_serve::proto;
use proxim_serve::{
    FleetClient, FleetClientOptions, LibraryOptions, ModelLibrary, ModelStore, ServeOptions, Server,
};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Model name used for every query; must satisfy the store's name rules.
const MODEL: &str = "nand2_demo";

/// One single-query request: a rising proximity pair on the NAND2 inputs,
/// 50 ps apart — the paper's bread-and-butter query shape.
fn request_json() -> String {
    format!(
        concat!(
            "{{\"op\":\"query\",\"model\":\"{}\",\"events\":[",
            "{{\"pin\":0,\"edge\":\"rise\",\"t\":0.0,\"tt\":4e-10}},",
            "{{\"pin\":1,\"edge\":\"rise\",\"t\":5e-11,\"tt\":4e-10}}]}}"
        ),
        MODEL
    )
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Fresh scratch directory under the system temp dir.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One answered request: client-observed end-to-end plus the server's
/// phase breakdown, all in microseconds.
#[derive(Clone, Copy)]
struct Sample {
    e2e_us: f64,
    admit_us: f64,
    queue_us: f64,
    execute_us: f64,
}

/// Pulls the `breakdown` object out of a success response. Every traced
/// response carries one; a missing or malformed breakdown is a protocol
/// regression the bench should surface loudly.
fn parse_breakdown(response: &str) -> (f64, f64, f64) {
    let json = Json::parse(response).expect("bench response must parse as JSON");
    let b = json
        .get("breakdown")
        .expect("success response must carry a breakdown");
    let field = |k: &str| {
        b.get(k)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("breakdown missing {k}"))
    };
    (field("admit_us"), field("queue_us"), field("execute_us"))
}

/// What one closed-loop client run produced.
struct LoadResult {
    /// Per-request end-to-end + phase samples; answered requests only.
    samples: Vec<Sample>,
    answered: u64,
    shed: u64,
    other: u64,
    wall_s: f64,
    /// Process CPU seconds (user + system, every thread — server, clients,
    /// and the trace flusher all run in this process) consumed by the run.
    cpu_s: f64,
}

/// Process CPU time so far (user + system, all threads including reaped
/// ones), from `/proc/self/stat`. On a fully loaded box throughput is the
/// inverse of CPU-per-request, and unlike wall clock this is immune to
/// preemption by whatever else the host is running — which is what lets a
/// few-percent overhead gate hold on a shared machine. Returns 0.0 when
/// the file is unreadable (non-Linux), which disables CPU-based ratios.
fn process_cpu_s() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // comm (field 2) may contain spaces; fields are stable after the ')'.
    let after = match stat.rsplit_once(')') {
        Some((_, rest)) => rest,
        None => return 0.0,
    };
    let mut it = after.split_ascii_whitespace();
    let utime = it.nth(11).and_then(|v| v.parse::<u64>().ok());
    let stime = it.next().and_then(|v| v.parse::<u64>().ok());
    match (utime, stime) {
        // USER_HZ is 100 on every Linux ABI std supports.
        (Some(u), Some(s)) => (u + s) as f64 / 100.0,
        _ => 0.0,
    }
}

impl LoadResult {
    /// Answered-request end-to-end latencies, seconds (the historical
    /// latency column of the report).
    fn latencies(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.e2e_us * 1e-6).collect()
    }
}

/// Runs `clients` closed-loop connections, `per_client` requests each.
fn run_load(socket: &Path, clients: usize, per_client: usize) -> LoadResult {
    let cpu0 = process_cpu_s();
    let t0 = Instant::now();
    let per_thread: Vec<(Vec<Sample>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut stream = UnixStream::connect(socket).expect("connect to bench server");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .expect("set read timeout");
                    let request = request_json();
                    let mut samples = Vec::with_capacity(per_client);
                    let (mut answered, mut shed, mut other) = (0u64, 0u64, 0u64);
                    for _ in 0..per_client {
                        let start = Instant::now();
                        let response = proto::call(&mut stream, &request)
                            .expect("bench round trip must not fail at the transport layer");
                        let elapsed = start.elapsed().as_secs_f64();
                        if response.contains("\"ok\":true") {
                            answered += 1;
                            let (admit_us, queue_us, execute_us) = parse_breakdown(&response);
                            samples.push(Sample {
                                e2e_us: elapsed * 1e6,
                                admit_us,
                                queue_us,
                                execute_us,
                            });
                        } else if response.contains("\"overloaded\"") {
                            shed += 1;
                        } else {
                            other += 1;
                        }
                    }
                    (samples, answered, shed, other)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut out = LoadResult {
        samples: Vec::new(),
        answered: 0,
        shed: 0,
        other: 0,
        wall_s,
        cpu_s: process_cpu_s() - cpu0,
    };
    for (samples, answered, shed, other) in per_thread {
        out.samples.extend(samples);
        out.answered += answered;
        out.shed += shed;
        out.other += other;
    }
    // The server's phases are sub-intervals of the client's round trip, so
    // their sum can never exceed what the client measured (the phase
    // clocks all start inside the e2e window). A small per-request slack
    // absorbs integer-microsecond truncation on each phase.
    for s in &out.samples {
        let phase_sum = s.admit_us + s.queue_us + s.execute_us;
        assert!(
            phase_sum <= s.e2e_us + 10.0,
            "phase sum {phase_sum:.1}us exceeds client e2e {:.1}us",
            s.e2e_us
        );
    }
    out
}

/// Nearest-rank percentile over an already-sorted sample, seconds.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Nearest-rank percentiles over an unsorted microsecond sample.
fn phase_percentiles(mut us: Vec<f64>) -> (f64, f64) {
    us.sort_by(|a, b| a.partial_cmp(b).expect("phase samples are finite"));
    (percentile(&us, 0.50), percentile(&us, 0.99))
}

/// The per-phase latency section: admit/queue-wait/execute come from the
/// breakdowns echoed in responses, write from the server's own histogram
/// (a response cannot carry the duration of its own write).
fn phases_json(samples: &[Sample], snap: &proxim_obs::metrics::Snapshot) -> String {
    let (admit50, admit99) = phase_percentiles(samples.iter().map(|s| s.admit_us).collect());
    let (queue50, queue99) = phase_percentiles(samples.iter().map(|s| s.queue_us).collect());
    let (exec50, exec99) = phase_percentiles(samples.iter().map(|s| s.execute_us).collect());
    let write = snap.histogram(sm::PHASE_WRITE_SECONDS);
    let (write50, write99) = write.map_or((0.0, 0.0), |h| {
        (h.quantile(0.50) * 1e6, h.quantile(0.99) * 1e6)
    });
    format!(
        concat!(
            "{{\"admit\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}}}, ",
            "\"queue_wait\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}}}, ",
            "\"execute\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}}}, ",
            "\"write\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}}}}}"
        ),
        admit50, admit99, queue50, queue99, exec50, exec99, write50, write99,
    )
}

/// One latency section of the report.
fn latency_json(clients: usize, per_client: usize, r: &LoadResult) -> String {
    let mut sorted = r.latencies();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let total = (clients * per_client) as f64;
    format!(
        concat!(
            "{{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.6}, ",
            "\"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, ",
            "\"max_us\": {:.1}}}"
        ),
        clients,
        clients * per_client,
        r.wall_s,
        total / r.wall_s.max(1e-12),
        percentile(&sorted, 0.50) * 1e6,
        percentile(&sorted, 0.99) * 1e6,
        sorted.last().copied().unwrap_or(0.0) * 1e6,
    )
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_serve.json");
    let mut per_client_base = 512usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = args.next().expect("--out requires a path");
            }
            "--requests" => {
                per_client_base = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests requires a count");
            }
            other => {
                eprintln!("bench_serve: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    // One characterization feeds both servers through the same store.
    let scratch = scratch_dir();
    let store = ModelStore::new(scratch.join("store"));
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let model = ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
        .expect("bench characterization must succeed");
    store.save(MODEL, &model).expect("seed bench store");

    // --- happy-path latency/throughput at 1 / 8 / 64 clients -------------
    let workers = host_cpus().clamp(2, 8);
    let socket = scratch.join("bench.sock");
    let server = Server::start(
        ModelLibrary::open(&store),
        &socket,
        ServeOptions {
            workers,
            queue_capacity: 256,
            request_deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("start bench server");

    let mut latency_sections = Vec::new();
    let mut all_samples: Vec<Sample> = Vec::new();
    for clients in [1usize, 8, 64] {
        // Same total request count per level, so qps numbers are comparable.
        let per_client = (per_client_base / clients).max(8);
        let r = run_load(&socket, clients, per_client);
        assert_eq!(
            r.shed + r.other,
            0,
            "happy-path run must not shed or error (shed={}, other={})",
            r.shed,
            r.other
        );
        println!(
            "latency: clients={clients} requests={} wall={:.3}s qps={:.0}",
            clients * per_client,
            r.wall_s,
            (clients * per_client) as f64 / r.wall_s.max(1e-12),
        );
        latency_sections.push(format!(
            "\"c{clients}\": {}",
            latency_json(clients, per_client, &r)
        ));
        all_samples.extend(r.samples);
    }
    server.begin_shutdown();
    let happy_snap = server.join();
    let phases = phases_json(&all_samples, &happy_snap);
    println!("phases: {phases}");

    // --- deliberate overload: 1 stalled worker, tiny queue, 64 clients ---
    let overload_socket = scratch.join("overload.sock");
    let overload = Server::start(
        ModelLibrary::open(&store),
        &overload_socket,
        ServeOptions {
            workers: 1,
            queue_capacity: 8,
            worker_stall: Duration::from_millis(2),
            request_deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("start overload server");
    let (clients, per_client) = (64usize, 24usize);
    let r = run_load(&overload_socket, clients, per_client);
    overload.begin_shutdown();
    let snap = overload.join();
    let total = (clients * per_client) as u64;
    assert_eq!(
        r.answered + r.shed + r.other,
        total,
        "every overload request must get exactly one typed response"
    );
    assert_eq!(r.other, 0, "overload must shed typed, not error");
    assert!(r.shed > 0, "overload run failed to trigger shedding");
    assert_eq!(
        snap.counter(sm::SHED),
        r.shed,
        "server shed counter must match client-observed sheds"
    );
    assert_eq!(
        snap.counter(sm::REQUESTS),
        r.answered,
        "server admission counter must match client-observed answers"
    );
    let shed_rate = r.shed as f64 / total as f64;
    println!(
        "overload: requests={total} answered={} shed={} shed_rate={:.3}",
        r.answered, r.shed, shed_rate
    );
    let overload_json = format!(
        concat!(
            "{{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.6}, ",
            "\"answered\": {}, \"shed\": {}, \"shed_rate\": {:.4}, ",
            "\"server_counters\": {{\"requests\": {}, \"shed\": {}, ",
            "\"deadline_expired\": {}}}}}"
        ),
        clients,
        total,
        r.wall_s,
        r.answered,
        r.shed,
        shed_rate,
        snap.counter(sm::REQUESTS),
        snap.counter(sm::SHED),
        snap.counter(sm::DEADLINE_EXPIRED),
    );

    // --- the cost of tracing: interleaved traced-off / traced-on pairs ---
    // One server, one client shape; the only variable is the observability
    // plane, flipped at runtime through the same `obs` protocol op an
    // operator would use. Interleaving the pairs (off,on,off,on,off,on)
    // cancels slow drift (thermal, cache, scheduler) that would bias a
    // run-all-off-then-all-on comparison.
    let trace_socket = scratch.join("trace.sock");
    let trace_server = Server::start(
        ModelLibrary::open(&store),
        &trace_socket,
        ServeOptions {
            workers,
            queue_capacity: 256,
            request_deadline: Duration::from_secs(30),
            trace_sample_every: 1,
            ..ServeOptions::default()
        },
    )
    .expect("start trace-overhead server");
    let set_obs = |req: &str| {
        let mut stream = UnixStream::connect(&trace_socket).expect("connect for obs flip");
        let resp = proto::call(&mut stream, req).expect("obs flip round trip");
        assert!(resp.contains("\"ok\":true"), "obs flip refused: {resp}");
    };
    // A few-percent signal needs long runs: a sub-second run swings by
    // more than the budget from scheduler and allocator noise alone. Each
    // measured run is sized to burn ≳1 s of CPU — /proc/self/stat ticks
    // at 10 ms, and the gate needs per-run quantization well under the
    // tolerance it enforces. One unmeasured warmup pair fills caches and
    // faults in the sink buffers first; the within-pair order alternates
    // so any slow drift across the measurement (thermal, cache state)
    // lands on both sides equally instead of being booked as overhead.
    // Sizing note: on a shared host individual pairs still swing by
    // double digits — co-tenant interference is sustained, not bursty,
    // so it lands on one side of whichever pair it straddles no matter
    // how long the runs are. The gate survives because it aggregates
    // CPU over all nine alternating pairs (see below), which gives that
    // interference near-equal exposure to both sides; repeated runs of
    // this config land within a couple percent of zero.
    const OVERHEAD_RUNS: usize = 9;
    // Even the aggregate keeps a heavy positive tail on this host: a
    // co-tenant that saturates the cache for the better part of a
    // measurement lands mostly on one side no matter how the pairs are
    // ordered. A trip therefore re-measures from scratch, up to three
    // attempts — a real regression is sustained and trips every attempt,
    // interference moves on.
    const GATE_ATTEMPTS: usize = 3;
    let (clients, per_client) = (8usize, (per_client_base * 16).max(24576));
    let tolerance_pct = std::env::var("PROXIM_SERVE_TRACE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(5.0);
    let gate_enabled = std::env::var_os("PROXIM_BENCH_NO_GATE").is_none();
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("qps is finite"));
        v[v.len() / 2]
    };
    let mut overhead_pct = f64::INFINITY;
    let (mut qps_off_med, mut qps_on_med) = (0.0f64, 0.0f64);
    let (mut cpu_off_us, mut cpu_on_us) = (0.0f64, 0.0f64);
    for attempt in 1..=GATE_ATTEMPTS {
        // A fresh (truncated) sink file per attempt, so every attempt
        // measures from an identical starting state rather than
        // inheriting the previous attempt's accumulated trace.
        sink::install_jsonl(&scratch.join(format!("bench_trace_{attempt}.jsonl")))
            .expect("install bench trace sink");
        let (mut qps_off, mut qps_on) = (Vec::new(), Vec::new());
        let (mut cpu_off, mut cpu_on) = (Vec::new(), Vec::new());
        for i in 0..=OVERHEAD_RUNS {
            let warmup = i == 0;
            let n = if warmup { per_client / 4 } else { per_client };
            let run_off = |qps: &mut Vec<f64>, cpu: &mut Vec<f64>| {
                set_obs(r#"{"op":"obs","level":"off","sample_every":0}"#);
                flight::disable();
                let r = run_load(&trace_socket, clients, n);
                if !warmup {
                    qps.push(r.answered as f64 / r.wall_s.max(1e-12));
                    cpu.push(r.cpu_s / r.answered.max(1) as f64);
                }
            };
            let run_on = |qps: &mut Vec<f64>, cpu: &mut Vec<f64>| {
                set_obs(r#"{"op":"obs","level":"trace","sample_every":16}"#);
                flight::enable(flight::DEFAULT_CAPACITY);
                let r = run_load(&trace_socket, clients, n);
                if !warmup {
                    qps.push(r.answered as f64 / r.wall_s.max(1e-12));
                    cpu.push(r.cpu_s / r.answered.max(1) as f64);
                }
            };
            if i % 2 == 0 {
                run_off(&mut qps_off, &mut cpu_off);
                run_on(&mut qps_on, &mut cpu_on);
            } else {
                run_on(&mut qps_on, &mut cpu_on);
                run_off(&mut qps_off, &mut cpu_off);
            }
        }
        // The gate works on CPU-per-request, aggregated over all measured
        // runs per side. CPU because on a loaded box throughput is its
        // inverse and, unlike wall-clock qps, process CPU time is not
        // stretched by preemption — wall-based ratios here swing by more
        // than the budget from scheduler noise alone. Aggregated (not
        // per-pair median) because what CPU noise remains on a shared host
        // is *sustained* interference — cache and memory-bandwidth
        // pressure lasting many seconds — which straddles pair boundaries,
        // inflating one side of one pair and the opposite side of the
        // next; per-pair ratios then read ±double digits in matched
        // positive/negative bursts. Summing each side over all runs gives
        // that interference near-equal exposure to both sides via the
        // alternating within-pair order. Wall qps would be the honest
        // metric on an idle multi-core host; it is still reported, just
        // not gated. Falls back to wall totals where /proc/self/stat is
        // unavailable.
        let (ratio_den, ratio_num, ratios): (f64, f64, Vec<f64>) =
            if cpu_off.iter().all(|c| *c > 0.0) {
                (
                    cpu_on.iter().sum(),
                    cpu_off.iter().sum(),
                    cpu_on
                        .iter()
                        .zip(&cpu_off)
                        .map(|(on, off)| off / on.max(1e-12))
                        .collect(),
                )
            } else {
                // Inverted on purpose: more qps is the good direction, so
                // the off/on roles swap to keep "ratio < 1 ⇒ tracing
                // costs".
                (
                    qps_off.iter().sum(),
                    qps_on.iter().sum(),
                    qps_on
                        .iter()
                        .zip(&qps_off)
                        .map(|(on, off)| on / off.max(1e-12))
                        .collect(),
                )
            };
        // Per-pair overheads are printed so a gate trip distinguishes a
        // real regression (every pair high) from interference (matched
        // +/- bursts).
        let pair_pcts: Vec<String> = ratios
            .iter()
            .map(|r| format!("{:.2}%", (1.0 - r) * 100.0))
            .collect();
        println!(
            "trace_overhead_pairs: attempt={attempt} [{}]",
            pair_pcts.join(", ")
        );
        overhead_pct = (1.0 - ratio_num / ratio_den.max(1e-12)) * 100.0;
        qps_off_med = median(&mut qps_off);
        qps_on_med = median(&mut qps_on);
        cpu_off_us = median(&mut cpu_off) * 1e6;
        cpu_on_us = median(&mut cpu_on) * 1e6;
        if !gate_enabled || overhead_pct <= tolerance_pct {
            break;
        }
        if attempt < GATE_ATTEMPTS {
            println!(
                "trace_overhead: attempt {attempt} measured {overhead_pct:.2}% \
                 (over the {tolerance_pct}% budget); re-measuring"
            );
        }
    }
    trace_server.begin_shutdown();
    trace_server.join();
    proxim_obs::set_level(proxim_obs::Level::Off);
    flight::disable();
    sink::uninstall();
    let (qps_off, qps_on) = (qps_off_med, qps_on_med);
    println!(
        "trace_overhead: qps_off={qps_off:.0} qps_on={qps_on:.0} \
         cpu_off={cpu_off_us:.2}us/req cpu_on={cpu_on_us:.2}us/req \
         overhead={overhead_pct:.2}% (tolerance {tolerance_pct}%)"
    );
    if gate_enabled {
        assert!(
            overhead_pct <= tolerance_pct,
            "tracing cost over the {tolerance_pct}% budget on all {GATE_ATTEMPTS} \
             attempts (last: {overhead_pct:.2}% CPU per request)"
        );
    }
    let trace_overhead_json = format!(
        concat!(
            "{{\"clients\": {}, \"requests_per_run\": {}, \"runs\": {}, ",
            "\"sample_every\": 16, ",
            "\"qps_off\": {:.1}, \"qps_on\": {:.1}, ",
            "\"cpu_us_per_req_off\": {:.2}, \"cpu_us_per_req_on\": {:.2}, ",
            "\"overhead_pct\": {:.2}, \"tolerance_pct\": {:.1}}}"
        ),
        clients,
        clients * per_client,
        OVERHEAD_RUNS,
        qps_off,
        qps_on,
        cpu_off_us,
        cpu_on_us,
        overhead_pct,
        tolerance_pct,
    );

    // --- reload latency: back-to-back swaps under sustained load ---------
    // The number a daemon operator actually plans around: how long a
    // validated generation swap takes, and whether the data plane notices.
    const RELOADS: usize = 50;
    const RELOAD_CLIENTS: usize = 8;
    let reload_socket = scratch.join("reload.sock");
    let reload_server = Server::start(
        ModelLibrary::open(&store),
        &reload_socket,
        ServeOptions {
            workers,
            queue_capacity: 256,
            request_deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("start reload server");
    let stop = AtomicBool::new(false);
    let (reload_us, served_during) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RELOAD_CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    let mut stream =
                        UnixStream::connect(&reload_socket).expect("connect to reload server");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .expect("set read timeout");
                    let request = request_json();
                    let mut answered = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let resp = proto::call(&mut stream, &request)
                            .expect("reload-storm round trip must not fail");
                        assert!(
                            resp.contains("\"ok\":true"),
                            "a swap must never shed or error a query: {resp}"
                        );
                        answered += 1;
                    }
                    answered
                })
            })
            .collect();
        let mut us = Vec::with_capacity(RELOADS);
        for _ in 0..RELOADS {
            let outcome = reload_server
                .reload(false, None)
                .expect("bench reload must swap");
            us.push(outcome.reload_us as f64);
        }
        stop.store(true, Ordering::Relaxed);
        let served: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("reload client panicked"))
            .sum();
        (us, served)
    });
    reload_server.begin_shutdown();
    let reload_snap = reload_server.join();
    assert_eq!(reload_snap.counter(sm::RELOAD_SWAPPED), RELOADS as u64);
    assert_eq!(reload_snap.counter(sm::SHED), 0);
    assert!(served_during > 0, "the storm must overlap live traffic");
    let (reload50, reload99) = phase_percentiles(reload_us);
    println!(
        "reload: swaps={RELOADS} p50={reload50:.0}us p99={reload99:.0}us \
         served_during={served_during}"
    );
    let reload_json = format!(
        concat!(
            "{{\"reloads\": {}, \"clients\": {}, \"p50_us\": {:.1}, ",
            "\"p99_us\": {:.1}, \"served_during\": {}}}"
        ),
        RELOADS, RELOAD_CLIENTS, reload50, reload99, served_during,
    );

    // --- eviction churn: a budget 2.5 entries wide over 6 models ---------
    let churn_names: Vec<String> = (0..6).map(|i| format!("evict_{i}")).collect();
    for name in &churn_names {
        store.save(name, &model).expect("seed eviction store");
    }
    let entry_bytes = std::fs::metadata(store.entry_path("evict_0"))
        .expect("entry metadata")
        .len();
    let budget = entry_bytes * 5 / 2;
    let churn_socket = scratch.join("churn.sock");
    let churn_server = Server::start(
        ModelLibrary::open_with(
            &store,
            LibraryOptions {
                memory_budget: Some(budget),
                ..LibraryOptions::default()
            },
        ),
        &churn_socket,
        ServeOptions {
            workers,
            queue_capacity: 256,
            request_deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("start churn server");
    const CHURN_ROUNDS: usize = 64;
    let mut stream = UnixStream::connect(&churn_socket).expect("connect to churn server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    let (mut warm_us, mut cold_us, mut load_us) = (Vec::new(), Vec::new(), Vec::new());
    // Round-robin over a set wider than the budget cycles LRU (every
    // access a miss); interleaving one hot model keeps it resident, so the
    // run measures both sides: warm hits under churn and cold misses.
    let access: Vec<&String> = churn_names
        .iter()
        .flat_map(|name| [name, &churn_names[0]])
        .collect();
    for _ in 0..CHURN_ROUNDS {
        for name in &access {
            let request = format!(
                concat!(
                    "{{\"op\":\"query\",\"model\":\"{}\",\"events\":[",
                    "{{\"pin\":0,\"edge\":\"rise\",\"t\":0.0,\"tt\":4e-10}},",
                    "{{\"pin\":1,\"edge\":\"rise\",\"t\":5e-11,\"tt\":4e-10}}]}}"
                ),
                name
            );
            let start = Instant::now();
            let resp = proto::call(&mut stream, &request).expect("churn round trip");
            let e2e = start.elapsed().as_secs_f64() * 1e6;
            assert!(resp.contains("\"ok\":true"), "{name}: {resp}");
            if resp.contains("\"cold\":true") {
                cold_us.push(e2e);
                let json = Json::parse(&resp).expect("churn response parses");
                load_us.push(
                    json.get("load_us")
                        .and_then(Json::as_f64)
                        .expect("a cold answer must carry load_us"),
                );
            } else {
                warm_us.push(e2e);
            }
        }
    }
    drop(stream);
    churn_server.begin_shutdown();
    let churn_snap = churn_server.join();
    let cold_misses = churn_snap.counter(sm::LIBRARY_COLD_MISSES);
    let evictions = churn_snap.counter(sm::LIBRARY_EVICTIONS);
    let resident = churn_snap.gauge(sm::LIBRARY_RESIDENT_BYTES);
    assert!(cold_misses > 0, "an over-budget set must pay cold misses");
    assert!(evictions > 0, "an over-budget set must evict");
    assert!(
        !warm_us.is_empty() && !cold_us.is_empty(),
        "the penalty comparison needs both warm and cold samples"
    );
    assert!(
        resident <= budget as f64,
        "resident bytes {resident} exceed the budget {budget}"
    );
    let (warm50, warm99) = phase_percentiles(warm_us.clone());
    let (cold50, cold99) = phase_percentiles(cold_us.clone());
    let (load50, _) = phase_percentiles(load_us.clone());
    println!(
        "eviction_churn: queries={} cold={} evictions={evictions} \
         warm_p50={warm50:.0}us cold_p50={cold50:.0}us load_p50={load50:.0}us",
        CHURN_ROUNDS * access.len(),
        cold_us.len(),
    );
    let churn_json = format!(
        concat!(
            "{{\"models\": {}, \"entry_bytes\": {}, \"budget_bytes\": {}, ",
            "\"queries\": {}, \"cold_misses\": {}, \"evictions\": {}, ",
            "\"warm\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}}}, ",
            "\"cold\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}}}, ",
            "\"cold_load_p50_us\": {:.1}, ",
            "\"cold_miss_penalty_p50_us\": {:.1}, \"resident_bytes\": {:.0}}}"
        ),
        churn_names.len(),
        entry_bytes,
        budget,
        CHURN_ROUNDS * access.len(),
        cold_misses,
        evictions,
        warm50,
        warm99,
        cold50,
        cold99,
        load50,
        cold50 - warm50,
        resident,
    );

    // --- fleet: availability under rolling restart, hedge win rate -------
    // In-process replicas (the supervised-process path is covered by the
    // chaos suite; the bench measures the balancer itself).
    let fleet_opts = ServeOptions {
        workers: 2,
        queue_capacity: 256,
        request_deadline: Duration::from_secs(30),
        ..ServeOptions::default()
    };
    let fleet_sockets: Vec<PathBuf> = (0..3)
        .map(|i| scratch.join(format!("fl{i}.sock")))
        .collect();
    let mut fleet_servers: Vec<Server> = fleet_sockets
        .iter()
        .map(|s| {
            Server::start(ModelLibrary::open(&store), s, fleet_opts.clone())
                .expect("start fleet replica")
        })
        .collect();
    let fleet_client = Arc::new(FleetClient::new(
        fleet_sockets.clone(),
        FleetClientOptions {
            retry: RetryPolicy {
                base: Duration::from_millis(2),
                cap: Duration::from_millis(50),
                ..RetryPolicy::default()
            },
            ..FleetClientOptions::default()
        },
    ));
    // Closed-loop churn through the balancer while each replica is taken
    // down and brought back, one at a time — availability must hold at 1.0
    // because failover absorbs the missing replica.
    let stop = Arc::new(AtomicBool::new(false));
    let (fl_ok, fl_failed) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let fleet_churners: Vec<_> = (0..8)
        .map(|_| {
            let client = Arc::clone(&fleet_client);
            let stop = Arc::clone(&stop);
            let (ok, failed) = (Arc::clone(&fl_ok), Arc::clone(&fl_failed));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match client.call(&request_json()) {
                        Ok(out) if out.response.contains("\"timing\"") => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for (i, socket) in fleet_sockets.iter().enumerate() {
        let old = fleet_servers.remove(i);
        old.begin_shutdown();
        old.join();
        let replacement = Server::start(ModelLibrary::open(&store), socket, fleet_opts.clone())
            .expect("restart fleet replica");
        fleet_servers.insert(i, replacement);
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    for churner in fleet_churners {
        churner.join().expect("fleet churner");
    }
    let (rolled_ok, rolled_failed) = (
        fl_ok.load(Ordering::Relaxed),
        fl_failed.load(Ordering::Relaxed),
    );
    let availability = rolled_ok as f64 / ((rolled_ok + rolled_failed) as f64).max(1.0);
    assert_eq!(
        rolled_failed, 0,
        "failover must absorb a rolling restart with zero client-visible failures"
    );
    for server in fleet_servers.drain(..) {
        server.begin_shutdown();
        server.join();
    }

    // Hedged vs unhedged p99 against one deterministically stalled replica.
    const HEDGE_REQUESTS: usize = 150;
    let stall = Duration::from_millis(10);
    let hedge_sockets = [scratch.join("hs.sock"), scratch.join("hf.sock")];
    let stalled = Server::start(
        ModelLibrary::open(&store),
        &hedge_sockets[0],
        ServeOptions {
            worker_stall: stall,
            ..fleet_opts.clone()
        },
    )
    .expect("start stalled replica");
    let healthy = Server::start(
        ModelLibrary::open(&store),
        &hedge_sockets[1],
        fleet_opts.clone(),
    )
    .expect("start healthy replica");
    let mut hedge_section = Vec::new();
    let mut hedge_stats = (0u64, 0u64);
    for hedge_delay in [None, Some(Duration::from_millis(2))] {
        let client = FleetClient::new(
            hedge_sockets.to_vec(),
            FleetClientOptions {
                hedge_delay,
                ..FleetClientOptions::default()
            },
        );
        let mut lat_us: Vec<f64> = Vec::with_capacity(HEDGE_REQUESTS);
        for _ in 0..HEDGE_REQUESTS {
            let start = Instant::now();
            let out = client.call(&request_json()).expect("hedge bench query");
            assert!(out.response.contains("\"timing\""), "{}", out.response);
            lat_us.push(start.elapsed().as_secs_f64() * 1e6);
        }
        lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let (p50, p99) = (percentile(&lat_us, 0.50), percentile(&lat_us, 0.99));
        let label = if hedge_delay.is_some() {
            "hedged"
        } else {
            "unhedged"
        };
        println!(
            "fleet {label}: p50={p50:.0}us p99={p99:.0}us hedges={} wins={}",
            client.hedges(),
            client.hedge_wins()
        );
        hedge_section.push(format!(
            "\"{label}\": {{\"p50_us\": {p50:.1}, \"p99_us\": {p99:.1}}}"
        ));
        if hedge_delay.is_some() {
            hedge_stats = (client.hedges(), client.hedge_wins());
        }
    }
    stalled.begin_shutdown();
    healthy.begin_shutdown();
    stalled.join();
    healthy.join();
    let (hedges, hedge_wins) = hedge_stats;
    assert!(hedges > 0, "the stalled replica must trigger hedges");
    let fleet_json = format!(
        concat!(
            "{{\"replicas\": 3, \"rolling_restart\": {{\"requests\": {}, ",
            "\"failed\": {}, \"availability\": {:.4}}}, ",
            "\"hedge\": {{\"requests\": {}, \"stall_ms\": {}, \"hedge_delay_ms\": 2, ",
            "{}, \"hedges\": {}, \"hedge_wins\": {}, \"win_rate\": {:.3}}}}}"
        ),
        rolled_ok + rolled_failed,
        rolled_failed,
        availability,
        HEDGE_REQUESTS,
        stall.as_millis(),
        hedge_section.join(", "),
        hedges,
        hedge_wins,
        hedge_wins as f64 / (hedges as f64).max(1.0),
    );
    println!("fleet: availability={availability:.4} hedges={hedges} wins={hedge_wins}");

    let report = format!(
        concat!(
            "{{\n  \"model\": \"{}\",\n  \"workers\": {},\n",
            "  \"latency\": {{{}}},\n  \"phases\": {},\n  \"overload\": {},\n",
            "  \"trace_overhead\": {},\n  \"reload\": {},\n",
            "  \"eviction_churn\": {},\n  \"fleet\": {}\n}}\n"
        ),
        MODEL,
        workers,
        latency_sections.join(", "),
        phases,
        overload_json,
        trace_overhead_json,
        reload_json,
        churn_json,
        fleet_json,
    );
    std::fs::write(&out, &report).expect("write report");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&scratch);
    ExitCode::SUCCESS
}
