//! Benchmarks the `proxim-serve` daemon end to end over its Unix socket and
//! emits `BENCH_serve.json`.
//!
//! Usage:
//!
//! ```text
//! bench_serve [--out PATH] [--requests N]
//! ```
//!
//! Two measurements, both against an in-process [`Server`] with a real
//! socket (so framing, admission, and worker dispatch are all on the
//! measured path):
//!
//! 1. **Latency/throughput** — closed-loop clients at 1, 8, and 64
//!    concurrent connections, each issuing single-query requests against a
//!    fast-grid NAND2 model and waiting for the response before sending the
//!    next. Reports p50/p99 latency and aggregate qps per concurrency
//!    level. The server is sized (queue ≥ client count, generous deadline)
//!    so nothing is shed — this measures the happy path.
//! 2. **Overload** — a deliberately starved server (one worker with an
//!    artificial per-job stall, tiny admission queue) under 64 closed-loop
//!    clients. Reports the shed rate and cross-checks the client-observed
//!    counts against the server's own `serve.requests` / `serve.shed`
//!    counters: every request must be either answered or shed typed —
//!    never dropped.
//!
//! Latencies are wall-clock microseconds measured around one
//! request/response round trip ([`proto::call`]), queue wait included.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_obs::serve_metrics as sm;
use proxim_serve::proto;
use proxim_serve::{ModelLibrary, ModelStore, ServeOptions, Server};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Model name used for every query; must satisfy the store's name rules.
const MODEL: &str = "nand2_demo";

/// One single-query request: a rising proximity pair on the NAND2 inputs,
/// 50 ps apart — the paper's bread-and-butter query shape.
fn request_json() -> String {
    format!(
        concat!(
            "{{\"op\":\"query\",\"model\":\"{}\",\"events\":[",
            "{{\"pin\":0,\"edge\":\"rise\",\"t\":0.0,\"tt\":4e-10}},",
            "{{\"pin\":1,\"edge\":\"rise\",\"t\":5e-11,\"tt\":4e-10}}]}}"
        ),
        MODEL
    )
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Fresh scratch directory under the system temp dir.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proxim_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// What one closed-loop client run produced.
struct LoadResult {
    /// Per-request round-trip latencies, seconds; answered requests only.
    latencies: Vec<f64>,
    answered: u64,
    shed: u64,
    other: u64,
    wall_s: f64,
}

/// Runs `clients` closed-loop connections, `per_client` requests each.
fn run_load(socket: &Path, clients: usize, per_client: usize) -> LoadResult {
    let t0 = Instant::now();
    let per_thread: Vec<(Vec<f64>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut stream = UnixStream::connect(socket).expect("connect to bench server");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .expect("set read timeout");
                    let request = request_json();
                    let mut latencies = Vec::with_capacity(per_client);
                    let (mut answered, mut shed, mut other) = (0u64, 0u64, 0u64);
                    for _ in 0..per_client {
                        let start = Instant::now();
                        let response = proto::call(&mut stream, &request)
                            .expect("bench round trip must not fail at the transport layer");
                        let elapsed = start.elapsed().as_secs_f64();
                        if response.contains("\"ok\":true") {
                            answered += 1;
                            latencies.push(elapsed);
                        } else if response.contains("\"overloaded\"") {
                            shed += 1;
                        } else {
                            other += 1;
                        }
                    }
                    (latencies, answered, shed, other)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut out = LoadResult {
        latencies: Vec::new(),
        answered: 0,
        shed: 0,
        other: 0,
        wall_s,
    };
    for (lat, answered, shed, other) in per_thread {
        out.latencies.extend(lat);
        out.answered += answered;
        out.shed += shed;
        out.other += other;
    }
    out
}

/// Nearest-rank percentile over an already-sorted sample, seconds.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One latency section of the report.
fn latency_json(clients: usize, per_client: usize, r: &LoadResult) -> String {
    let mut sorted = r.latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let total = (clients * per_client) as f64;
    format!(
        concat!(
            "{{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.6}, ",
            "\"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, ",
            "\"max_us\": {:.1}}}"
        ),
        clients,
        clients * per_client,
        r.wall_s,
        total / r.wall_s.max(1e-12),
        percentile(&sorted, 0.50) * 1e6,
        percentile(&sorted, 0.99) * 1e6,
        sorted.last().copied().unwrap_or(0.0) * 1e6,
    )
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_serve.json");
    let mut per_client_base = 512usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = args.next().expect("--out requires a path");
            }
            "--requests" => {
                per_client_base = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests requires a count");
            }
            other => {
                eprintln!("bench_serve: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    // One characterization feeds both servers through the same store.
    let scratch = scratch_dir();
    let store = ModelStore::new(scratch.join("store"));
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let model = ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
        .expect("bench characterization must succeed");
    store.save(MODEL, &model).expect("seed bench store");

    // --- happy-path latency/throughput at 1 / 8 / 64 clients -------------
    let workers = host_cpus().clamp(2, 8);
    let socket = scratch.join("bench.sock");
    let server = Server::start(
        ModelLibrary::open(&store),
        &socket,
        ServeOptions {
            workers,
            queue_capacity: 256,
            request_deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("start bench server");

    let mut latency_sections = Vec::new();
    for clients in [1usize, 8, 64] {
        // Same total request count per level, so qps numbers are comparable.
        let per_client = (per_client_base / clients).max(8);
        let r = run_load(&socket, clients, per_client);
        assert_eq!(
            r.shed + r.other,
            0,
            "happy-path run must not shed or error (shed={}, other={})",
            r.shed,
            r.other
        );
        println!(
            "latency: clients={clients} requests={} wall={:.3}s qps={:.0}",
            clients * per_client,
            r.wall_s,
            (clients * per_client) as f64 / r.wall_s.max(1e-12),
        );
        latency_sections.push(format!(
            "\"c{clients}\": {}",
            latency_json(clients, per_client, &r)
        ));
    }
    server.begin_shutdown();
    server.join();

    // --- deliberate overload: 1 stalled worker, tiny queue, 64 clients ---
    let overload_socket = scratch.join("overload.sock");
    let overload = Server::start(
        ModelLibrary::open(&store),
        &overload_socket,
        ServeOptions {
            workers: 1,
            queue_capacity: 8,
            worker_stall: Duration::from_millis(2),
            request_deadline: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("start overload server");
    let (clients, per_client) = (64usize, 24usize);
    let r = run_load(&overload_socket, clients, per_client);
    overload.begin_shutdown();
    let snap = overload.join();
    let total = (clients * per_client) as u64;
    assert_eq!(
        r.answered + r.shed + r.other,
        total,
        "every overload request must get exactly one typed response"
    );
    assert_eq!(r.other, 0, "overload must shed typed, not error");
    assert!(r.shed > 0, "overload run failed to trigger shedding");
    assert_eq!(
        snap.counter(sm::SHED),
        r.shed,
        "server shed counter must match client-observed sheds"
    );
    assert_eq!(
        snap.counter(sm::REQUESTS),
        r.answered,
        "server admission counter must match client-observed answers"
    );
    let shed_rate = r.shed as f64 / total as f64;
    println!(
        "overload: requests={total} answered={} shed={} shed_rate={:.3}",
        r.answered, r.shed, shed_rate
    );
    let overload_json = format!(
        concat!(
            "{{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.6}, ",
            "\"answered\": {}, \"shed\": {}, \"shed_rate\": {:.4}, ",
            "\"server_counters\": {{\"requests\": {}, \"shed\": {}, ",
            "\"deadline_expired\": {}}}}}"
        ),
        clients,
        total,
        r.wall_s,
        r.answered,
        r.shed,
        shed_rate,
        snap.counter(sm::REQUESTS),
        snap.counter(sm::SHED),
        snap.counter(sm::DEADLINE_EXPIRED),
    );

    let report = format!(
        concat!(
            "{{\n  \"model\": \"{}\",\n  \"workers\": {},\n",
            "  \"latency\": {{{}}},\n  \"overload\": {}\n}}\n"
        ),
        MODEL,
        workers,
        latency_sections.join(", "),
        overload_json,
    );
    std::fs::write(&out, &report).expect("write report");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&scratch);
    ExitCode::SUCCESS
}
