//! Regenerates every table and figure of the paper (see DESIGN.md §4).
//!
//! Usage:
//!
//! ```text
//! experiments [--fast] [ids...]
//! ids: fig1-2 fig2-1 fig3-3 fig4-2 table5-1 fig5-1 fig6-1 baselines
//!      ablate-correction ablate-dominance ablate-grid ablate-integrator all
//! ```
//!
//! `--fast` uses reduced characterization grids (seconds instead of
//! minutes); the shapes survive, the error statistics loosen.

use proxim_bench::env::{ExperimentEnv, Fidelity};
use proxim_bench::{
    ablations, baselines, fanin, fig1_2, fig2_1, fig3_3, fig4_2, fig6_1, path_validation, table5_1,
};
use std::process::ExitCode;

const ALL: &[&str] = &[
    "fig1-2",
    "fig2-1",
    "fig3-3",
    "fig4-2",
    "table5-1",
    "fig5-1",
    "fig6-1",
    "baselines",
    "fanin",
    "path-validation",
    "ablate-correction",
    "ablate-dominance",
    "ablate-grid",
    "ablate-pairs",
    "ablate-analytic",
    "ablate-integrator",
];

fn main() -> ExitCode {
    let mut fast = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fast" => fast = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--fast] [ids...|all]\nids: {}",
                    ALL.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ALL.contains(&id.as_str()) {
            eprintln!("unknown experiment id {id:?}; known: {}", ALL.join(" "));
            return ExitCode::FAILURE;
        }
    }

    let fidelity = if fast { Fidelity::Fast } else { Fidelity::Full };
    let (sweep_points, t51_count) = if fast { (9, 12) } else { (25, 100) };

    // Experiments that don't need the characterized model run first.
    if ids.iter().any(|i| i == "fig4-2") {
        fig4_2::print(&fig4_2::run(8, 8, 8), None);
    }
    if ids.iter().any(|i| i == "ablate-grid") {
        let points = if fast { vec![2, 3] } else { vec![2, 4, 6] };
        let configs = if fast { 6 } else { 25 };
        match ablations::grid(&points, configs) {
            Ok(g) => ablations::print_grid(&g),
            Err(e) => {
                eprintln!("ablate-grid failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if ids.iter().any(|i| i == "fanin") {
        let (max_n, configs) = if fast { (3, 5) } else { (4, 25) };
        let opts = if fast {
            proxim_model::characterize::CharacterizeOptions::fast()
        } else {
            proxim_model::characterize::CharacterizeOptions::medium()
        };
        match fanin::run(max_n, configs, &opts) {
            Ok(rows) => fanin::print(&rows),
            Err(e) => {
                eprintln!("fanin failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if ids.iter().any(|i| i == "path-validation") {
        let opts = if fast {
            proxim_model::characterize::CharacterizeOptions::fast()
        } else {
            proxim_model::characterize::CharacterizeOptions::medium()
        };
        match path_validation::run(&opts) {
            Ok(v) => path_validation::print(&v),
            Err(e) => {
                eprintln!("path-validation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if ids.iter().any(|i| i == "ablate-pairs") {
        let configs = if fast { 6 } else { 30 };
        match ablations::pairs(configs, 1996) {
            Ok(p) => ablations::print_pairs(&p),
            Err(e) => {
                eprintln!("ablate-pairs failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let needs_env = ids.iter().any(|i| {
        !matches!(
            i.as_str(),
            "fig4-2" | "ablate-grid" | "ablate-pairs" | "fanin" | "path-validation"
        )
    });
    if !needs_env {
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "characterizing NAND3 at {} fidelity (this runs the full VTC + macromodel flow)...",
        if fast { "fast" } else { "paper" }
    );
    let start = std::time::Instant::now();
    let env = ExperimentEnv::new(fidelity);
    eprintln!(
        "characterization done in {:.1} s ({} table entries)",
        start.elapsed().as_secs_f64(),
        env.model.table_entries()
    );

    let mut t51_cache: Option<table5_1::Table51> = None;
    for id in &ids {
        let result: Result<(), Box<dyn std::error::Error>> = (|| {
            match id.as_str() {
                "fig1-2" => {
                    let fig = fig1_2::run(&env, sweep_points)?;
                    fig1_2::print(&fig);
                    let c = fig1_2::checks(&fig);
                    println!(
                        "\nheadline factors: falling speedup {:.2}x, rising slowdown {:.2}x",
                        c.falling_speedup_factor, c.rising_slowdown_factor
                    );
                }
                "fig2-1" => {
                    let points = if fast { 121 } else { 301 };
                    let family =
                        fig2_1::run(&env.cell, &env.tech, env.model.reference_load(), points)?;
                    fig2_1::print(&env.cell, &family);
                }
                "fig3-3" => {
                    let series = fig3_3::run(&env, sweep_points)?;
                    fig3_3::print(&series);
                }
                "fig4-2" => {
                    // Re-print with the actual model footprint attached.
                    fig4_2::print(&fig4_2::run(8, 8, 8), Some(&env.model));
                }
                "table5-1" | "fig5-1" => {
                    if t51_cache.is_none() {
                        t51_cache = Some(table5_1::run(&env, t51_count, 1996)?);
                    }
                    let t = t51_cache.as_ref().expect("just filled");
                    if id == "table5-1" {
                        table5_1::print(t);
                    } else {
                        table5_1::print_histograms(t);
                    }
                }
                "fig6-1" => {
                    let series = fig6_1::run(&env, sweep_points.min(15))?;
                    fig6_1::print(&series, env.thresholds().v_il);
                }
                "baselines" => {
                    let count = if fast { 8 } else { 50 };
                    let c = baselines::run(&env, count, 1996)?;
                    baselines::print(&c);
                }
                "ablate-correction" => {
                    let count = if fast { 8 } else { 50 };
                    let c = ablations::correction(&env, count, 1996)?;
                    ablations::print_correction(&c);
                }
                "ablate-dominance" => {
                    let d = ablations::dominance(&env, if fast { 4 } else { 9 })?;
                    ablations::print_dominance(&d);
                }
                "ablate-analytic" => {
                    let a = ablations::analytic(&env, if fast { 5 } else { 11 })?;
                    ablations::print_analytic(&a);
                }
                "ablate-integrator" => {
                    let worst = ablations::integrator(&env, if fast { 3 } else { 7 })?;
                    println!(
                        "\nAblation: trapezoidal vs backward-Euler worst delay deviation: {:.3}%",
                        worst * 100.0
                    );
                }
                "ablate-grid" | "ablate-pairs" | "fanin" | "path-validation" => {} // handled above
                _ => unreachable!("ids validated"),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("experiment {id} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
