//! Table 5-1 and Figure 5-1: the paper's headline validation — the model
//! against circuit simulation over randomly generated three-input
//! configurations.
//!
//! Per §5 of the paper: the NAND3 is driven with falling inputs whose
//! transition times are uniform in [50 ps, 2000 ps] and whose separations
//! `s_ab`, `s_ac` are uniform in [−500 ps, +500 ps]; 100 configurations are
//! generated, and the percentage errors of the model's delay and output
//! rise time against simulation are summarized (mean / std-dev / max / min)
//! and histogrammed.

use crate::env::ExperimentEnv;
use proxim_model::measure::InputEvent;
use proxim_model::ModelError;
use proxim_numeric::pwl::Edge;
use proxim_numeric::{Histogram, Summary};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One random input configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Transition times of a, b, c, in seconds.
    pub tau: [f64; 3],
    /// Separations of b and c from a, in seconds.
    pub s_ab: f64,
    /// Separation of c from a, in seconds.
    pub s_ac: f64,
}

/// Draws the paper's random population.
pub fn population(count: usize, seed: u64) -> Vec<Config> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Config {
            tau: [
                rng.random_range(50e-12..2000e-12),
                rng.random_range(50e-12..2000e-12),
                rng.random_range(50e-12..2000e-12),
            ],
            s_ab: rng.random_range(-500e-12..500e-12),
            s_ac: rng.random_range(-500e-12..500e-12),
        })
        .collect()
}

/// Builds the three falling input events of a configuration, with arrivals
/// placed so `s_ab`/`s_ac` are exact separations in the paper's sense.
pub fn events_for(env: &ExperimentEnv, cfg: &Config) -> [InputEvent; 3] {
    let th = env.thresholds();
    let e_a = InputEvent::new(0, Edge::Falling, 0.0, cfg.tau[0]);
    let arrival_a = e_a.arrival(&th);
    let place = |pin: usize, tau: f64, s: f64| {
        let frac = InputEvent::new(pin, Edge::Falling, 0.0, tau).arrival(&th);
        InputEvent::new(pin, Edge::Falling, arrival_a + s - frac, tau)
    };
    [
        e_a,
        place(1, cfg.tau[1], cfg.s_ab),
        place(2, cfg.tau[2], cfg.s_ac),
    ]
}

/// The per-configuration comparison.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// The configuration.
    pub config: Config,
    /// Delay percentage error (model vs simulation).
    pub delay_err_pct: f64,
    /// Output-transition-time percentage error.
    pub trans_err_pct: f64,
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table51 {
    /// Per-configuration results.
    pub comparisons: Vec<Comparison>,
    /// Delay error summary (the table's first column).
    pub delay: Summary,
    /// Rise-time error summary (the table's second column).
    pub rise_time: Summary,
}

/// Runs the validation over `count` random configurations.
///
/// # Errors
///
/// Returns [`ModelError`] if a simulation or model query fails.
pub fn run(env: &ExperimentEnv, count: usize, seed: u64) -> Result<Table51, ModelError> {
    let sim = env.reference_simulator();
    let th = env.thresholds();
    let mut comparisons = Vec::with_capacity(count);

    for cfg in population(count, seed) {
        let events = events_for(env, &cfg);
        let predicted = env.model.gate_timing(&events)?;
        let r = sim.simulate(&events)?;
        let k_ref = events
            .iter()
            .position(|e| e.pin == predicted.reference_pin)
            .expect("reference pin is among the events");
        let delay_sim = r.delay_from(k_ref, &th)?;
        let trans_sim = r.transition_time(&th)?;
        comparisons.push(Comparison {
            config: cfg,
            delay_err_pct: (predicted.delay - delay_sim) / delay_sim * 100.0,
            trans_err_pct: (predicted.output_transition - trans_sim) / trans_sim * 100.0,
        });
    }

    let delay = Summary::of(
        &comparisons
            .iter()
            .map(|c| c.delay_err_pct)
            .collect::<Vec<_>>(),
    );
    let rise_time = Summary::of(
        &comparisons
            .iter()
            .map(|c| c.trans_err_pct)
            .collect::<Vec<_>>(),
    );
    Ok(Table51 {
        comparisons,
        delay,
        rise_time,
    })
}

/// Prints Table 5-1 alongside the paper's reported numbers.
pub fn print(t: &Table51) {
    println!(
        "\nTable 5-1: model vs circuit simulation ({} configs)",
        t.comparisons.len()
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14}",
        "quantity", "this repo", "", "paper", ""
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14}",
        "", "delay", "rise time", "delay", "rise time"
    );
    let rows = [
        ("mean %", t.delay.mean, t.rise_time.mean, 1.4, -1.33),
        (
            "std-dev %",
            t.delay.std_dev,
            t.rise_time.std_dev,
            2.46,
            4.82,
        ),
        ("max %", t.delay.max, t.rise_time.max, 8.54, 11.51),
        ("min %", t.delay.min, t.rise_time.min, -6.94, -13.15),
    ];
    for (label, d, r, pd, pr) in rows {
        println!("{label:>12} {d:>12.2} {r:>12.2} {pd:>14.2} {pr:>14.2}");
    }
}

/// Builds the Figure 5-1 error histograms (2 % bins for delay, 3 % for the
/// rise time, matching the wider tolerance the paper reports).
pub fn histograms(t: &Table51) -> (Histogram, Histogram) {
    let mut delay = Histogram::new(-12.0, 12.0, 12);
    delay.extend(t.comparisons.iter().map(|c| c.delay_err_pct));
    let mut trans = Histogram::new(-18.0, 18.0, 12);
    trans.extend(t.comparisons.iter().map(|c| c.trans_err_pct));
    (delay, trans)
}

/// Prints Figure 5-1 as text bar charts.
pub fn print_histograms(t: &Table51) {
    let (d, r) = histograms(t);
    println!("\nFig 5-1(a): delay error distribution [%]");
    print!("{}", d.to_bar_chart(40));
    if d.underflow() + d.overflow() > 0 {
        println!(
            "(out of range: {} below, {} above)",
            d.underflow(),
            d.overflow()
        );
    }
    println!("\nFig 5-1(b): rise-time error distribution [%]");
    print!("{}", r.to_bar_chart(40));
    if r.underflow() + r.overflow() > 0 {
        println!(
            "(out of range: {} below, {} above)",
            r.underflow(),
            r.overflow()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Fidelity;

    #[test]
    fn population_is_deterministic_and_in_range() {
        let p1 = population(20, 7);
        let p2 = population(20, 7);
        assert_eq!(p1, p2);
        for c in &p1 {
            for &t in &c.tau {
                assert!((50e-12..2000e-12).contains(&t));
            }
            assert!((-500e-12..500e-12).contains(&c.s_ab));
            assert!((-500e-12..500e-12).contains(&c.s_ac));
        }
        assert_ne!(population(20, 8), p1, "different seeds differ");
    }

    #[test]
    fn small_population_validates_within_loose_band() {
        // Fast fidelity with 10 configs: errors stay within a loose band
        // (the full-fidelity run in EXPERIMENTS.md tightens this).
        let env = ExperimentEnv::new(Fidelity::Fast);
        let t = run(&env, 10, 42).unwrap();
        assert_eq!(t.comparisons.len(), 10);
        assert!(t.delay.mean.abs() < 15.0, "delay mean {}", t.delay.mean);
        assert!(t.delay.max < 40.0 && t.delay.min > -40.0);
        let (d, _) = histograms(&t);
        assert_eq!(d.total(), 10);
    }
}
