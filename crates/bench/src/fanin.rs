//! Fan-in scaling: the §4 claim that `ProximityDelay` handles any fan-in by
//! repeated application of the dual-input model — validated by running the
//! Table 5-1 flow on NAND2, NAND3 and NAND4 and watching how the error
//! statistics evolve with the number of folded inputs.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::validate::{validate, ValidateOptions};
use proxim_model::{ModelError, ProximityModel};
use proxim_numeric::Summary;

/// One fan-in row.
#[derive(Debug, Clone)]
pub struct FaninRow {
    /// Gate fan-in.
    pub n: usize,
    /// Delay-error summary, in percent.
    pub delay: Summary,
    /// Transition-time-error summary, in percent.
    pub trans: Summary,
    /// Total stored table entries.
    pub entries: usize,
}

/// Validates NAND gates of fan-in 2..=`max_n` over `configs` random
/// scenarios each.
///
/// # Errors
///
/// Returns [`ModelError`] if characterization or validation fails.
pub fn run(
    max_n: usize,
    configs: usize,
    opts: &CharacterizeOptions,
) -> Result<Vec<FaninRow>, ModelError> {
    let tech = Technology::demo_5v();
    let mut rows = Vec::new();
    for n in 2..=max_n {
        let cell = Cell::nand(n);
        let model = ProximityModel::characterize(&cell, &tech, opts)?;
        let report = validate(
            &model,
            &ValidateOptions {
                configs,
                dv_max: opts.dv_max * 0.6,
                ..ValidateOptions::default()
            },
        )?;
        rows.push(FaninRow {
            n,
            delay: report.delay,
            trans: report.trans,
            entries: model.table_entries(),
        });
    }
    Ok(rows)
}

/// Prints the fan-in table.
pub fn print(rows: &[FaninRow]) {
    println!(
        "\nFan-in scaling: NAND2..NAND{} on the Table 5-1 population",
        rows.last().map_or(0, |r| r.n)
    );
    println!(
        "{:>4} {:>22} {:>22} {:>10}",
        "n", "delay err (mean/sd %)", "trans err (mean/sd %)", "entries"
    );
    for r in rows {
        println!(
            "{:>4} {:>11.2} /{:>8.2} {:>11.2} /{:>8.2} {:>10}",
            r.n, r.delay.mean, r.delay.std_dev, r.trans.mean, r.trans.std_dev, r.entries
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanin_rows_stay_bounded_at_fast_fidelity() {
        let rows = run(3, 5, &CharacterizeOptions::fast()).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.delay.mean.abs() < 20.0 && r.delay.std_dev < 25.0,
                "n = {}: {:?}",
                r.n,
                r.delay
            );
        }
        // Storage grows linearly-ish with fan-in (the 2n scheme).
        assert!(rows[1].entries > rows[0].entries);
        assert!(rows[1].entries < 3 * rows[0].entries);
    }
}
