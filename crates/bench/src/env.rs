//! Shared experiment environment: technology, device under test, and the
//! characterized model, built once per process.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::{CharacterizeOptions, Simulator};
use proxim_model::{ProximityModel, Thresholds};

/// Fidelity of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Paper-scale grids (minutes of characterization).
    Full,
    /// Reduced grids for smoke runs and benches (seconds).
    Fast,
}

impl Fidelity {
    /// Characterization options for this fidelity.
    pub fn options(self) -> CharacterizeOptions {
        match self {
            Self::Full => CharacterizeOptions {
                glitch: true,
                ..CharacterizeOptions::default()
            },
            Self::Fast => CharacterizeOptions {
                glitch: true,
                ..CharacterizeOptions::fast()
            },
        }
    }
}

/// The standard experiment environment: the paper's 3-input NAND in the
/// demo technology, with its characterized proximity model.
#[derive(Debug)]
pub struct ExperimentEnv {
    /// The process technology.
    pub tech: Technology,
    /// The device under test (3-input NAND, Figure 1-1 of the paper).
    pub cell: Cell,
    /// The characterized model.
    pub model: ProximityModel,
    /// Run fidelity.
    pub fidelity: Fidelity,
}

impl ExperimentEnv {
    /// Characterizes the standard environment.
    ///
    /// # Panics
    ///
    /// Panics if characterization fails (the demo technology is known-good,
    /// so a failure indicates a build problem worth surfacing loudly).
    pub fn new(fidelity: Fidelity) -> Self {
        let tech = Technology::demo_5v();
        let cell = Cell::nand(3);
        let model = ProximityModel::characterize(&cell, &tech, &fidelity.options())
            .expect("characterizing the reference NAND3 must succeed");
        Self {
            tech,
            cell,
            model,
            fidelity,
        }
    }

    /// The measurement thresholds the model selected.
    pub fn thresholds(&self) -> Thresholds {
        *self.model.thresholds()
    }

    /// A validation simulator bound to the model's reference load, with a
    /// tighter accuracy knob than characterization (it plays the role of
    /// the paper's HSPICE golden runs).
    pub fn reference_simulator(&self) -> Simulator<'_> {
        Simulator::new(
            &self.cell,
            &self.tech,
            *self.model.thresholds(),
            self.model.reference_load(),
            (self.model.dv_max() * 0.6).max(0.02),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_env_builds() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        assert_eq!(env.cell.input_count(), 3);
        let th = env.thresholds();
        assert!(th.v_il < th.v_ih);
    }

    #[test]
    fn fidelity_options_differ() {
        assert!(Fidelity::Full.options().tau_grid.len() > Fidelity::Fast.options().tau_grid.len());
    }
}
