//! Whole-path validation: the gate-by-gate timing engine against a flat
//! transistor-level simulation of the entire netlist.
//!
//! This is the end-to-end test of the paper's program: if proximity-aware
//! gate models compose correctly along reconvergent paths, the STA arrival
//! times should track a golden simulation of the full circuit — and the
//! classic single-input mode should show its bias.

use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::{ModelError, ProximityModel};
use proxim_numeric::pwl::Edge;
use proxim_numeric::Summary;
use proxim_spice::tran::TranOptions;
use proxim_sta::circuits::{full_adder, ripple_carry_adder};
use proxim_sta::elaborate::elaborate_flat;
use proxim_sta::timing::{DelayMode, PiAssignment, Sta};
use proxim_sta::{GateNetlist, NetId, TimingLibrary};

/// One compared primary-output arrival.
#[derive(Debug, Clone)]
pub struct PathRow {
    /// Scenario label.
    pub scenario: String,
    /// Output net name.
    pub output: String,
    /// Golden flat-simulation arrival, in seconds.
    pub flat: f64,
    /// Proximity-STA arrival, in seconds.
    pub proximity: f64,
    /// Single-input-STA arrival, in seconds.
    pub single: f64,
}

impl PathRow {
    /// Proximity-mode arrival error, percent of the flat arrival's delay
    /// from the earliest PI ramp (time-zero referenced).
    pub fn prox_err_pct(&self) -> f64 {
        (self.proximity - self.flat) / self.flat * 100.0
    }

    /// Single-input-mode arrival error.
    pub fn single_err_pct(&self) -> f64 {
        (self.single - self.flat) / self.flat * 100.0
    }
}

/// The validation result.
#[derive(Debug, Clone)]
pub struct PathValidation {
    /// Per-output rows.
    pub rows: Vec<PathRow>,
    /// Proximity-mode error summary, in percent.
    pub proximity: Summary,
    /// Single-input-mode error summary, in percent.
    pub single: Summary,
}

struct ScenarioSpec {
    label: &'static str,
    netlist: GateNetlist,
    assignments: Vec<PiAssignment>,
    outputs: Vec<NetId>,
}

fn scenarios(nand2: proxim_sta::CellId) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();

    // 1. Full adder, single switching input with reconvergent fanout.
    {
        let (nl, ins, outs) = full_adder(nand2);
        out.push(ScenarioSpec {
            label: "fa: a rises (reconvergent)",
            assignments: vec![
                PiAssignment::switching(ins[0], Edge::Rising, 0.3e-9, 300e-12),
                PiAssignment::stable(ins[1], false),
                PiAssignment::stable(ins[2], true),
            ],
            outputs: outs,
            netlist: nl,
        });
    }

    // 2. Full adder, two proximal rising inputs.
    {
        let (nl, ins, outs) = full_adder(nand2);
        out.push(ScenarioSpec {
            label: "fa: a,b rise 50 ps apart",
            assignments: vec![
                PiAssignment::switching(ins[0], Edge::Rising, 0.3e-9, 300e-12),
                PiAssignment::switching(ins[1], Edge::Rising, 0.35e-9, 300e-12),
                PiAssignment::stable(ins[2], false),
            ],
            outputs: outs,
            netlist: nl,
        });
    }

    // 3. 2-bit ripple carry: generate + propagate chain.
    {
        let bits = 2;
        let (nl, ins, outs) = ripple_carry_adder(nand2, bits);
        let mut assignments = Vec::new();
        for (k, &net) in ins.iter().enumerate() {
            if k == 0 {
                assignments.push(PiAssignment::switching(net, Edge::Rising, 0.3e-9, 300e-12));
            } else if k <= bits {
                assignments.push(PiAssignment::stable(net, true));
            } else {
                assignments.push(PiAssignment::stable(net, false));
            }
        }
        out.push(ScenarioSpec {
            label: "rca2: carry ripple",
            assignments,
            outputs: outs,
            netlist: nl,
        });
    }
    out
}

/// Runs the path validation with the given characterization options.
///
/// # Errors
///
/// Returns [`ModelError`] on characterization, timing, or simulation
/// failure.
pub fn run(opts: &CharacterizeOptions) -> Result<PathValidation, ModelError> {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    // Characterize the library at a fanout-representative load: inside a
    // netlist every net carries one or two gate inputs, not the default
    // 100 fF bench load (the paper's dimensionless form holds at a fixed
    // load, so the library should be built near the loads it will see).
    let opts = CharacterizeOptions {
        c_load: 2.0 * cell.input_cap(&tech),
        ..opts.clone()
    };
    let model = ProximityModel::characterize(&cell, &tech, &opts)?;
    let th = *model.thresholds();
    let mut library = TimingLibrary::new();
    let nand2 = library.add(model);

    let mut rows = Vec::new();
    for spec in scenarios(nand2) {
        let sta = Sta::new(&library, &spec.netlist);
        let prox = sta
            .run(&spec.assignments, DelayMode::Proximity)
            .map_err(|e| ModelError::InvalidQuery {
                detail: e.to_string(),
            })?;
        let single = sta
            .run(&spec.assignments, DelayMode::SingleInput)
            .map_err(|e| ModelError::InvalidQuery {
                detail: e.to_string(),
            })?;

        // Golden: flatten and simulate the whole netlist.
        let mut flat =
            elaborate_flat(&spec.netlist, &library, &tech, opts.c_load).map_err(|e| {
                ModelError::InvalidQuery {
                    detail: e.to_string(),
                }
            })?;
        flat.apply_assignments(&spec.assignments);
        let t_stop = prox
            .critical_arrival()
            .map(|(_, t)| 3.0 * t)
            .unwrap_or(5e-9)
            .max(8e-9);
        let result = flat
            .circuit
            .tran(&TranOptions::to(t_stop).with_dv_max(0.03))?;

        for &po in &spec.outputs {
            let (Some(pe), Some(se)) = (prox.net_event(po), single.net_event(po)) else {
                continue;
            };
            let w = result.waveform(flat.net_nodes[po.index()]);
            let Some(t_flat) = w.first_crossing(th.threshold_for(pe.edge), pe.edge) else {
                continue;
            };
            rows.push(PathRow {
                scenario: spec.label.to_string(),
                output: spec.netlist.net_name(po).to_string(),
                flat: t_flat,
                proximity: pe.arrival,
                single: se.arrival,
            });
        }
    }

    if rows.is_empty() {
        return Err(ModelError::InvalidQuery {
            detail: "no comparable output transitions".into(),
        });
    }
    let proximity = Summary::of(&rows.iter().map(PathRow::prox_err_pct).collect::<Vec<_>>());
    let single = Summary::of(&rows.iter().map(PathRow::single_err_pct).collect::<Vec<_>>());
    Ok(PathValidation {
        rows,
        proximity,
        single,
    })
}

/// Prints the validation.
pub fn print(v: &PathValidation) {
    println!("\nPath validation: STA arrivals vs flat transistor-level simulation");
    println!(
        "{:>28} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "scenario/output", "flat [ps]", "prox [ps]", "err %", "single", "err %"
    );
    for r in &v.rows {
        println!(
            "{:>28} {:>10.1} {:>10.1} {:>8.2} {:>10.1} {:>8.2}",
            format!("{}/{}", r.scenario, r.output),
            r.flat * 1e12,
            r.proximity * 1e12,
            r.prox_err_pct(),
            r.single * 1e12,
            r.single_err_pct()
        );
    }
    println!(
        "summary: proximity mean {:.2}% sd {:.2}%; single-input mean {:.2}% sd {:.2}%",
        v.proximity.mean, v.proximity.std_dev, v.single.mean, v.single.std_dev
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sta_tracks_flat_simulation() {
        let v = run(&CharacterizeOptions::fast()).unwrap();
        assert!(v.rows.len() >= 3, "rows: {}", v.rows.len());
        // Arrival errors stay in a sane band even at fast fidelity. The STA
        // abstraction (single transition per net, threshold re-referencing
        // between stages) adds error on top of the gate model's.
        assert!(
            v.proximity.mean.abs() < 20.0 && v.proximity.std_dev < 20.0,
            "proximity {:?}",
            v.proximity
        );
        for r in &v.rows {
            assert!(r.flat > 0.0 && r.proximity > 0.0 && r.single > 0.0);
        }
    }
}
