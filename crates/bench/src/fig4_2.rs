//! Figure 4-2: storage complexity of the modeling options — the full
//! `(2n−1)`-argument model, the per-pair dual-input matrix, and the paper's
//! `2n`-macromodel scheme — plus the entries the characterized model
//! actually stores.

use proxim_model::algorithm::{storage_entries, StorageScheme};
use proxim_model::ProximityModel;

/// One row of the storage table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Gate fan-in.
    pub n: usize,
    /// Entries under the direct full model.
    pub full: u128,
    /// Entries under the pair matrix.
    pub pair_matrix: u128,
    /// Entries under the paper's scheme.
    pub paper: u128,
}

/// Computes the table for fan-ins `1..=max_n` with the given per-axis grid
/// sizes.
pub fn run(max_n: usize, grid1: usize, grid3: usize) -> Vec<Row> {
    (1..=max_n)
        .map(|n| Row {
            n,
            full: storage_entries(n, grid1, grid3, StorageScheme::Full),
            pair_matrix: storage_entries(n, grid1, grid3, StorageScheme::PairMatrix),
            paper: storage_entries(n, grid1, grid3, StorageScheme::Paper),
        })
        .collect()
}

/// Prints the table, optionally annotating with a real model's footprint.
pub fn print(rows: &[Row], actual: Option<&ProximityModel>) {
    println!("\nFig 4-2: storage (table entries per modeled quantity)");
    println!(
        "{:>4} {:>24} {:>16} {:>12}",
        "n", "full (4.1)", "pair matrix", "paper (2n)"
    );
    for r in rows {
        println!(
            "{:>4} {:>24} {:>16} {:>12}",
            r.n, r.full, r.pair_matrix, r.paper
        );
    }
    if let Some(m) = actual {
        println!(
            "characterized NAND{} model stores {} entries total (delay + transition + glitch)",
            m.cell().input_count(),
            m.table_entries()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scheme_is_linear_and_full_is_exponential() {
        let rows = run(8, 8, 8);
        assert_eq!(rows.len(), 8);
        // Paper scheme doubles when n doubles.
        assert_eq!(rows[7].paper, 2 * rows[3].paper);
        // Full model explodes: n=8 has 8 * 8^15 entries.
        assert_eq!(rows[7].full, 8 * 8u128.pow(15));
        // Ordering for n >= 3: full > matrix > paper.
        for r in &rows[2..] {
            assert!(
                r.full > r.pair_matrix && r.pair_matrix > r.paper,
                "n = {}",
                r.n
            );
        }
    }
}
