//! Prior-art comparison (§1 of the paper): the proximity model versus the
//! classic single-switching-input assumption and the collapse-to-inverter
//! reduction, evaluated on the Table 5-1 population.

use crate::env::ExperimentEnv;
use crate::table5_1::{events_for, population};
use proxim_model::baseline::{single_switching_timing, CollapsedInverter};
use proxim_model::ModelError;
use proxim_numeric::Summary;

/// Error summaries per method.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Delay error summary of the proximity model, in percent.
    pub proximity: Summary,
    /// Delay error summary of the single-switching-input model.
    pub single_input: Summary,
    /// Delay error summary of the collapsed-inverter model.
    pub collapsed: Summary,
}

/// Runs all three methods over the shared random population.
///
/// All delays are compared against simulation *relative to the proximity
/// model's reference pin*, so the three methods answer the same question:
/// when does the output arrive, given the dominant input's arrival.
///
/// # Errors
///
/// Returns [`ModelError`] if any simulation or model query fails.
pub fn run(env: &ExperimentEnv, count: usize, seed: u64) -> Result<BaselineComparison, ModelError> {
    let sim = env.reference_simulator();
    let th = env.thresholds();
    let mut collapsed_baseline = CollapsedInverter::new(
        env.tech.clone(),
        env.model.reference_load(),
        env.model.dv_max(),
        env.fidelity.options().tau_grid,
    );

    let mut prox_errs = Vec::with_capacity(count);
    let mut single_errs = Vec::with_capacity(count);
    let mut collapsed_errs = Vec::with_capacity(count);

    for cfg in population(count, seed) {
        let events = events_for(env, &cfg);

        let prox = env.model.gate_timing(&events)?;
        let single = single_switching_timing(&env.model, &events)?;
        let coll = collapsed_baseline.timing(&env.cell, th, &events)?;

        let r = sim.simulate(&events)?;
        // Golden: the absolute output arrival measured against each
        // method's own reference pin, compared as arrival error relative to
        // the simulated delay from the proximity reference.
        let k_prox = events
            .iter()
            .position(|e| e.pin == prox.reference_pin)
            .expect("pin");
        let delay_sim = r.delay_from(k_prox, &th)?;
        let arrival_sim = events[k_prox].arrival(&th) + delay_sim;

        let pct = |arrival_model: f64| (arrival_model - arrival_sim) / delay_sim * 100.0;
        prox_errs.push(pct(prox.output_arrival));
        single_errs.push(pct(single.output_arrival));
        collapsed_errs.push(pct(coll.output_arrival));
    }

    Ok(BaselineComparison {
        proximity: Summary::of(&prox_errs),
        single_input: Summary::of(&single_errs),
        collapsed: Summary::of(&collapsed_errs),
    })
}

/// Prints the comparison.
pub fn print(c: &BaselineComparison) {
    println!("\nBaseline comparison: output-arrival error vs simulation [% of delay]");
    println!(
        "{:>20} {:>10} {:>10} {:>10} {:>10}",
        "method", "mean", "std-dev", "max", "min"
    );
    for (name, s) in [
        ("proximity (paper)", &c.proximity),
        ("single-input", &c.single_input),
        ("collapsed inverter", &c.collapsed),
    ] {
        println!(
            "{:>20} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name, s.mean, s.std_dev, s.max, s.min
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ExperimentEnv, Fidelity};

    #[test]
    fn proximity_beats_baselines_on_spread() {
        let env = ExperimentEnv::new(Fidelity::Fast);
        let c = run(&env, 8, 11).unwrap();
        let spread = |s: &Summary| s.std_dev + s.mean.abs();
        // The paper's claim: the proximity model is more accurate than both
        // prior-art approaches on proximity-heavy populations.
        assert!(
            spread(&c.proximity) < spread(&c.single_input),
            "proximity {:?} vs single {:?}",
            c.proximity,
            c.single_input
        );
        assert!(
            spread(&c.proximity) < spread(&c.collapsed),
            "proximity {:?} vs collapsed {:?}",
            c.proximity,
            c.collapsed
        );
    }
}
