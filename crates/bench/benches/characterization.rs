//! Characterization cost: what building the macromodel tables takes.

use criterion::{criterion_group, criterion_main, Criterion};
use proxim_cells::{Cell, Technology};
use proxim_model::characterize::Simulator;
use proxim_model::single::SingleInputModel;
use proxim_model::thresholds::{extract_vtc_family, Thresholds};
use proxim_numeric::pwl::Edge;
use std::hint::black_box;

fn bench_vtc_family(c: &mut Criterion) {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    c.bench_function("vtc_family_nand2_61pts", |b| {
        b.iter(|| {
            let fam = extract_vtc_family(&cell, &tech, 100e-15, 61).expect("extraction succeeds");
            black_box(fam.thresholds().v_il)
        })
    });
}

fn bench_single_input_model(c: &mut Criterion) {
    let tech = Technology::demo_5v();
    let cell = Cell::nand(2);
    let th = Thresholds::new(1.2, 3.4, 5.0);
    let sim = Simulator::new(&cell, &tech, th, 100e-15, 0.1);
    let grid = [150e-12, 600e-12, 1800e-12];
    c.bench_function("single_input_model_3pt", |b| {
        b.iter(|| {
            let m = SingleInputModel::characterize(&sim, 0, Edge::Rising, &grid)
                .expect("characterization succeeds");
            black_box(m.delay(400e-12, 100e-15))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vtc_family, bench_single_input_model
);
criterion_main!(benches);
