//! Netlist timing cost under the proximity model versus classic STA.

use criterion::{criterion_group, criterion_main, Criterion};
use proxim_bench::env::{ExperimentEnv, Fidelity};
use proxim_cells::{Cell, Technology};
use proxim_model::characterize::CharacterizeOptions;
use proxim_model::ProximityModel;
use proxim_numeric::pwl::Edge;
use proxim_sta::circuits::ripple_carry_adder;
use proxim_sta::timing::{DelayMode, PiAssignment, Sta};
use proxim_sta::TimingLibrary;
use std::hint::black_box;
use std::sync::OnceLock;

fn library() -> &'static (TimingLibrary, proxim_sta::CellId) {
    static LIB: OnceLock<(TimingLibrary, proxim_sta::CellId)> = OnceLock::new();
    LIB.get_or_init(|| {
        let tech = Technology::demo_5v();
        let model =
            ProximityModel::characterize(&Cell::nand(2), &tech, &CharacterizeOptions::fast())
                .expect("characterization succeeds");
        let mut lib = TimingLibrary::new();
        let id = lib.add(model);
        (lib, id)
    })
}

fn ripple_assignments(ins: &[proxim_sta::NetId], bits: usize) -> Vec<PiAssignment> {
    let mut assignments = Vec::new();
    for (k, &net) in ins.iter().enumerate() {
        if k == 0 {
            assignments.push(PiAssignment::switching(net, Edge::Rising, 0.0, 300e-12));
        } else if k <= bits {
            assignments.push(PiAssignment::stable(net, true));
        } else {
            assignments.push(PiAssignment::stable(net, false));
        }
    }
    assignments
}

fn bench_sta_modes(c: &mut Criterion) {
    let (lib, nand2) = library();
    let bits = 8;
    let (nl, ins, _) = ripple_carry_adder(*nand2, bits);
    let sta = Sta::new(lib, &nl);
    let assignments = ripple_assignments(&ins, bits);

    let mut group = c.benchmark_group("sta_adder8");
    group.bench_function("proximity", |b| {
        b.iter(|| {
            let r = sta
                .run(black_box(&assignments), DelayMode::Proximity)
                .expect("runs");
            black_box(r.critical_arrival())
        })
    });
    group.bench_function("single_input", |b| {
        b.iter(|| {
            let r = sta
                .run(black_box(&assignments), DelayMode::SingleInput)
                .expect("runs");
            black_box(r.critical_arrival())
        })
    });
    group.finish();
}

fn bench_env_smoke(c: &mut Criterion) {
    // Keeps the shared fast environment characterization measured once.
    c.bench_function("fast_env_query", |b| {
        static ENV: OnceLock<ExperimentEnv> = OnceLock::new();
        let env = ENV.get_or_init(|| ExperimentEnv::new(Fidelity::Fast));
        let events = [
            proxim_model::measure::InputEvent::new(0, Edge::Falling, 0.0, 400e-12),
            proxim_model::measure::InputEvent::new(1, Edge::Falling, 50e-12, 400e-12),
        ];
        b.iter(|| {
            black_box(
                env.model
                    .gate_timing(&events)
                    .expect("query succeeds")
                    .delay,
            )
        })
    });
}

fn bench_parse_c17(c: &mut Criterion) {
    use proxim_sta::parse::{parse_bench, C17_BENCH};
    let (_, nand2) = library();
    c.bench_function("parse_bench_c17", |b| {
        b.iter(|| {
            let p = parse_bench(black_box(C17_BENCH), |ty, fanin| {
                (ty == "NAND" && fanin == 2).then_some(*nand2)
            })
            .expect("parses");
            black_box(p.netlist.gates().len())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sta_modes, bench_env_smoke, bench_parse_c17
);
criterion_main!(benches);
