//! Simulator kernel costs: DC operating point, transient step throughput,
//! and the dense LU underneath them.

use criterion::{criterion_group, criterion_main, Criterion};
use proxim_cells::{Cell, Technology};
use proxim_numeric::linalg::Matrix;
use proxim_spice::circuit::Waveform;
use proxim_spice::tran::TranOptions;
use std::hint::black_box;

fn nand3_netlist() -> (proxim_cells::CellNetlist, Technology) {
    let tech = Technology::demo_5v();
    let net = Cell::nand(3).netlist(&tech, 100e-15);
    (net, tech)
}

fn bench_dc_op(c: &mut Criterion) {
    let (mut net, tech) = nand3_netlist();
    for pin in 0..3 {
        net.set_level(pin, true);
    }
    let _ = tech;
    c.bench_function("nand3_dc_op", |b| {
        b.iter(|| black_box(net.circuit.dc_op().expect("converges").voltages()[1]))
    });
}

fn bench_transient(c: &mut Criterion) {
    let (mut net, tech) = nand3_netlist();
    net.set_level(1, true);
    net.set_level(2, true);
    net.set_waveform(0, Waveform::ramp(0.3e-9, 0.5e-9, 0.0, tech.vdd));
    c.bench_function("nand3_transient_5ns", |b| {
        b.iter(|| {
            let r = net.circuit.tran(&TranOptions::to(5e-9)).expect("converges");
            black_box(r.accepted_steps)
        })
    });
}

fn bench_lu(c: &mut Criterion) {
    // The MNA system size of the NAND3 plus sources.
    let n = 12;
    let mut a = Matrix::zeros(n, n);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = next();
        }
        a[(i, i)] += n as f64;
    }
    let b_vec: Vec<f64> = (0..n).map(|_| next()).collect();
    c.bench_function("dense_lu_solve_12", |b| {
        b.iter(|| {
            let lu = a.lu().expect("well conditioned");
            black_box(lu.solve(black_box(&b_vec)))
        })
    });
}

fn bench_vtc_sweep(c: &mut Criterion) {
    let tech = Technology::demo_5v();
    let mut net = Cell::nand(2).netlist(&tech, 100e-15);
    net.set_level(1, true);
    c.bench_function("nand2_vtc_sweep_51", |b| {
        b.iter(|| {
            let sw = net
                .circuit
                .dc_sweep("Va", 0.0, tech.vdd, 51)
                .expect("sweep converges");
            black_box(sw.len())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dc_op, bench_transient, bench_lu, bench_vtc_sweep
);
criterion_main!(benches);
