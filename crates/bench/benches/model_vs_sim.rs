//! The macromodeling speed claim: evaluating the characterized proximity
//! model versus running a full transient simulation of the same scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use proxim_bench::env::{ExperimentEnv, Fidelity};
use proxim_model::measure::InputEvent;
use proxim_numeric::pwl::Edge;
use std::hint::black_box;
use std::sync::OnceLock;

fn env() -> &'static ExperimentEnv {
    static ENV: OnceLock<ExperimentEnv> = OnceLock::new();
    ENV.get_or_init(|| ExperimentEnv::new(Fidelity::Fast))
}

fn scenario() -> [InputEvent; 3] {
    [
        InputEvent::new(0, Edge::Falling, 0.0, 500e-12),
        InputEvent::new(1, Edge::Falling, 120e-12, 300e-12),
        InputEvent::new(2, Edge::Falling, -80e-12, 900e-12),
    ]
}

fn bench_model_query(c: &mut Criterion) {
    let env = env();
    let events = scenario();
    c.bench_function("proximity_model_query", |b| {
        b.iter(|| {
            let t = env
                .model
                .gate_timing(black_box(&events))
                .expect("query succeeds");
            black_box(t.delay)
        })
    });
}

fn bench_full_transient(c: &mut Criterion) {
    let env = env();
    let events = scenario();
    let sim = env.reference_simulator();
    let th = env.thresholds();
    c.bench_function("full_transient_reference", |b| {
        b.iter(|| {
            let r = sim.simulate(black_box(&events)).expect("sim succeeds");
            black_box(r.delay_from(0, &th).expect("crossing exists"))
        })
    });
}

fn bench_baseline_query(c: &mut Criterion) {
    let env = env();
    let events = scenario();
    c.bench_function("single_input_baseline_query", |b| {
        b.iter(|| {
            let t = proxim_model::baseline::single_switching_timing(&env.model, black_box(&events))
                .expect("query succeeds");
            black_box(t.delay)
        })
    });
}

fn bench_persist_roundtrip(c: &mut Criterion) {
    let env = env();
    let json = env.model.to_json().expect("serializes");
    c.bench_function("model_to_json", |b| {
        b.iter(|| black_box(env.model.to_json().expect("serializes").len()))
    });
    c.bench_function("model_from_json", |b| {
        b.iter(|| {
            let m = proxim_model::ProximityModel::from_json(black_box(&json)).expect("parses");
            black_box(m.table_entries())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_model_query, bench_full_transient, bench_baseline_query,
        bench_persist_roundtrip
);
criterion_main!(benches);
