//! One benchmark per experiment id: the cost of regenerating each figure
//! and table at minimal sweep sizes (the data path, not the full grids).

use criterion::{criterion_group, criterion_main, Criterion};
use proxim_bench::env::{ExperimentEnv, Fidelity};
use proxim_bench::{fig1_2, fig2_1, fig3_3, fig4_2, fig6_1, table5_1};
use std::hint::black_box;
use std::sync::OnceLock;

fn env() -> &'static ExperimentEnv {
    static ENV: OnceLock<ExperimentEnv> = OnceLock::new();
    ENV.get_or_init(|| ExperimentEnv::new(Fidelity::Fast))
}

fn bench_fig1_2(c: &mut Criterion) {
    let env = env();
    c.bench_function("fig1_2_3pts", |b| {
        b.iter(|| black_box(fig1_2::run(env, 3).expect("runs").falling.len()))
    });
}

fn bench_fig2_1(c: &mut Criterion) {
    let env = env();
    c.bench_function("fig2_1_vtc_family_41pts", |b| {
        b.iter(|| {
            let fam =
                fig2_1::run(&env.cell, &env.tech, env.model.reference_load(), 41).expect("runs");
            black_box(fam.curves().len())
        })
    });
}

fn bench_fig3_3(c: &mut Criterion) {
    let env = env();
    c.bench_function("fig3_3_3pts", |b| {
        b.iter(|| black_box(fig3_3::run(env, 3).expect("runs").len()))
    });
}

fn bench_fig4_2(c: &mut Criterion) {
    c.bench_function("fig4_2_storage_table", |b| {
        b.iter(|| black_box(fig4_2::run(8, 8, 8).len()))
    });
}

fn bench_table5_1(c: &mut Criterion) {
    let env = env();
    c.bench_function("table5_1_2cfg", |b| {
        b.iter(|| black_box(table5_1::run(env, 2, 5).expect("runs").delay.mean))
    });
}

fn bench_fig6_1(c: &mut Criterion) {
    let env = env();
    c.bench_function("fig6_1_3pts", |b| {
        b.iter(|| black_box(fig6_1::run(env, 3).expect("runs").len()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_2,
        bench_fig2_1,
        bench_fig3_3,
        bench_fig4_2,
        bench_table5_1,
        bench_fig6_1
);
criterion_main!(benches);
