//! Vendored offline stand-in for the `criterion` benchmark harness.
//!
//! The real criterion cannot be fetched in this offline build environment
//! (see EXPERIMENTS.md). This shim keeps the workspace's bench sources
//! compiling and runnable — `criterion_group!`/`criterion_main!`,
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`
//! — and reports a simple mean/min per benchmark instead of criterion's
//! full statistical analysis.

use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// The benchmark driver. Holds the per-group configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut b);
        let mut per_iter: Vec<f64> = b
            .samples
            .iter()
            .filter(|(_, iters)| *iters > 0)
            .map(|(t, iters)| t.as_secs_f64() / *iters as f64)
            .collect();
        if per_iter.is_empty() {
            println!("{id:<40} no samples collected");
            return self;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<40} min {:>12}  mean {:>12}  ({} samples)",
            format_time(min),
            format_time(mean),
            per_iter.len()
        );
        self
    }

    /// Opens a named benchmark group; member ids print as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks (criterion's grouping API).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one member benchmark under the group's name.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group. The real criterion finalizes reports here; the shim
    /// has nothing to flush.
    pub fn finish(self) {}
}

/// Collects timed samples of a closure.
pub struct Bencher {
    /// (elapsed, iterations) per sample.
    samples: Vec<(Duration, u64)>,
    budget: usize,
}

impl Bencher {
    /// Times `f`, calling it enough times per sample to out-resolve the
    /// clock, for the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that runs at
        // least ~1 ms so short closures are measurable.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.budget {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(f());
            }
            self.samples.push((start.elapsed(), iters_per_sample));
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two invocation forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
