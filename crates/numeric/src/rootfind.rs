//! Bracketing root finders.
//!
//! Used throughout the suite to refine threshold crossings on simulated
//! waveforms and to locate the unity-gain (`dVout/dVin = -1`) points and the
//! switching threshold `V_m` on voltage-transfer curves.

use std::fmt;

/// The error returned when a root finder is given an invalid bracket or
/// fails to converge.
#[derive(Debug, Clone, PartialEq)]
pub enum RootFindError {
    /// `f(a)` and `f(b)` have the same sign, so no root is bracketed.
    NoBracket {
        /// `f` at the left end of the candidate bracket.
        fa: f64,
        /// `f` at the right end of the candidate bracket.
        fb: f64,
    },
    /// The iteration limit was reached before the tolerance was met.
    NoConvergence {
        /// The best estimate when iteration stopped.
        best: f64,
    },
}

impl fmt::Display for RootFindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoBracket { fa, fb } => {
                write!(
                    f,
                    "no sign change in bracket: f(a) = {fa:.3e}, f(b) = {fb:.3e}"
                )
            }
            Self::NoConvergence { best } => {
                write!(
                    f,
                    "root finder failed to converge (best estimate {best:.6e})"
                )
            }
        }
    }
}

impl std::error::Error for RootFindError {}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// Robust but linearly convergent; used as the fallback when Brent's method
/// is not warranted.
///
/// # Errors
///
/// Returns [`RootFindError::NoBracket`] if `f(a)` and `f(b)` have the same
/// strict sign.
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    mut a: f64,
    mut b: f64,
    xtol: f64,
) -> Result<f64, RootFindError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootFindError::NoBracket { fa, fb });
    }
    // 200 halvings shrink any f64 interval below resolution.
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        if (b - a).abs() <= xtol {
            return Ok(m);
        }
        let fm = f(m);
        if fm == 0.0 {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Ok(0.5 * (a + b))
}

/// Finds a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation guarded by bisection).
///
/// # Errors
///
/// Returns [`RootFindError::NoBracket`] if the bracket is invalid, or
/// [`RootFindError::NoConvergence`] after 100 iterations.
pub fn brent(
    mut f: impl FnMut(f64) -> f64,
    a0: f64,
    b0: f64,
    xtol: f64,
) -> Result<f64, RootFindError> {
    let (mut a, mut b) = (a0, b0);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootFindError::NoBracket { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..100 {
        if fb == 0.0 || (b - a).abs() < xtol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let within = (lo.min(b)..=lo.max(b)).contains(&s);
        let step_ok = if mflag {
            (s - b).abs() < 0.5 * (b - c).abs()
        } else {
            (s - b).abs() < 0.5 * d.abs()
        };
        if !within || !step_ok {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c - b;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootFindError::NoConvergence { best: b })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_linear() {
        let r = bisect(|x| x - 1.5, 0.0, 4.0, 1e-12).unwrap();
        assert!((r - 1.5).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_no_bracket() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).unwrap_err();
        assert!(matches!(err, RootFindError::NoBracket { .. }));
    }

    #[test]
    fn brent_polynomial() {
        // x^3 - 2x - 5 has a root near 2.0945514815.
        let r = brent(|x| x * x * x - 2.0 * x - 5.0, 2.0, 3.0, 1e-14).unwrap();
        assert!((r - 2.0945514815423265).abs() < 1e-9, "{r}");
    }

    #[test]
    fn brent_transcendental() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.7390851332151607).abs() < 1e-9);
    }

    #[test]
    fn brent_steep_function() {
        // Steep exponential: tests the interpolation guards.
        let r = brent(|x| (20.0 * x).exp() - 1000.0, 0.0, 1.0, 1e-13).unwrap();
        assert!((r - 1000f64.ln() / 20.0).abs() < 1e-9);
    }

    #[test]
    fn brent_reports_missing_bracket() {
        let err = brent(|x| x * x + 1.0, -2.0, 2.0, 1e-12).unwrap_err();
        assert!(err.to_string().contains("no sign change"));
    }

    #[test]
    fn brent_matches_bisect_on_shared_problem() {
        let f = |x: f64| x.exp() - 2.0;
        let rb = brent(f, 0.0, 2.0, 1e-13).unwrap();
        let ri = bisect(f, 0.0, 2.0, 1e-13).unwrap();
        assert!((rb - ri).abs() < 1e-10);
        assert!((rb - std::f64::consts::LN_2).abs() < 1e-10);
    }
}
