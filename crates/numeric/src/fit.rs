//! Linear least-squares fitting.
//!
//! The paper remarks that "closed form analytical forms for these
//! macromodels do exist" (§3). [`polyfit`] and [`lstsq`] provide the
//! machinery to fit such forms to characterization data; the analytic
//! macromodel backend in `proxim-model` builds on them.

use crate::linalg::Matrix;
use std::fmt;

/// The error returned when a fit is under-determined or singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitError {
    what: String,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "least-squares fit failed: {}", self.what)
    }
}

impl std::error::Error for FitError {}

/// Solves the linear least-squares problem `min ||A x - b||₂` through the
/// normal equations `AᵀA x = Aᵀb`.
///
/// `rows` holds the design matrix row by row; every row must have the same
/// length (the number of coefficients).
///
/// # Errors
///
/// Returns [`FitError`] if there are fewer rows than coefficients or the
/// normal matrix is singular (collinear basis functions).
pub fn lstsq(rows: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, FitError> {
    let m = rows.len();
    if m == 0 {
        return Err(FitError {
            what: "no data points".into(),
        });
    }
    let n = rows[0].len();
    if n == 0 {
        return Err(FitError {
            what: "no basis functions".into(),
        });
    }
    if m < n {
        return Err(FitError {
            what: format!("{m} points cannot determine {n} coefficients"),
        });
    }
    if b.len() != m {
        return Err(FitError {
            what: "rhs length mismatch".into(),
        });
    }
    let mut ata = Matrix::zeros(n, n);
    let mut atb = vec![0.0; n];
    for (row, &y) in rows.iter().zip(b) {
        if row.len() != n {
            return Err(FitError {
                what: "ragged design matrix".into(),
            });
        }
        for i in 0..n {
            atb[i] += row[i] * y;
            for j in 0..n {
                ata.add(i, j, row[i] * row[j]);
            }
        }
    }
    ata.solve(&atb).map_err(|e| FitError {
        what: e.to_string(),
    })
}

/// Fits a polynomial of the given `degree` to `(x, y)` samples, returning
/// coefficients in ascending order (`c[0] + c[1] x + ...`).
///
/// # Errors
///
/// Returns [`FitError`] if there are fewer than `degree + 1` samples or the
/// abscissae are degenerate.
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Vec<f64>, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError {
            what: "xs/ys length mismatch".into(),
        });
    }
    let rows: Vec<Vec<f64>> = xs
        .iter()
        .map(|&x| {
            let mut row = Vec::with_capacity(degree + 1);
            let mut p = 1.0;
            for _ in 0..=degree {
                row.push(p);
                p *= x;
            }
            row
        })
        .collect();
    lstsq(&rows, ys)
}

/// Evaluates a polynomial with ascending coefficients at `x` (Horner).
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// The coefficient of determination `R²` of predictions against truth.
///
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
pub fn r_squared(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty sample");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = truth
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polyfit_recovers_exact_quadratic() {
        let xs: Vec<f64> = (0..10).map(|k| k as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - 3.0 * x + 0.5 * x * x).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-9);
        assert!((c[1] + 3.0).abs() < 1e-9);
        assert!((c[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn polyfit_least_squares_on_noisy_line() {
        // Symmetric noise around y = x leaves the slope at 1.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.1, 0.9, 2.1, 2.9];
        let c = polyfit(&xs, &ys, 1).unwrap();
        assert!((c[1] - 0.96).abs() < 0.05, "slope {}", c[1]);
    }

    #[test]
    fn polyval_matches_direct_evaluation() {
        let c = [1.0, -2.0, 3.0];
        for x in [-1.0, 0.0, 0.5, 2.0] {
            let direct = 1.0 - 2.0 * x + 3.0 * x * x;
            assert!((polyval(&c, x) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn lstsq_rejects_underdetermined() {
        let rows = vec![vec![1.0, 2.0]];
        assert!(lstsq(&rows, &[1.0]).is_err());
    }

    #[test]
    fn lstsq_rejects_collinear_basis() {
        let rows = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        assert!(lstsq(&rows, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn lstsq_multivariate_plane() {
        // z = 1 + 2x - y over a grid.
        let mut rows = Vec::new();
        let mut b = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let (x, y) = (i as f64, j as f64);
                rows.push(vec![1.0, x, y]);
                b.push(1.0 + 2.0 * x - y);
            }
        }
        let c = lstsq(&rows, &b).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&y, &y), 1.0);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&y, &mean_pred).abs() < 1e-12);
    }
}
