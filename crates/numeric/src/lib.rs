//! Numeric kernels for the `proxim` suite.
//!
//! This crate hosts the small, dependency-free numerical building blocks the
//! rest of the workspace is built on:
//!
//! - [`linalg`] — dense matrices and LU factorization with partial pivoting,
//!   sized for the modified-nodal-analysis systems of small transistor
//!   circuits (tens of unknowns).
//! - [`interp`] — 1-D, 2-D and 3-D interpolation tables with clamped
//!   evaluation, used for the characterized delay/transition-time macromodels.
//! - [`rootfind`] — bracketing root finders (bisection and Brent), used to
//!   pinpoint threshold crossings and unity-gain points on voltage-transfer
//!   curves.
//! - [`pwl`] — piecewise-linear waveforms: the lingua franca between the
//!   circuit simulator, the measurement layer, and the macromodels.
//! - [`stats`] — summary statistics and histograms for the experimental
//!   validation (Table 5-1 / Figure 5-1 of the paper).
//! - [`grid`] — linearly and logarithmically spaced sample grids for
//!   characterization sweeps.
//!
//! # Example
//!
//! ```
//! use proxim_numeric::pwl::Pwl;
//!
//! // A rising ramp from 0 V to 5 V between t = 1 ns and t = 2 ns.
//! let ramp = Pwl::ramp(1e-9, 1e-9, 0.0, 5.0);
//! let t_half = ramp.first_rising_crossing(2.5).expect("ramp crosses 2.5 V");
//! assert!((t_half - 1.5e-9).abs() < 1e-15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod grid;
pub mod interp;
pub mod linalg;
pub mod pwl;
pub mod rootfind;
pub mod stats;

pub use interp::{Table1d, Table2d, Table3d};
pub use linalg::{LuFactors, Matrix, SparsityPattern, SymbolicLu};
pub use pwl::Pwl;
pub use stats::{Histogram, Summary};
