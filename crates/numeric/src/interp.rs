//! Interpolation tables for characterized macromodels.
//!
//! The paper's macromodels are functions of one normalized argument (the
//! single-input model, eq. 3.7/3.8) or three normalized arguments (the
//! dual-input proximity model, eq. 3.11/3.12). Both are represented here as
//! dense tables over rectilinear grids with multilinear interpolation and
//! clamped extrapolation — the standard representation in cell
//! characterization flows.

use crate::grid::{cell_weight, locate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The error returned when a table is built from inconsistent data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildTableError {
    what: String,
}

impl BuildTableError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for BuildTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid interpolation table: {}", self.what)
    }
}

impl std::error::Error for BuildTableError {}

/// Shared bounds-and-finiteness guard behind the `set_value` methods.
fn set_checked(values: &mut [f64], idx: usize, value: f64) -> Result<(), BuildTableError> {
    if idx >= values.len() {
        return Err(BuildTableError::new(format!(
            "value index {idx} out of range for {} entries",
            values.len()
        )));
    }
    if !value.is_finite() {
        return Err(BuildTableError::new(format!(
            "replacement value at index {idx} is non-finite"
        )));
    }
    values[idx] = value;
    Ok(())
}

fn check_axis(name: &str, axis: &[f64]) -> Result<(), BuildTableError> {
    if axis.len() < 2 {
        return Err(BuildTableError::new(format!(
            "axis {name} needs >= 2 points"
        )));
    }
    if axis.iter().any(|v| !v.is_finite()) {
        return Err(BuildTableError::new(format!(
            "axis {name} contains non-finite values"
        )));
    }
    if axis.windows(2).any(|w| w[1] <= w[0]) {
        return Err(BuildTableError::new(format!(
            "axis {name} must be strictly increasing"
        )));
    }
    Ok(())
}

/// A 1-D lookup table with linear interpolation and clamped extrapolation.
///
/// # Example
///
/// ```
/// use proxim_numeric::Table1d;
///
/// let t = Table1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(t.eval(0.5), 5.0);
/// assert_eq!(t.eval(-3.0), 0.0); // clamped
/// # Ok::<(), proxim_numeric::interp::BuildTableError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1d {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Table1d {
    /// Builds a table from sample points.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] if the axis is not strictly increasing,
    /// has fewer than two points, or lengths mismatch.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, BuildTableError> {
        check_axis("x", &xs)?;
        if xs.len() != ys.len() {
            return Err(BuildTableError::new("xs and ys must have equal length"));
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(BuildTableError::new("values contain non-finite entries"));
        }
        Ok(Self { xs, ys })
    }

    /// The sample abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The sample values.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Evaluates the table at `x` with clamped linear interpolation.
    pub fn eval(&self, x: f64) -> f64 {
        let i = locate(&self.xs, x);
        let w = cell_weight(&self.xs, i, x);
        self.ys[i] * (1.0 - w) + self.ys[i + 1] * w
    }

    /// Overwrites the stored sample at `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] if `idx` is out of range or `value` is
    /// non-finite; the table is left unchanged.
    pub fn set_value(&mut self, idx: usize, value: f64) -> Result<(), BuildTableError> {
        set_checked(&mut self.ys, idx, value)
    }

    /// Re-runs the construction checks of [`Self::new`] on the current
    /// contents. Serde deserialization fills the fields directly, so a table
    /// decoded from untrusted bytes must be validated before use.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), BuildTableError> {
        Self::new(self.xs.clone(), self.ys.clone()).map(|_| ())
    }
}

/// A 2-D lookup table with bilinear interpolation and clamped extrapolation.
///
/// Used for load–slew (NLDM-style) delay surfaces, where the axes are the
/// input transition time and the output load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2d {
    ax: Vec<f64>,
    ay: Vec<f64>,
    /// Row-major: `values[ix * ay.len() + iy]`.
    values: Vec<f64>,
}

impl Table2d {
    /// Builds a table from two axes and a row-major value array of shape
    /// `(ax.len(), ay.len())`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] on non-monotone axes or a value array of
    /// the wrong size.
    pub fn new(ax: Vec<f64>, ay: Vec<f64>, values: Vec<f64>) -> Result<Self, BuildTableError> {
        check_axis("x", &ax)?;
        check_axis("y", &ay)?;
        if values.len() != ax.len() * ay.len() {
            return Err(BuildTableError::new(format!(
                "value array has {} entries, expected {}",
                values.len(),
                ax.len() * ay.len()
            )));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(BuildTableError::new("values contain non-finite entries"));
        }
        Ok(Self { ax, ay, values })
    }

    /// Builds the value array by evaluating `f` over the grid.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] on invalid axes or if `f` produces a
    /// non-finite value.
    pub fn tabulate(
        ax: Vec<f64>,
        ay: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, BuildTableError> {
        let mut values = Vec::with_capacity(ax.len() * ay.len());
        for &x in &ax {
            for &y in &ay {
                values.push(f(x, y));
            }
        }
        Self::new(ax, ay, values)
    }

    /// The first axis.
    pub fn ax(&self) -> &[f64] {
        &self.ax
    }

    /// The second axis.
    pub fn ay(&self) -> &[f64] {
        &self.ay
    }

    #[inline]
    fn at(&self, ix: usize, iy: usize) -> f64 {
        self.values[ix * self.ay.len() + iy]
    }

    /// Evaluates the table at `(x, y)` with clamped bilinear interpolation.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let ix = locate(&self.ax, x);
        let iy = locate(&self.ay, y);
        let wx = cell_weight(&self.ax, ix, x);
        let wy = cell_weight(&self.ay, iy, y);
        let c0 = self.at(ix, iy) * (1.0 - wx) + self.at(ix + 1, iy) * wx;
        let c1 = self.at(ix, iy + 1) * (1.0 - wx) + self.at(ix + 1, iy + 1) * wx;
        c0 * (1.0 - wy) + c1 * wy
    }

    /// Total number of stored samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table stores no samples (never true for a valid table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The row-major value array (`values[ix * ay.len() + iy]`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrites the stored sample at row-major index `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] if `idx` is out of range or `value` is
    /// non-finite; the table is left unchanged.
    pub fn set_value(&mut self, idx: usize, value: f64) -> Result<(), BuildTableError> {
        set_checked(&mut self.values, idx, value)
    }

    /// Re-runs the construction checks of [`Self::new`] on the current
    /// contents (see [`Table1d::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), BuildTableError> {
        Self::new(self.ax.clone(), self.ay.clone(), self.values.clone()).map(|_| ())
    }
}

/// A 3-D lookup table with trilinear interpolation and clamped extrapolation.
///
/// Axes are named after their use in the dual-input proximity model
/// (eq. 3.11): `u = tau_i / d1`, `v = tau_j / d1`, `w = s_ij / d1`, but the
/// type is agnostic to that interpretation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3d {
    ax: Vec<f64>,
    ay: Vec<f64>,
    az: Vec<f64>,
    /// Row-major: `values[(ix * ay.len() + iy) * az.len() + iz]`.
    values: Vec<f64>,
}

impl Table3d {
    /// Builds a table from three axes and a row-major value array of shape
    /// `(ax.len(), ay.len(), az.len())`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] on non-monotone axes or a value array of
    /// the wrong size.
    pub fn new(
        ax: Vec<f64>,
        ay: Vec<f64>,
        az: Vec<f64>,
        values: Vec<f64>,
    ) -> Result<Self, BuildTableError> {
        check_axis("x", &ax)?;
        check_axis("y", &ay)?;
        check_axis("z", &az)?;
        if values.len() != ax.len() * ay.len() * az.len() {
            return Err(BuildTableError::new(format!(
                "value array has {} entries, expected {}",
                values.len(),
                ax.len() * ay.len() * az.len()
            )));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(BuildTableError::new("values contain non-finite entries"));
        }
        Ok(Self { ax, ay, az, values })
    }

    /// Builds the value array by evaluating `f` over the grid.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] on invalid axes or if `f` produces a
    /// non-finite value.
    pub fn tabulate(
        ax: Vec<f64>,
        ay: Vec<f64>,
        az: Vec<f64>,
        mut f: impl FnMut(f64, f64, f64) -> f64,
    ) -> Result<Self, BuildTableError> {
        let mut values = Vec::with_capacity(ax.len() * ay.len() * az.len());
        for &x in &ax {
            for &y in &ay {
                for &z in &az {
                    values.push(f(x, y, z));
                }
            }
        }
        Self::new(ax, ay, az, values)
    }

    /// The first axis.
    pub fn ax(&self) -> &[f64] {
        &self.ax
    }

    /// The second axis.
    pub fn ay(&self) -> &[f64] {
        &self.ay
    }

    /// The third axis.
    pub fn az(&self) -> &[f64] {
        &self.az
    }

    #[inline]
    fn at(&self, ix: usize, iy: usize, iz: usize) -> f64 {
        self.values[(ix * self.ay.len() + iy) * self.az.len() + iz]
    }

    /// Evaluates the table at `(x, y, z)` with clamped trilinear
    /// interpolation.
    pub fn eval(&self, x: f64, y: f64, z: f64) -> f64 {
        let ix = locate(&self.ax, x);
        let iy = locate(&self.ay, y);
        let iz = locate(&self.az, z);
        let wx = cell_weight(&self.ax, ix, x);
        let wy = cell_weight(&self.ay, iy, y);
        let wz = cell_weight(&self.az, iz, z);

        let c00 = self.at(ix, iy, iz) * (1.0 - wx) + self.at(ix + 1, iy, iz) * wx;
        let c01 = self.at(ix, iy, iz + 1) * (1.0 - wx) + self.at(ix + 1, iy, iz + 1) * wx;
        let c10 = self.at(ix, iy + 1, iz) * (1.0 - wx) + self.at(ix + 1, iy + 1, iz) * wx;
        let c11 = self.at(ix, iy + 1, iz + 1) * (1.0 - wx) + self.at(ix + 1, iy + 1, iz + 1) * wx;

        let c0 = c00 * (1.0 - wy) + c10 * wy;
        let c1 = c01 * (1.0 - wy) + c11 * wy;
        c0 * (1.0 - wz) + c1 * wz
    }

    /// Total number of stored samples — the table's storage cost.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table stores no samples (never true for a valid table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The row-major value array
    /// (`values[(ix * ay.len() + iy) * az.len() + iz]`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrites the stored sample at row-major index `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] if `idx` is out of range or `value` is
    /// non-finite; the table is left unchanged.
    pub fn set_value(&mut self, idx: usize, value: f64) -> Result<(), BuildTableError> {
        set_checked(&mut self.values, idx, value)
    }

    /// Re-runs the construction checks of [`Self::new`] on the current
    /// contents (see [`Table1d::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`BuildTableError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), BuildTableError> {
        Self::new(
            self.ax.clone(),
            self.ay.clone(),
            self.az.clone(),
            self.values.clone(),
        )
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1d_interpolates_and_clamps() {
        let t = Table1d::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 6.0]).unwrap();
        assert_eq!(t.eval(0.5), 1.0);
        assert_eq!(t.eval(2.0), 4.0);
        assert_eq!(t.eval(-1.0), 0.0);
        assert_eq!(t.eval(10.0), 6.0);
    }

    #[test]
    fn table1d_hits_knots_exactly() {
        let t = Table1d::new(vec![0.0, 0.3, 0.9], vec![1.0, -2.0, 4.0]).unwrap();
        assert_eq!(t.eval(0.3), -2.0);
        assert_eq!(t.eval(0.9), 4.0);
    }

    #[test]
    fn table1d_rejects_bad_axes() {
        assert!(Table1d::new(vec![0.0], vec![1.0]).is_err());
        assert!(Table1d::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Table1d::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Table1d::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(Table1d::new(vec![0.0, 1.0], vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn table2d_reproduces_bilinear_function_exactly() {
        let f = |x: f64, y: f64| 3.0 * x - 2.0 * y + 1.0;
        let t = Table2d::tabulate(vec![0.0, 1.0, 2.0], vec![-1.0, 0.5, 2.0], f).unwrap();
        for &(x, y) in &[(0.3, 0.0), (1.7, 1.2), (0.0, -1.0), (2.0, 2.0)] {
            assert!((t.eval(x, y) - f(x, y)).abs() < 1e-12, "at ({x},{y})");
        }
    }

    #[test]
    fn table2d_clamps_outside_grid() {
        let t = Table2d::tabulate(vec![0.0, 1.0], vec![0.0, 1.0], |x, y| x + y).unwrap();
        assert_eq!(t.eval(-3.0, 0.5), 0.5);
        assert_eq!(t.eval(0.5, 9.0), 1.5);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn table2d_rejects_wrong_value_count() {
        let err = Table2d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]).unwrap_err();
        assert!(err.to_string().contains("expected 4"));
    }

    #[test]
    fn table3d_reproduces_trilinear_function_exactly() {
        // f(x,y,z) = 2x + 3y - z + 0.5 is multilinear, so trilinear
        // interpolation must reproduce it exactly inside the grid.
        let f = |x: f64, y: f64, z: f64| 2.0 * x + 3.0 * y - z + 0.5;
        let t = Table3d::tabulate(vec![0.0, 1.0, 2.0], vec![-1.0, 0.0, 1.0], vec![0.0, 2.0], f)
            .unwrap();
        for &(x, y, z) in &[(0.25, -0.5, 0.7), (1.9, 0.99, 1.3), (0.0, -1.0, 0.0)] {
            assert!(
                (t.eval(x, y, z) - f(x, y, z)).abs() < 1e-12,
                "at ({x},{y},{z})"
            );
        }
    }

    #[test]
    fn table3d_clamps_outside_grid() {
        let t =
            Table3d::tabulate(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0], |x, _, _| x).unwrap();
        assert_eq!(t.eval(-5.0, 0.5, 0.5), 0.0);
        assert_eq!(t.eval(5.0, 0.5, 0.5), 1.0);
    }

    #[test]
    fn table3d_rejects_wrong_value_count() {
        let err =
            Table3d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 7]).unwrap_err();
        assert!(err.to_string().contains("expected 8"));
    }

    #[test]
    fn table3d_len_reports_storage() {
        let t = Table3d::tabulate(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            |_, _, _| 0.0,
        )
        .unwrap();
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
    }

    #[test]
    fn set_value_patches_in_place_and_rejects_bad_input() {
        let mut t = Table1d::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 6.0]).unwrap();
        t.set_value(1, 4.0).unwrap();
        assert_eq!(t.eval(1.0), 4.0);
        assert!(t.set_value(3, 1.0).is_err());
        assert!(t.set_value(0, f64::NAN).is_err());
        assert_eq!(t.eval(0.0), 0.0, "failed set must leave table unchanged");

        let mut t2 = Table2d::tabulate(vec![0.0, 1.0], vec![0.0, 1.0], |x, y| x + y).unwrap();
        t2.set_value(3, -7.0).unwrap();
        assert_eq!(t2.eval(1.0, 1.0), -7.0);
        assert!(t2.set_value(4, 0.0).is_err());

        let mut t3 =
            Table3d::tabulate(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0], |_, _, _| {
                1.0
            })
            .unwrap();
        t3.set_value(0, 9.0).unwrap();
        assert_eq!(t3.eval(0.0, 0.0, 0.0), 9.0);
        assert!(t3.set_value(0, f64::INFINITY).is_err());
    }

    #[test]
    fn validate_catches_deserialized_corruption() {
        // Serde fills fields directly, so decoding can construct states
        // new() would reject; validate() must catch them after the fact.
        let good: Table1d = serde_json::from_str(r#"{"xs":[0.0,1.0],"ys":[1.0,2.0]}"#).unwrap();
        assert!(good.validate().is_ok());
        let bad_axis: Table1d = serde_json::from_str(r#"{"xs":[1.0,0.0],"ys":[1.0,2.0]}"#).unwrap();
        assert!(bad_axis.validate().is_err());
        let bad_shape: Table2d =
            serde_json::from_str(r#"{"ax":[0.0,1.0],"ay":[0.0,1.0],"values":[0.0]}"#).unwrap();
        assert!(bad_shape.validate().is_err());
        let t3 = Table3d::tabulate(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0], |_, _, _| {
            0.5
        })
        .unwrap();
        assert!(t3.validate().is_ok());
    }

    #[test]
    fn table3d_corner_values_exact() {
        let t = Table3d::tabulate(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0], |x, y, z| {
            x * 100.0 + y * 10.0 + z
        })
        .unwrap();
        assert_eq!(t.eval(1.0, 0.0, 1.0), 101.0);
        assert_eq!(t.eval(0.0, 1.0, 0.0), 10.0);
    }
}
