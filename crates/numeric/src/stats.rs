//! Summary statistics and histograms for experimental validation.
//!
//! Table 5-1 of the paper reports the mean, standard deviation, maximum and
//! minimum of the percentage error over 100 random configurations, and
//! Figure 5-1 shows the error distribution as bar charts. [`Summary`] and
//! [`Histogram`] regenerate both.

use std::fmt;

/// Mean / standard deviation / extrema of a sample, in the format of the
/// paper's Table 5-1.
///
/// # Example
///
/// ```
/// use proxim_numeric::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; 0 for `n < 2`).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of empty sample");
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "summary of non-finite sample"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n = {}, mean = {:.2}, std-dev = {:.2}, max = {:.2}, min = {:.2}",
            self.n, self.mean, self.std_dev, self.max, self.min
        )
    }
}

/// A fixed-width histogram over `[lo, hi]` with overflow/underflow tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    underflow: usize,
    overflow: usize,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            // The top edge belongs to the last bin so that `hi` itself counts.
            if x == self.hi {
                *self.counts.last_mut().expect("bins is nonzero") += 1;
            } else {
                self.overflow += 1;
            }
            return;
        }
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let i = (((x - self.lo) / w) as usize).min(bins - 1);
        self.counts[i] += 1;
    }

    /// Adds every sample from an iterator.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> usize {
        self.underflow
    }

    /// Samples above the range.
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// The `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Total number of samples, including under/overflow.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.underflow + self.overflow
    }

    /// Renders a textual bar chart in the style of Figure 5-1.
    pub fn to_bar_chart(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (a, b) = self.bin_edges(i);
            let bar = "#".repeat(c * width / peak);
            out.push_str(&format!("[{a:>7.2}, {b:>7.2}) {c:>4} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std-dev with n-1 denominator.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn summary_display_format() {
        let s = Summary::of(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("mean = 2.00"));
        assert!(text.contains("n = 2"));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 5.5, 9.99, 10.0]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 2]);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(-1.0, 1.0, 2);
        h.extend([-5.0, 0.0, 3.0, -1.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn histogram_bar_chart_renders() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend([0.5, 0.6, 1.5]);
        let chart = h.to_bar_chart(10);
        assert!(chart.lines().count() == 2);
        assert!(chart.contains("##"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_range() {
        Histogram::new(1.0, 1.0, 3);
    }
}
