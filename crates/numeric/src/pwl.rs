//! Piecewise-linear waveforms.
//!
//! [`Pwl`] is the shared waveform representation of the suite: the circuit
//! simulator consumes PWL stimulus sources and produces sampled node voltages
//! that are measured as PWL waveforms; the macromodels reason about PWL input
//! ramps exactly as the paper does ("the inputs and outputs are shown as
//! piecewise-linear", §3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The direction of a signal transition or threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Edge {
    /// The signal increases through the threshold.
    Rising,
    /// The signal decreases through the threshold.
    Falling,
}

impl Edge {
    /// The opposite edge.
    pub fn opposite(self) -> Self {
        match self {
            Self::Rising => Self::Falling,
            Self::Falling => Self::Rising,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rising => write!(f, "rising"),
            Self::Falling => write!(f, "falling"),
        }
    }
}

/// The error returned when constructing a [`Pwl`] from invalid points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildPwlError {
    what: String,
}

impl fmt::Display for BuildPwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid piecewise-linear waveform: {}", self.what)
    }
}

impl std::error::Error for BuildPwlError {}

/// A piecewise-linear waveform: a non-decreasing sequence of `(time, value)`
/// knots, held constant before the first knot and after the last.
///
/// # Example
///
/// ```
/// use proxim_numeric::Pwl;
///
/// let w = Pwl::new(vec![(0.0, 0.0), (1.0, 5.0), (2.0, 5.0)])?;
/// assert_eq!(w.eval(0.5), 2.5);
/// assert_eq!(w.eval(-1.0), 0.0);
/// assert_eq!(w.eval(9.0), 5.0);
/// # Ok::<(), proxim_numeric::pwl::BuildPwlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pwl {
    points: Vec<(f64, f64)>,
}

impl Pwl {
    /// Builds a waveform from knots.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPwlError`] if the list is empty, times are not
    /// non-decreasing, or any coordinate is non-finite.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, BuildPwlError> {
        if points.is_empty() {
            return Err(BuildPwlError {
                what: "no points".into(),
            });
        }
        if points
            .iter()
            .any(|&(t, v)| !t.is_finite() || !v.is_finite())
        {
            return Err(BuildPwlError {
                what: "non-finite coordinate".into(),
            });
        }
        if points.windows(2).any(|w| w[1].0 < w[0].0) {
            return Err(BuildPwlError {
                what: "times must be non-decreasing".into(),
            });
        }
        Ok(Self { points })
    }

    /// A constant waveform.
    pub fn constant(v: f64) -> Self {
        Self {
            points: vec![(0.0, v)],
        }
    }

    /// A single linear ramp starting at `t_start`, moving from `v_from` to
    /// `v_to` over `transition_time` seconds, flat on both sides.
    ///
    /// # Panics
    ///
    /// Panics if `transition_time` is not strictly positive.
    pub fn ramp(t_start: f64, transition_time: f64, v_from: f64, v_to: f64) -> Self {
        assert!(transition_time > 0.0, "transition time must be positive");
        Self {
            points: vec![(t_start, v_from), (t_start + transition_time, v_to)],
        }
    }

    /// Builds a waveform from already-sampled data (e.g. a transient result).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pwl::new`].
    pub fn from_samples(times: &[f64], values: &[f64]) -> Result<Self, BuildPwlError> {
        if times.len() != values.len() {
            return Err(BuildPwlError {
                what: "times/values length mismatch".into(),
            });
        }
        Self::new(times.iter().copied().zip(values.iter().copied()).collect())
    }

    /// The knot list.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The time of the first knot.
    pub fn t_start(&self) -> f64 {
        self.points[0].0
    }

    /// The time of the last knot.
    pub fn t_end(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Evaluates the waveform at `t`, holding the end values outside the
    /// knot range.
    pub fn eval(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        let n = pts.len();
        if t >= pts[n - 1].0 {
            return pts[n - 1].1;
        }
        // Binary search for the containing segment.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, v0) = pts[lo];
        let (t1, v1) = pts[hi];
        if t1 == t0 {
            return v1;
        }
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Returns the waveform shifted later in time by `dt` (negative shifts
    /// earlier). This is the "equivalent waveform" operation of eq. (4.3).
    pub fn shifted(&self, dt: f64) -> Self {
        Self {
            points: self.points.iter().map(|&(t, v)| (t + dt, v)).collect(),
        }
    }

    /// All threshold crossings, in time order, as `(time, edge)` pairs.
    ///
    /// A crossing is recorded where the waveform passes strictly through the
    /// threshold between two knots (touching without crossing is ignored).
    pub fn crossings(&self, threshold: f64) -> Vec<(f64, Edge)> {
        let mut out: Vec<(f64, Edge)> = Vec::new();
        for w in self.points.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            let below0 = v0 < threshold;
            let below1 = v1 < threshold;
            if below0 != below1 && v1 != v0 {
                let t = t0 + (threshold - v0) * (t1 - t0) / (v1 - v0);
                let edge = if v1 > v0 { Edge::Rising } else { Edge::Falling };
                // A waveform that only touches the threshold at a knot
                // produces a zero-width opposite-edge pair; drop both.
                if let Some(&(tp, ep)) = out.last() {
                    if tp == t && ep == edge.opposite() {
                        out.pop();
                        continue;
                    }
                }
                out.push((t, edge));
            }
        }
        out
    }

    /// The first time the waveform crosses `threshold` with the given edge.
    pub fn first_crossing(&self, threshold: f64, edge: Edge) -> Option<f64> {
        self.crossings(threshold)
            .into_iter()
            .find(|&(_, e)| e == edge)
            .map(|(t, _)| t)
    }

    /// The last time the waveform crosses `threshold` with the given edge.
    pub fn last_crossing(&self, threshold: f64, edge: Edge) -> Option<f64> {
        self.crossings(threshold)
            .into_iter()
            .rev()
            .find(|&(_, e)| e == edge)
            .map(|(t, _)| t)
    }

    /// Shorthand for [`Pwl::first_crossing`] with [`Edge::Rising`].
    pub fn first_rising_crossing(&self, threshold: f64) -> Option<f64> {
        self.first_crossing(threshold, Edge::Rising)
    }

    /// Shorthand for [`Pwl::first_crossing`] with [`Edge::Falling`].
    pub fn first_falling_crossing(&self, threshold: f64) -> Option<f64> {
        self.first_crossing(threshold, Edge::Falling)
    }

    /// The global minimum as `(time, value)`.
    pub fn min(&self) -> (f64, f64) {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("PWL values are finite"))
            .expect("PWL has at least one point")
    }

    /// The global maximum as `(time, value)`.
    pub fn max(&self) -> (f64, f64) {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("PWL values are finite"))
            .expect("PWL has at least one point")
    }

    /// The extremum (min for [`Edge::Falling`], max for [`Edge::Rising`])
    /// within the time window `[t0, t1]`, sampling knots and window edges.
    pub fn extremum_in(&self, t0: f64, t1: f64, edge: Edge) -> (f64, f64) {
        let mut best = (t0, self.eval(t0));
        let mut consider = |t: f64, v: f64| {
            let better = match edge {
                Edge::Rising => v > best.1,
                Edge::Falling => v < best.1,
            };
            if better {
                best = (t, v);
            }
        };
        for &(t, v) in &self.points {
            if t >= t0 && t <= t1 {
                consider(t, v);
            }
        }
        consider(t1, self.eval(t1));
        best
    }

    /// Measures the transition time between two thresholds for a transition
    /// in direction `edge`.
    ///
    /// For a rising edge this is the time from the first rising crossing of
    /// `v_lo` to the next rising crossing of `v_hi` after it; mirrored for a
    /// falling edge. Returns `None` if either crossing is absent.
    pub fn transition_time(&self, v_lo: f64, v_hi: f64, edge: Edge) -> Option<f64> {
        let (first_th, second_th) = match edge {
            Edge::Rising => (v_lo, v_hi),
            Edge::Falling => (v_hi, v_lo),
        };
        let t_first = self.first_crossing(first_th, edge)?;
        let t_second = self
            .crossings(second_th)
            .into_iter()
            .find(|&(t, e)| e == edge && t >= t_first)
            .map(|(t, _)| t)?;
        Some(t_second - t_first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_waveform() {
        let w = Pwl::constant(3.3);
        assert_eq!(w.eval(-100.0), 3.3);
        assert_eq!(w.eval(100.0), 3.3);
        assert!(w.crossings(1.0).is_empty());
    }

    #[test]
    fn ramp_evaluation() {
        let w = Pwl::ramp(1.0, 2.0, 0.0, 4.0);
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(2.0), 2.0);
        assert_eq!(w.eval(3.0), 4.0);
        assert_eq!(w.eval(10.0), 4.0);
    }

    #[test]
    fn falling_ramp_crossing() {
        let w = Pwl::ramp(0.0, 1.0, 5.0, 0.0);
        let t = w.first_falling_crossing(2.5).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!(w.first_rising_crossing(2.5).is_none());
    }

    #[test]
    fn multiple_crossings_ordered() {
        // A triangle pulse: up then down.
        let w = Pwl::new(vec![(0.0, 0.0), (1.0, 4.0), (2.0, 0.0)]).unwrap();
        let cs = w.crossings(2.0);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].1, Edge::Rising);
        assert_eq!(cs[1].1, Edge::Falling);
        assert!((cs[0].0 - 0.5).abs() < 1e-12);
        assert!((cs[1].0 - 1.5).abs() < 1e-12);
        assert_eq!(w.last_crossing(2.0, Edge::Falling), Some(cs[1].0));
    }

    #[test]
    fn touching_threshold_is_not_a_crossing() {
        let w = Pwl::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)]).unwrap();
        assert!(w.crossings(2.0).is_empty());
    }

    #[test]
    fn shift_moves_crossings() {
        let w = Pwl::ramp(0.0, 1.0, 0.0, 1.0);
        let s = w.shifted(5.0);
        let t0 = w.first_rising_crossing(0.5).unwrap();
        let t1 = s.first_rising_crossing(0.5).unwrap();
        assert!((t1 - t0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let w = Pwl::new(vec![(0.0, 1.0), (1.0, -3.0), (2.0, 7.0)]).unwrap();
        assert_eq!(w.min(), (1.0, -3.0));
        assert_eq!(w.max(), (2.0, 7.0));
    }

    #[test]
    fn extremum_in_window() {
        let w = Pwl::new(vec![(0.0, 0.0), (1.0, -5.0), (2.0, 0.0), (3.0, 9.0)]).unwrap();
        let (tmin, vmin) = w.extremum_in(0.5, 2.5, Edge::Falling);
        assert_eq!((tmin, vmin), (1.0, -5.0));
        let (_, vmax) = w.extremum_in(2.0, 3.0, Edge::Rising);
        assert_eq!(vmax, 9.0);
    }

    #[test]
    fn transition_time_rising_and_falling() {
        let w = Pwl::ramp(0.0, 10.0, 0.0, 10.0);
        let tt = w.transition_time(2.0, 8.0, Edge::Rising).unwrap();
        assert!((tt - 6.0).abs() < 1e-12);
        let f = Pwl::ramp(0.0, 10.0, 10.0, 0.0);
        let tf = f.transition_time(2.0, 8.0, Edge::Falling).unwrap();
        assert!((tf - 6.0).abs() < 1e-12);
    }

    #[test]
    fn transition_time_missing_crossing() {
        let w = Pwl::ramp(0.0, 1.0, 0.0, 5.0);
        assert!(w.transition_time(1.0, 9.0, Edge::Rising).is_none());
    }

    #[test]
    fn rejects_invalid_points() {
        assert!(Pwl::new(vec![]).is_err());
        assert!(Pwl::new(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(Pwl::new(vec![(0.0, f64::NAN)]).is_err());
        assert!(Pwl::from_samples(&[0.0, 1.0], &[0.0]).is_err());
    }

    #[test]
    fn duplicate_times_allowed_for_steps() {
        // A step encoded as two knots at the same time.
        let w = Pwl::new(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(w.eval(0.5), 0.0);
        assert_eq!(w.eval(1.5), 5.0);
    }

    #[test]
    fn edge_opposite_and_display() {
        assert_eq!(Edge::Rising.opposite(), Edge::Falling);
        assert_eq!(Edge::Falling.opposite(), Edge::Rising);
        assert_eq!(Edge::Rising.to_string(), "rising");
    }
}
