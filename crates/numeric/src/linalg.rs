//! Dense matrices and LU factorization with partial pivoting.
//!
//! The circuits in this workspace are small (a handful of transistors), so a
//! dense row-major matrix with `O(n^3)` LU is the right tool: it is simple,
//! cache-friendly at these sizes, and has no failure modes beyond genuine
//! singularity.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use proxim_numeric::linalg::Matrix;
///
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let lu = a.lu().expect("diagonal matrix is nonsingular");
/// let x = lu.solve(&[2.0, 8.0]);
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major nested slice.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "row {i} has inconsistent length");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `v` to entry `(i, j)` — the fundamental MNA "stamp" operation.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self[(i, j)] += v;
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// LU-factorizes the matrix with partial pivoting.
    ///
    /// Allocates a fresh [`LuFactors`]; in hot loops prefer [`Matrix::lu_into`],
    /// which reuses a caller-owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot smaller than `1e-300` in
    /// magnitude is encountered, i.e. the matrix is numerically singular.
    pub fn lu(&self) -> Result<LuFactors, SingularMatrixError> {
        let mut out = LuFactors::empty();
        self.lu_into(&mut out)?;
        Ok(out)
    }

    /// LU-factorizes the matrix into a caller-owned [`LuFactors`] buffer,
    /// allocating nothing once `out` has reached this matrix's size.
    ///
    /// On error `out` holds a partially eliminated factorization and must
    /// not be used for solves (the next `lu_into` overwrites it fully).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot smaller than `1e-300` in
    /// magnitude is encountered, i.e. the matrix is numerically singular.
    pub fn lu_into(&self, out: &mut LuFactors) -> Result<(), SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "LU requires a square matrix");
        let n = self.rows;
        out.n = n;
        out.sign = 1.0;
        out.lu.clear();
        out.lu.extend_from_slice(&self.data);
        out.perm.clear();
        out.perm.extend(0..n);
        let lu = &mut out.lu;

        for k in 0..n {
            // Find the pivot row.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(SingularMatrixError { pivot_index: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                out.perm.swap(k, p);
                out.sign = -out.sign;
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let f = lu[i * n + k] / pivot;
                lu[i * n + k] = f;
                if f != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= f * lu[k * n + j];
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience: factorize and solve `A x = b` in one call.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        Ok(self.lu()?.solve(b))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The error returned when LU factorization encounters a zero pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// The elimination step at which the pivot vanished.
    pub pivot_index: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at pivot {}", self.pivot_index)
    }
}

impl std::error::Error for SingularMatrixError {}

/// The structural occupancy of a square matrix: which entries *can* be
/// nonzero, independent of their values.
///
/// This is the input to the symbolic phase of the split LU
/// ([`SymbolicLu::analyze`]). Callers derive it from problem topology (for
/// MNA circuits, from the element stamps), not from a numeric matrix —
/// a cutoff transistor stamps an exact `0.0` but still occupies its slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    occ: Vec<bool>,
}

impl SparsityPattern {
    /// An empty `n x n` pattern.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            occ: vec![false; n * n],
        }
    }

    /// The matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Marks entry `(i, j)` as structurally nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    #[inline]
    pub fn mark(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "pattern index out of bounds");
        self.occ[i * self.n + j] = true;
    }

    /// Whether entry `(i, j)` is marked.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    #[inline]
    pub fn is_marked(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "pattern index out of bounds");
        self.occ[i * self.n + j]
    }

    /// Derives the pattern of a numeric matrix (nonzero entries marked).
    /// Mostly useful in tests; real callers should mark from topology.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn of_matrix(m: &Matrix) -> Self {
        assert_eq!(m.rows, m.cols, "pattern requires a square matrix");
        Self {
            n: m.rows,
            occ: m.data.iter().map(|&v| v != 0.0).collect(),
        }
    }

    /// Number of marked entries.
    pub fn nnz(&self) -> usize {
        self.occ.iter().filter(|&&b| b).count()
    }
}

/// Relative pivot-stability threshold of the static-order numeric phase:
/// the pre-chosen pivot must be at least this fraction of its column's
/// magnitude, or [`SymbolicLu::factor_into`] refuses and the caller falls
/// back to full partial pivoting. The bound limits element growth per
/// elimination step to `1/TAU`.
const STATIC_PIVOT_RTOL: f64 = 1e-3;

/// The symbolic phase of a split LU factorization: a static row order plus
/// the fill pattern and elimination schedule it induces, computed once per
/// topology and reused across every numeric refactorization.
///
/// The numeric phase ([`Self::factor_into`]) then runs with **no pivot
/// search and no structural-zero work**: for small repeatedly-factored
/// systems (a transient analysis factors the same-shaped Jacobian thousands
/// of times) this is the dominant saving. A per-column threshold check
/// guards stability; when a value pattern would make the static order
/// unstable the numeric phase declines deterministically and the caller
/// uses [`Matrix::lu_into`] for that solve.
///
/// # Example
///
/// ```
/// use proxim_numeric::linalg::{LuFactors, Matrix, SparsityPattern, SymbolicLu};
///
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let sym = SymbolicLu::analyze(&SparsityPattern::of_matrix(&a), vec![0, 1]);
/// let mut f = LuFactors::empty();
/// assert!(sym.factor_into(&a, &mut f));
/// let mut x = Vec::new();
/// sym.solve_into(&f, &[9.0, 5.0], &mut x);
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    /// `perm[k]` = original row placed at elimination position `k`.
    perm: Vec<usize>,
    /// Parity of `perm` (`±1`), the determinant sign contribution.
    sign: f64,
    /// Whether a static-order factorization is structurally possible (every
    /// pivot position is occupied after fill). When `false`,
    /// [`Self::factor_into`] always declines.
    viable: bool,
    /// Filled nonzero count (after symbolic elimination), for telemetry.
    nnz: usize,
    /// Column structure of `L`: `rows[rows_off[k]..rows_off[k+1]]` are the
    /// positions `i > k` with a filled entry in column `k`.
    rows_off: Vec<usize>,
    rows: Vec<usize>,
    /// Row structure of `U`: `cols[cols_off[k]..cols_off[k+1]]` are the
    /// columns `j > k` with a filled entry in row `k`.
    cols_off: Vec<usize>,
    cols: Vec<usize>,
}

impl SymbolicLu {
    /// Runs the symbolic phase: permutes the pattern rows by `perm` (a
    /// static pivot order chosen by the caller from problem structure),
    /// propagates fill through Gaussian elimination in natural column
    /// order, and records the elimination schedule.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..pattern.n()`.
    pub fn analyze(pattern: &SparsityPattern, perm: Vec<usize>) -> Self {
        let n = pattern.n;
        assert_eq!(perm.len(), n, "pivot order must cover every row");
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(p < n && !seen[p], "pivot order must be a permutation");
            seen[p] = true;
        }
        // Permutation parity by cycle counting.
        let mut sign = 1.0;
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut len = 0;
            let mut at = start;
            while !visited[at] {
                visited[at] = true;
                at = perm[at];
                len += 1;
            }
            if len % 2 == 0 {
                sign = -sign;
            }
        }

        // Row-permuted working pattern.
        let mut occ = vec![false; n * n];
        for k in 0..n {
            let src = perm[k] * n;
            occ[k * n..(k + 1) * n].copy_from_slice(&pattern.occ[src..src + n]);
        }

        // Symbolic elimination: entry (i, j) fills when (i, k) and (k, j)
        // are occupied for some pivot k < min(i, j).
        let mut viable = true;
        for k in 0..n {
            if !occ[k * n + k] {
                viable = false;
                break;
            }
            for i in (k + 1)..n {
                if occ[i * n + k] {
                    for j in (k + 1)..n {
                        if occ[k * n + j] {
                            occ[i * n + j] = true;
                        }
                    }
                }
            }
        }

        let mut rows_off = Vec::with_capacity(n + 1);
        let mut rows = Vec::new();
        let mut cols_off = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        rows_off.push(0);
        cols_off.push(0);
        if viable {
            for k in 0..n {
                rows.extend(((k + 1)..n).filter(|&i| occ[i * n + k]));
                rows_off.push(rows.len());
                cols.extend(((k + 1)..n).filter(|&j| occ[k * n + j]));
                cols_off.push(cols.len());
            }
        } else {
            rows_off.resize(n + 1, 0);
            cols_off.resize(n + 1, 0);
        }
        let nnz = if viable {
            occ.iter().filter(|&&b| b).count()
        } else {
            0
        };
        Self {
            n,
            perm,
            sign,
            viable,
            nnz,
            rows_off,
            rows,
            cols_off,
            cols,
        }
    }

    /// Whether a static-order factorization is structurally possible.
    pub fn is_viable(&self) -> bool {
        self.viable
    }

    /// Filled nonzeros of the factorization (0 when not viable).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fill density `nnz / n²` (1.0 for an empty system).
    pub fn fill_ratio(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.nnz as f64 / (self.n * self.n) as f64
        }
    }

    /// L-column structure below the diagonal of column `k`.
    #[inline]
    fn col_rows(&self, k: usize) -> &[usize] {
        &self.rows[self.rows_off[k]..self.rows_off[k + 1]]
    }

    /// U-row structure right of the diagonal of row `k`.
    #[inline]
    fn row_cols(&self, k: usize) -> &[usize] {
        &self.cols[self.cols_off[k]..self.cols_off[k + 1]]
    }

    /// The numeric phase: factorizes `m` into `out` following the static
    /// order and precomputed schedule — no pivot search, no work on
    /// structural zeros.
    ///
    /// Returns `true` on success. Returns `false` — leaving `out` unusable
    /// until the next factorization — when the static order is structurally
    /// impossible or a pre-chosen pivot fails the stability threshold
    /// (smaller than [`STATIC_PIVOT_RTOL`] of its column, or the whole
    /// column is numerically zero). The decision depends only on `m`'s
    /// values, so identical matrices take identical paths; callers fall
    /// back to [`Matrix::lu_into`], whose partial pivoting also owns the
    /// singularity diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `m`'s dimensions do not match the analyzed pattern.
    pub fn factor_into(&self, m: &Matrix, out: &mut LuFactors) -> bool {
        assert_eq!(m.rows, self.n, "matrix does not match the analyzed pattern");
        assert_eq!(m.cols, self.n, "matrix does not match the analyzed pattern");
        if !self.viable {
            return false;
        }
        let n = self.n;
        out.n = n;
        out.sign = self.sign;
        out.lu.clear();
        out.lu.reserve(n * n);
        for &src in &self.perm {
            out.lu.extend_from_slice(&m.data[src * n..(src + 1) * n]);
        }
        out.perm.clear();
        out.perm.extend_from_slice(&self.perm);
        let lu = &mut out.lu;

        for k in 0..n {
            let pivot = lu[k * n + k];
            let mut colmax = pivot.abs();
            for &i in self.col_rows(k) {
                colmax = colmax.max(lu[i * n + k].abs());
            }
            // NaN-safe: any comparison with NaN is false, so a poisoned
            // column declines to the partial-pivot path.
            if !(colmax >= 1e-300 && pivot.abs() >= STATIC_PIVOT_RTOL * colmax) {
                return false;
            }
            for &i in self.col_rows(k) {
                let f = lu[i * n + k] / pivot;
                lu[i * n + k] = f;
                if f != 0.0 {
                    for &j in self.row_cols(k) {
                        lu[i * n + j] -= f * lu[k * n + j];
                    }
                }
            }
        }
        true
    }

    /// Solves `A x = b` through factors produced by [`Self::factor_into`],
    /// walking only the filled entries of `L` and `U`.
    ///
    /// # Panics
    ///
    /// Panics if the factors or `b` do not match the analyzed pattern, or
    /// if `f` was not produced by this symbolic object's numeric phase.
    pub fn solve_into(&self, f: &LuFactors, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(f.n, self.n, "factors do not match the analyzed pattern");
        assert_eq!(b.len(), self.n, "dimension mismatch in solve");
        assert_eq!(
            f.perm, self.perm,
            "factors were not produced by this symbolic factorization"
        );
        let n = self.n;
        // Permutation gather, then forward-substitute column-by-column
        // through the filled entries of L.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for k in 0..n {
            let xk = x[k];
            if xk != 0.0 {
                for &i in self.col_rows(k) {
                    x[i] -= f.lu[i * n + k] * xk;
                }
            }
        }
        // Back-substitute through the filled entries of U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for &j in self.row_cols(i) {
                s -= f.lu[i * n + j] * x[j];
            }
            x[i] = s / f.lu[i * n + i];
        }
    }
}

/// The result of LU factorization: `P A = L U` stored compactly.
///
/// Obtained from [`Matrix::lu`]; reusable for multiple right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// An empty buffer for [`Matrix::lu_into`] to factor into. Holds no
    /// usable factorization until then.
    pub fn empty() -> Self {
        Self {
            n: 0,
            lu: Vec::new(),
            perm: Vec::new(),
            sign: 1.0,
        }
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// Allocates the solution vector; in hot loops prefer
    /// [`LuFactors::solve_into`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-owned vector, allocating nothing once
    /// `x` has reached the matrix dimension.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    #[allow(clippy::needless_range_loop)] // textbook substitution indexing
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "dimension mismatch in solve");
        let n = self.n;
        // Apply the permutation, then forward-substitute through L.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        // Back-substitute through U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s / self.lu[i * n + i];
        }
    }

    /// The determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = a.solve(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err.pivot_index, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn determinant_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]);
        let lu = a.lu().unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_flips_with_permutation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = a.lu().unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn factors_reusable_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [5.0, -3.0, 2.0]] {
            let x = lu.solve(&b);
            assert!(residual_norm(&a, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn lu_into_reuses_buffers_and_matches_lu() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 4.0]]);
        let fresh = a.lu().unwrap();
        let mut reused = LuFactors::empty();
        a.lu_into(&mut reused).unwrap();
        let b = [5.0, -3.0, 2.0];
        assert_eq!(fresh.solve(&b), reused.solve(&b));
        assert_eq!(fresh.det(), reused.det());

        // Refactor a different matrix into the same buffer.
        let a2 = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 2.0]]);
        a2.lu_into(&mut reused).unwrap();
        let x = reused.solve(&[2.0, 3.0, 4.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve_across_sizes() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        // Pre-fill with stale, larger content to prove it is overwritten.
        let mut x = vec![9.0; 7];
        lu.solve_into(&[3.0, 5.0], &mut x);
        assert_eq!(x.len(), 2);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_into_failure_then_success_recovers() {
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut buf = LuFactors::empty();
        assert!(singular.lu_into(&mut buf).is_err());
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        a.lu_into(&mut buf).unwrap();
        let x = buf.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 1.5);
        a.add(0, 0, 2.5);
        assert_eq!(a[(0, 0)], 4.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut a = Matrix::identity(3);
        a.clear();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 3);
        assert_eq!(a[(1, 1)], 0.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_well_conditioned_systems_solve_accurately() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                // Diagonal dominance keeps the system well conditioned.
                a[(i, i)] += n as f64;
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = a.solve(&b).unwrap();
            assert!(residual_norm(&a, &x, &b) < 1e-10, "n = {n}");
        }
    }

    /// An MNA-shaped test system: two resistive nodes plus a voltage-source
    /// constraint row whose diagonal is structurally zero. Row 2 is the
    /// constraint `v0 = V`, row 0 carries the branch current.
    fn mna_like(g0: f64, g01: f64, v: f64) -> (Matrix, Vec<f64>) {
        let a = Matrix::from_rows(&[
            &[g0 + g01, -g01, 1.0],
            &[-g01, g01 + 2e-3, 0.0],
            &[1.0, 0.0, 0.0],
        ]);
        (a, vec![0.0, 0.0, v])
    }

    #[test]
    fn symbolic_static_order_matches_dense_on_mna_shape() {
        // gmin-weak node diagonal (1e-12) against the vsource ±1 entries:
        // the natural order is numerically hopeless, but swapping the
        // branch row (2) with its node row (0) gives unit pivots.
        let (a, b) = mna_like(1e-12, 1e-3, 1.8);
        let pattern = SparsityPattern::of_matrix(&a);
        let sym = SymbolicLu::analyze(&pattern, vec![2, 1, 0]);
        assert!(sym.is_viable());
        let mut f = LuFactors::empty();
        assert!(sym.factor_into(&a, &mut f), "static order must hold");
        let mut x = Vec::new();
        sym.solve_into(&f, &b, &mut x);
        assert!(residual_norm(&a, &x, &b) < 1e-9);
        // And it must agree with the dense reference bit-for-bit when the
        // dense path happens to pick the same pivots — at minimum, to
        // solver tolerance always.
        let dense = a.solve(&b).unwrap();
        for (xs, xd) in x.iter().zip(&dense) {
            assert!((xs - xd).abs() < 1e-9);
        }
    }

    #[test]
    fn symbolic_fill_in_is_propagated() {
        // After the row swap the (0-position) constraint row is [1, 0, 0]
        // and elimination fills the branch-column diagonal of the moved
        // node row. nnz must exceed the raw pattern count.
        let (a, _) = mna_like(1e-12, 1e-3, 1.0);
        let pattern = SparsityPattern::of_matrix(&a);
        let raw = pattern.nnz();
        let sym = SymbolicLu::analyze(&pattern, vec![2, 1, 0]);
        assert!(sym.is_viable());
        assert!(
            sym.nnz() >= raw.saturating_sub(2),
            "fill analysis dropped entries"
        );
        assert!(sym.fill_ratio() <= 1.0);
    }

    #[test]
    fn symbolic_declines_when_static_pivot_is_weak() {
        // Identity order on the MNA shape: position 0 pivot is the gmin-weak
        // node diagonal (~1e-9) against a unit entry below it — fails the
        // threshold test.
        let (a, _) = mna_like(1e-12, 1e-9, 1.0);
        let sym = SymbolicLu::analyze(&SparsityPattern::of_matrix(&a), vec![0, 1, 2]);
        // Structurally position 2 has no diagonal under identity order
        // until fill; (2,2) fills from (2,0)*(0,2) so it is viable...
        if sym.is_viable() {
            let mut f = LuFactors::empty();
            assert!(!sym.factor_into(&a, &mut f), "weak pivot must decline");
        }
    }

    #[test]
    fn symbolic_declines_on_structurally_deficient_order() {
        // [[0, 1], [1, 0]] with identity order: (0,0) empty, not viable.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let sym = SymbolicLu::analyze(&SparsityPattern::of_matrix(&a), vec![0, 1]);
        assert!(!sym.is_viable());
        let mut f = LuFactors::empty();
        assert!(!sym.factor_into(&a, &mut f));
        // The swapped order succeeds with unit pivots.
        let sym = SymbolicLu::analyze(&SparsityPattern::of_matrix(&a), vec![1, 0]);
        assert!(sym.is_viable());
        assert!(sym.factor_into(&a, &mut f));
        let mut x = Vec::new();
        sym.solve_into(&f, &[2.0, 3.0], &mut x);
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symbolic_solution_bitwise_stable_across_refactorization() {
        // Factoring the same values twice must produce identical bits —
        // the foundation of the batched kernel's byte-identity argument.
        let (a, b) = mna_like(1e-12, 7e-4, 1.3);
        let sym = SymbolicLu::analyze(&SparsityPattern::of_matrix(&a), vec![2, 1, 0]);
        let mut f1 = LuFactors::empty();
        let mut f2 = LuFactors::empty();
        assert!(sym.factor_into(&a, &mut f1));
        assert!(sym.factor_into(&a, &mut f2));
        let (mut x1, mut x2) = (Vec::new(), Vec::new());
        sym.solve_into(&f1, &b, &mut x1);
        sym.solve_into(&f2, &b, &mut x2);
        let bits = |v: &[f64]| v.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&x1), bits(&x2));
    }

    #[test]
    fn symbolic_handles_random_dense_systems() {
        let mut state = 0x9e3779b9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for n in [1usize, 2, 4, 8] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += n as f64;
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let sym = SymbolicLu::analyze(&SparsityPattern::of_matrix(&a), (0..n).collect());
            assert!(sym.is_viable());
            let mut f = LuFactors::empty();
            assert!(sym.factor_into(&a, &mut f), "n = {n}");
            let mut x = Vec::new();
            sym.solve_into(&f, &b, &mut x);
            assert!(residual_norm(&a, &x, &b) < 1e-10, "n = {n}");
        }
    }
}
