//! Dense matrices and LU factorization with partial pivoting.
//!
//! The circuits in this workspace are small (a handful of transistors), so a
//! dense row-major matrix with `O(n^3)` LU is the right tool: it is simple,
//! cache-friendly at these sizes, and has no failure modes beyond genuine
//! singularity.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use proxim_numeric::linalg::Matrix;
///
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let lu = a.lu().expect("diagonal matrix is nonsingular");
/// let x = lu.solve(&[2.0, 8.0]);
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major nested slice.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "row {i} has inconsistent length");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `v` to entry `(i, j)` — the fundamental MNA "stamp" operation.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self[(i, j)] += v;
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// LU-factorizes the matrix with partial pivoting.
    ///
    /// Allocates a fresh [`LuFactors`]; in hot loops prefer [`Matrix::lu_into`],
    /// which reuses a caller-owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot smaller than `1e-300` in
    /// magnitude is encountered, i.e. the matrix is numerically singular.
    pub fn lu(&self) -> Result<LuFactors, SingularMatrixError> {
        let mut out = LuFactors::empty();
        self.lu_into(&mut out)?;
        Ok(out)
    }

    /// LU-factorizes the matrix into a caller-owned [`LuFactors`] buffer,
    /// allocating nothing once `out` has reached this matrix's size.
    ///
    /// On error `out` holds a partially eliminated factorization and must
    /// not be used for solves (the next `lu_into` overwrites it fully).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot smaller than `1e-300` in
    /// magnitude is encountered, i.e. the matrix is numerically singular.
    pub fn lu_into(&self, out: &mut LuFactors) -> Result<(), SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "LU requires a square matrix");
        let n = self.rows;
        out.n = n;
        out.sign = 1.0;
        out.lu.clear();
        out.lu.extend_from_slice(&self.data);
        out.perm.clear();
        out.perm.extend(0..n);
        let lu = &mut out.lu;

        for k in 0..n {
            // Find the pivot row.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(SingularMatrixError { pivot_index: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                out.perm.swap(k, p);
                out.sign = -out.sign;
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let f = lu[i * n + k] / pivot;
                lu[i * n + k] = f;
                if f != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= f * lu[k * n + j];
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience: factorize and solve `A x = b` in one call.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if the matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        Ok(self.lu()?.solve(b))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The error returned when LU factorization encounters a zero pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// The elimination step at which the pivot vanished.
    pub pivot_index: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at pivot {}", self.pivot_index)
    }
}

impl std::error::Error for SingularMatrixError {}

/// The result of LU factorization: `P A = L U` stored compactly.
///
/// Obtained from [`Matrix::lu`]; reusable for multiple right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// An empty buffer for [`Matrix::lu_into`] to factor into. Holds no
    /// usable factorization until then.
    pub fn empty() -> Self {
        Self {
            n: 0,
            lu: Vec::new(),
            perm: Vec::new(),
            sign: 1.0,
        }
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// Allocates the solution vector; in hot loops prefer
    /// [`LuFactors::solve_into`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-owned vector, allocating nothing once
    /// `x` has reached the matrix dimension.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    #[allow(clippy::needless_range_loop)] // textbook substitution indexing
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "dimension mismatch in solve");
        let n = self.n;
        // Apply the permutation, then forward-substitute through L.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        // Back-substitute through U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s / self.lu[i * n + i];
        }
    }

    /// The determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = a.solve(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err.pivot_index, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn determinant_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]);
        let lu = a.lu().unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_flips_with_permutation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = a.lu().unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn factors_reusable_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [5.0, -3.0, 2.0]] {
            let x = lu.solve(&b);
            assert!(residual_norm(&a, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn lu_into_reuses_buffers_and_matches_lu() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 4.0]]);
        let fresh = a.lu().unwrap();
        let mut reused = LuFactors::empty();
        a.lu_into(&mut reused).unwrap();
        let b = [5.0, -3.0, 2.0];
        assert_eq!(fresh.solve(&b), reused.solve(&b));
        assert_eq!(fresh.det(), reused.det());

        // Refactor a different matrix into the same buffer.
        let a2 = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 2.0]]);
        a2.lu_into(&mut reused).unwrap();
        let x = reused.solve(&[2.0, 3.0, 4.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve_across_sizes() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        // Pre-fill with stale, larger content to prove it is overwritten.
        let mut x = vec![9.0; 7];
        lu.solve_into(&[3.0, 5.0], &mut x);
        assert_eq!(x.len(), 2);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_into_failure_then_success_recovers() {
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut buf = LuFactors::empty();
        assert!(singular.lu_into(&mut buf).is_err());
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        a.lu_into(&mut buf).unwrap();
        let x = buf.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 1.5);
        a.add(0, 0, 2.5);
        assert_eq!(a[(0, 0)], 4.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut a = Matrix::identity(3);
        a.clear();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 3);
        assert_eq!(a[(1, 1)], 0.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_well_conditioned_systems_solve_accurately() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                // Diagonal dominance keeps the system well conditioned.
                a[(i, i)] += n as f64;
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = a.solve(&b).unwrap();
            assert!(residual_norm(&a, &x, &b) < 1e-10, "n = {n}");
        }
    }
}
