//! Sample-grid construction for characterization sweeps.

/// `n` linearly spaced samples covering `[lo, hi]` inclusive.
///
/// For `n == 1` the single sample is `lo`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// let g = proxim_numeric::grid::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace requires at least one sample");
    if n == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// `n` logarithmically spaced samples covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n == 0` or if `lo` or `hi` is not strictly positive.
///
/// # Example
///
/// ```
/// let g = proxim_numeric::grid::logspace(1.0, 100.0, 3);
/// assert!((g[1] - 10.0).abs() < 1e-12);
/// ```
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace requires positive bounds");
    linspace(lo.ln(), hi.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Locates `x` in a sorted grid, returning the index `i` of the left edge of
/// the containing cell, clamped to `[0, grid.len() - 2]`.
///
/// Out-of-range `x` selects the first or last cell, which gives clamped
/// extrapolation when combined with clamped interpolation weights.
///
/// # Panics
///
/// Panics if the grid has fewer than two points.
pub fn locate(grid: &[f64], x: f64) -> usize {
    assert!(grid.len() >= 2, "locate requires at least two grid points");
    match grid.binary_search_by(|g| g.partial_cmp(&x).expect("grid values must not be NaN")) {
        Ok(i) => i.min(grid.len() - 2),
        Err(0) => 0,
        Err(i) => (i - 1).min(grid.len() - 2),
    }
}

/// The clamped interpolation weight of `x` within cell `i` of `grid`:
/// 0 at the left edge, 1 at the right edge, clamped outside.
pub fn cell_weight(grid: &[f64], i: usize, x: f64) -> f64 {
    let (a, b) = (grid[i], grid[i + 1]);
    if b == a {
        return 0.0;
    }
    ((x - a) / (b - a)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_exact() {
        let g = linspace(-2.0, 3.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], -2.0);
        assert!((g[10] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(4.0, 9.0, 1), vec![4.0]);
    }

    #[test]
    fn linspace_reverse_direction() {
        let g = linspace(1.0, 0.0, 3);
        assert_eq!(g, vec![1.0, 0.5, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn linspace_zero_panics() {
        linspace(0.0, 1.0, 0);
    }

    #[test]
    fn logspace_is_geometric() {
        let g = logspace(1e-12, 1e-9, 4);
        for w in g.windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive bounds")]
    fn logspace_rejects_nonpositive() {
        logspace(0.0, 1.0, 3);
    }

    #[test]
    fn locate_interior_and_edges() {
        let g = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(locate(&g, -5.0), 0);
        assert_eq!(locate(&g, 0.0), 0);
        assert_eq!(locate(&g, 0.5), 0);
        assert_eq!(locate(&g, 1.0), 1);
        assert_eq!(locate(&g, 2.7), 2);
        assert_eq!(locate(&g, 3.0), 2);
        assert_eq!(locate(&g, 99.0), 2);
    }

    #[test]
    fn cell_weight_clamps() {
        let g = [0.0, 2.0];
        assert_eq!(cell_weight(&g, 0, -1.0), 0.0);
        assert_eq!(cell_weight(&g, 0, 1.0), 0.5);
        assert_eq!(cell_weight(&g, 0, 5.0), 1.0);
    }

    #[test]
    fn cell_weight_degenerate_cell() {
        let g = [1.0, 1.0];
        assert_eq!(cell_weight(&g, 0, 1.0), 0.0);
    }
}
