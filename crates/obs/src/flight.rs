//! The flight recorder: an always-on, lock-light ring buffer of the last N
//! trace records, for post-mortems the JSONL sink never saw.
//!
//! The sink answers "show me the whole run" — it needs a path, a level,
//! and disk bandwidth. The flight recorder answers a different question:
//! *what was the process doing in the seconds before it stopped?* It is a
//! fixed-size in-memory ring that [`crate::trace`] feeds with every span
//! and event record the moment it is formatted, whether or not a sink is
//! installed. When something goes wrong — a panic, a `SIGTERM` drain, an
//! operator asking a live daemon — the ring is dumped as ordinary JSONL
//! (the sink format, so `trace2chrome` and every other trace consumer
//! reads it unchanged), newest [`capacity`] records, oldest first.
//!
//! # Concurrency
//!
//! Writers never share a lock: a relaxed `fetch_add` hands each record a
//! unique global sequence number, which maps it to one slot
//! (`seq % capacity`). Each slot is its own tiny mutex, so two writers
//! only ever contend when they land on the *same* slot — which requires
//! the ring to wrap a full lap between them. A slot stores its record's
//! sequence number and refuses to be overwritten backwards, so a slow
//! writer that held a low sequence across a wrap cannot clobber a newer
//! record: the dump is always the newest surviving record per slot,
//! ordered by sequence.
//!
//! # Lifecycle
//!
//! The ring is created on first [`enable`] and its capacity is fixed for
//! the life of the process (later `enable` calls keep the existing ring).
//! [`disable`] stops recording without discarding what was captured, so a
//! post-mortem dump still works after recording stops. The recorder never
//! touches the filesystem itself — callers write [`dump`]'s string through
//! their crash-consistent writer of choice (the model stack uses
//! `proxim_model::persist::atomic_write`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Default ring capacity when [`init_from_env`] or a caller does not pick
/// one: a thousand records covers seconds of a busy daemon. Deliberately
/// modest — a recording writer rotates through every slot's reused
/// buffers, so the ring's resident footprint (roughly half a megabyte at
/// serve-shaped records) streams through the cache continuously; a much
/// larger default measurably taxes the traced hot path on small-cache
/// hosts. Post-mortems that need deeper history can raise it per process
/// (`PROXIM_FLIGHT_CAPACITY`, `--flight-capacity`).
pub const DEFAULT_CAPACITY: usize = 1024;

/// A whole request span tree captured *unformatted*: copying a handful of
/// integers and short strings into a reused slot costs a fraction of
/// rendering five JSONL records, and the ring only pays the rendering at
/// [`dump`] time — which is how recording every request stays negligible
/// on the serving path. The record is deliberately flat — one text arena
/// plus two numeric vectors, not a string per name — because a ring
/// larger than cache makes every slot write a cold miss, and a capture
/// that streams into three contiguous buffers misses a few lines where
/// one scattered across per-name allocations misses one per string.
/// Args (`trace_id`, `op`, ...) belong to the parent; children are bare
/// phases.
#[derive(Default)]
struct TreeRecord {
    tid: u64,
    /// Parent span id; children get `base_id + 1 ..`.
    base_id: u64,
    /// Per span (parent first): where its name ends in `text`, start, dur.
    /// Names are concatenated in span order from offset 0.
    spans: Vec<(u32, u64, u64)>,
    /// Parent-span args: (key end, value end) offsets into `text`, laid
    /// down key-then-value after the names.
    args: Vec<(u32, u32)>,
    /// All span names, then arg keys/values, concatenated.
    text: String,
}

impl TreeRecord {
    /// Refills this record in place, reusing every inner buffer.
    fn copy_from(
        &mut self,
        parent: &crate::trace::SpanAt<'_>,
        children: &[crate::trace::SpanAt<'_>],
        tid: u64,
        base_id: u64,
    ) {
        self.tid = tid;
        self.base_id = base_id;
        self.spans.clear();
        self.args.clear();
        self.text.clear();
        let push = |text: &mut String, s: &str| -> u32 {
            text.push_str(s);
            text.len() as u32
        };
        let end = push(&mut self.text, parent.name);
        self.spans.push((end, parent.start_us, parent.dur_us));
        for child in children {
            let end = push(&mut self.text, child.name);
            self.spans.push((end, child.start_us, child.dur_us));
        }
        for (k, v) in parent.args {
            let k_end = push(&mut self.text, k);
            let v_end = push(&mut self.text, v);
            self.args.push((k_end, v_end));
        }
    }

    /// Renders the tree as the same JSONL records the sink would have
    /// received.
    fn render(&self, out: &mut String) {
        let slice = |from: u32, to: u32| self.text.get(from as usize..to as usize).unwrap_or("");
        let mut args: Vec<(&str, &str)> = Vec::with_capacity(self.args.len());
        let names_end = self.spans.last().map_or(0, |(end, _, _)| *end);
        let mut at = names_end;
        for (k_end, v_end) in &self.args {
            args.push((slice(at, *k_end), slice(*k_end, *v_end)));
            at = *v_end;
        }
        let mut name_at = 0u32;
        for (i, (name_end, start_us, dur_us)) in self.spans.iter().enumerate() {
            let (parent, span_args): (Option<u64>, &[(&str, &str)]) = if i == 0 {
                (None, &args)
            } else {
                (Some(self.base_id), &[])
            };
            if i > 0 {
                out.push('\n');
            }
            crate::trace::format_span_into(
                out,
                slice(name_at, *name_end),
                self.base_id + i as u64,
                parent,
                self.tid,
                *start_us,
                *dur_us,
                span_args,
            );
            name_at = *name_end;
        }
    }
}

/// What one ring slot holds.
enum Record {
    /// A pre-formatted JSONL line (or newline-separated block).
    Line(String),
    /// An unformatted span tree, rendered lazily at dump time.
    Tree(Box<TreeRecord>),
}

struct Slot {
    seq: u64,
    record: Record,
}

struct Ring {
    slots: Vec<Mutex<Option<Slot>>>,
    head: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING: OnceLock<Ring> = OnceLock::new();
/// Where a post-mortem dump should land, when a caller armed one.
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
/// Whether callers holding durability checkpoints (the characterization
/// journal) should mirror the ring to the armed path after every append.
static SYNC_DUMP: AtomicBool = AtomicBool::new(false);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Turns recording on, creating the ring with `capacity` slots if this is
/// the first enable. Returns the ring's actual capacity (a later caller
/// asking for a different size gets the existing ring — capacity is fixed
/// per process). A zero `capacity` is clamped to 1.
pub fn enable(capacity: usize) -> usize {
    let ring = RING.get_or_init(|| Ring {
        slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        head: AtomicU64::new(0),
    });
    ENABLED.store(true, Ordering::Relaxed);
    ring.slots.len()
}

/// Stops recording. The captured records are kept: [`dump`] still works,
/// which is exactly what a post-mortem path wants.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether records are currently being captured (lock-free; this is the
/// fast-path check instrumentation sites use).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The ring capacity, or 0 when no ring was ever created.
pub fn capacity() -> usize {
    RING.get().map_or(0, |r| r.slots.len())
}

/// Total records ever offered to the ring (including ones since
/// overwritten). `recorded() - capacity()` is how many fell off the back.
pub fn recorded() -> u64 {
    RING.get().map_or(0, |r| r.head.load(Ordering::Relaxed))
}

/// Records one pre-formatted JSONL record. A record is usually one line,
/// but a caller may pass a newline-separated block (the serving path
/// records each request's whole span tree as one record) — dumps stay
/// valid JSONL either way, and the block costs one slot instead of one
/// per line. No-op unless [`enabled`].
pub fn record(line: &str) {
    if !enabled() {
        return;
    }
    let Some(ring) = RING.get() else { return };
    let seq = ring.head.fetch_add(1, Ordering::Relaxed);
    let idx = (seq % ring.slots.len() as u64) as usize;
    let mut slot = lock(&ring.slots[idx]);
    // Never go backwards: if a racing writer already installed a newer
    // lap's record in this slot, the older record loses, not the newer.
    // Overwrites reuse the slot's existing buffer, so a wrapped ring under
    // steady load records without allocating.
    match slot.as_mut() {
        Some(s) if s.seq >= seq => {}
        Some(s) => {
            s.seq = seq;
            if let Record::Line(buf) = &mut s.record {
                buf.clear();
                buf.push_str(line);
            } else {
                s.record = Record::Line(line.to_owned());
            }
        }
        None => {
            *slot = Some(Slot {
                seq,
                record: Record::Line(line.to_owned()),
            });
        }
    }
}

/// Records a whole span tree *without formatting it*: the slot keeps the
/// raw numbers and names and the JSONL rendering happens at [`dump`] time.
/// This is the serving path's per-request entry point — copying a tree in
/// costs a fraction of rendering it, which is what keeps an always-on
/// flight recorder invisible in throughput. The tree occupies one slot
/// (one request of history), and `base_id` must be the parent's span id
/// with children allocated at `base_id + 1 ..`. No-op unless [`enabled`].
pub(crate) fn record_tree(
    parent: &crate::trace::SpanAt<'_>,
    children: &[crate::trace::SpanAt<'_>],
    tid: u64,
    base_id: u64,
) {
    if !enabled() {
        return;
    }
    let Some(ring) = RING.get() else { return };
    let seq = ring.head.fetch_add(1, Ordering::Relaxed);
    let idx = (seq % ring.slots.len() as u64) as usize;
    let mut slot = lock(&ring.slots[idx]);
    match slot.as_mut() {
        Some(s) if s.seq >= seq => {}
        Some(s) => {
            s.seq = seq;
            if let Record::Tree(tree) = &mut s.record {
                tree.copy_from(parent, children, tid, base_id);
            } else {
                let mut tree = Box::<TreeRecord>::default();
                tree.copy_from(parent, children, tid, base_id);
                s.record = Record::Tree(tree);
            }
        }
        None => {
            let mut tree = Box::<TreeRecord>::default();
            tree.copy_from(parent, children, tid, base_id);
            *slot = Some(Slot {
                seq,
                record: Record::Tree(tree),
            });
        }
    }
}

/// Dumps the ring as JSONL: one `{"t":"flight",...}` header describing
/// what the dump covers, then the surviving records oldest-first. The
/// output is sink-format JSONL, so `trace2chrome` converts it directly.
/// An empty (or never-created) ring dumps just the header.
pub fn dump() -> String {
    let mut records: Vec<(u64, String)> = Vec::new();
    let (total, cap) = match RING.get() {
        Some(ring) => {
            for slot in &ring.slots {
                if let Some(s) = lock(slot).as_ref() {
                    let rendered = match &s.record {
                        Record::Line(line) => line.clone(),
                        Record::Tree(tree) => {
                            let mut out = String::with_capacity(512);
                            tree.render(&mut out);
                            out
                        }
                    };
                    records.push((s.seq, rendered));
                }
            }
            (ring.head.load(Ordering::Relaxed), ring.slots.len())
        }
        None => (0, 0),
    };
    records.sort_unstable_by_key(|(seq, _)| *seq);
    let dropped = total.saturating_sub(records.len() as u64);
    let mut out = format!(
        "{{\"t\":\"flight\",\"recorded\":{total},\"capacity\":{cap},\"dropped\":{dropped}}}\n"
    );
    for (_, line) in &records {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Arms a post-mortem dump path. Callers that own the crash boundary
/// (panic hooks, drain paths, the checkpoint journal) read it back via
/// [`armed_dump_path`] and write [`dump`] there through their atomic
/// writer. `sync` additionally asks checkpoint-holding callers to mirror
/// the ring to the path on every durable append, so even a `SIGKILL`
/// leaves a dump no more than one journal entry behind.
pub fn arm_dump(path: PathBuf, sync: bool) {
    *lock(&DUMP_PATH) = Some(path);
    SYNC_DUMP.store(sync, Ordering::Relaxed);
}

/// The armed post-mortem dump path, if any.
pub fn armed_dump_path() -> Option<PathBuf> {
    lock(&DUMP_PATH).clone()
}

/// Whether per-checkpoint mirror dumps were requested (see [`arm_dump`]).
#[inline]
pub fn sync_dump_armed() -> bool {
    SYNC_DUMP.load(Ordering::Relaxed) && enabled()
}

/// Arms the flight recorder from the environment, once per process:
///
/// - `PROXIM_FLIGHT=<path>` enables recording and arms `<path>` as the
///   post-mortem dump destination;
/// - `PROXIM_FLIGHT_CAPACITY=<n>` overrides [`DEFAULT_CAPACITY`];
/// - `PROXIM_FLIGHT_SYNC=1` requests per-checkpoint mirror dumps.
///
/// Returns the armed dump path when the recorder was (or already is)
/// armed from the environment. Safe to call from every entry point that
/// might run first — only the first call reads the environment.
pub fn init_from_env() -> Option<PathBuf> {
    static INIT: OnceLock<Option<PathBuf>> = OnceLock::new();
    INIT.get_or_init(|| {
        let path = std::env::var_os("PROXIM_FLIGHT")?;
        if path.is_empty() {
            return None;
        }
        let capacity = std::env::var("PROXIM_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        let sync = std::env::var("PROXIM_FLIGHT_SYNC").is_ok_and(|v| v == "1");
        enable(capacity);
        let path = PathBuf::from(path);
        arm_dump(path.clone(), sync);
        Some(path)
    })
    .clone()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    // The ring is process-global and its capacity is fixed at first
    // enable, so the unit tests here share one ring and assert properties
    // that hold regardless of interleaving with each other; the
    // wrap-around and concurrency suites (tests/flight_recorder.rs) run
    // in their own process where they control the capacity.
    #[test]
    fn records_survive_disable_and_dump_is_ordered() {
        enable(DEFAULT_CAPACITY);
        record("{\"t\":\"event\",\"name\":\"a\",\"tid\":1,\"ts\":1}");
        record("{\"t\":\"event\",\"name\":\"b\",\"tid\":1,\"ts\":2}");
        disable();
        assert!(!enabled());
        // Recording is off, dumping still works.
        record("{\"t\":\"event\",\"name\":\"after\",\"tid\":1,\"ts\":3}");
        let dump = dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"t\":\"flight\""), "{}", lines[0]);
        assert!(dump.contains("\"name\":\"a\""));
        assert!(dump.contains("\"name\":\"b\""));
        assert!(!dump.contains("\"name\":\"after\""));
        // Re-enable keeps the ring and its contents.
        let cap = enable(7);
        assert_eq!(cap, DEFAULT_CAPACITY, "capacity is fixed at first enable");
        assert!(super::dump().contains("\"name\":\"a\""));
    }

    #[test]
    fn armed_path_round_trips() {
        let p = PathBuf::from("/tmp/flight-test.jsonl");
        arm_dump(p.clone(), false);
        assert_eq!(armed_dump_path(), Some(p));
        assert!(!SYNC_DUMP.load(Ordering::Relaxed));
    }
}
