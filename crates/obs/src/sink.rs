//! The process-wide trace sink: where emitted JSONL lines go.
//!
//! At most one sink is installed at a time. Emission sites call
//! [`write_line`] / [`write_block`], which are no-ops when nothing is
//! installed; the [`crate::trace_enabled`] fast path checks
//! [`is_installed`] first, so the lock here is only touched when tracing
//! is actually armed.
//!
//! # Two sink shapes
//!
//! [`install_writer`] installs a *direct* sink: every record is written
//! through synchronously. Tests use this to capture emission in memory
//! and see records the moment they are emitted.
//!
//! [`install_jsonl`] installs a *double-buffered file* sink: emitters
//! append to an in-memory front buffer (a lock plus a memcpy — tens of
//! nanoseconds) and a background flusher thread swaps the buffer out and
//! does the actual file I/O on its own time. At serving rates the file
//! write is the dominant cost of tracing, and inlining it would make
//! every concurrent emitter queue behind whichever one the page cache
//! decided to throttle; double-buffering moves that cost off the serving
//! path entirely. The front buffer is bounded — if the flusher cannot
//! keep up, new records are dropped (counted, reported once on stderr)
//! rather than letting memory grow without bound.
//!
//! A sink that starts failing (disk full, closed pipe) is dropped after
//! reporting once on stderr — observability must never take the workload
//! down.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Hard cap on the front buffer: ~32 MB of pending trace is a flusher
/// that has fallen hopelessly behind, not a burst worth absorbing.
const MAX_PENDING_BYTES: usize = 32 << 20;

/// How often the flusher thread drains the front buffer.
const FLUSH_INTERVAL: Duration = Duration::from_millis(20);

/// The double-buffered file sink shared between emitters and the flusher.
struct Buffered {
    /// Front buffer emitters append to.
    pending: Mutex<String>,
    /// Back buffer the flusher swaps in; kept (capacity and all) between
    /// drains so steady-state emission never allocates or faults fresh
    /// pages — `mem::take` here would hand emitters a zero-capacity
    /// string to regrow every 20 ms.
    back: Mutex<String>,
    /// The output file; only the flusher and explicit [`flush`] take it.
    file: Mutex<File>,
    /// Tells the flusher thread to drain once more and exit.
    stop: AtomicBool,
    /// Records dropped because the front buffer was full.
    dropped: AtomicU64,
}

impl Buffered {
    /// Swaps the front buffer out and writes it to the file. Returns
    /// `false` when the file write failed (the sink should be dropped).
    fn drain(&self) -> bool {
        let mut back = lock(&self.back);
        back.clear();
        std::mem::swap(&mut *lock(&self.pending), &mut back);
        if back.is_empty() {
            return true;
        }
        let mut file = lock(&self.file);
        let ok = file.write_all(back.as_bytes()).is_ok();
        ok && file.flush().is_ok()
    }
}

enum Sink {
    Direct(Box<dyn Write + Send>),
    Buffered(Arc<Buffered>),
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a sink is currently installed (lock-free).
#[inline]
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

fn guard() -> MutexGuard<'static, Option<Sink>> {
    lock(&SINK)
}

/// Flushes and drops the sink currently in `slot`, stopping its flusher
/// thread if it has one.
fn retire(slot: &mut Option<Sink>) {
    match slot.take() {
        Some(Sink::Direct(mut w)) => {
            w.flush().ok();
        }
        Some(Sink::Buffered(b)) => {
            b.stop.store(true, Ordering::Relaxed);
            b.drain();
            let dropped = b.dropped.load(Ordering::Relaxed);
            if dropped > 0 {
                eprintln!("proxim-obs: trace sink dropped {dropped} records (flusher fell behind)");
            }
        }
        None => {}
    }
}

/// Installs a double-buffered JSONL sink writing to `path` (truncating
/// any existing file): emitters pay a lock and a memcpy, a background
/// flusher thread pays the file I/O. Replaces and flushes any previous
/// sink.
///
/// # Errors
///
/// Returns the I/O error when the file cannot be created.
pub fn install_jsonl(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let buffered = Arc::new(Buffered {
        pending: Mutex::new(String::new()),
        back: Mutex::new(String::new()),
        file: Mutex::new(file),
        stop: AtomicBool::new(false),
        dropped: AtomicU64::new(0),
    });
    let flusher = Arc::clone(&buffered);
    std::thread::Builder::new()
        .name("obs-sink-flush".into())
        .spawn(move || loop {
            std::thread::sleep(FLUSH_INTERVAL);
            let stopping = flusher.stop.load(Ordering::Relaxed);
            if !flusher.drain() {
                eprintln!("proxim-obs: trace sink write failed; tracing disabled");
                INSTALLED.store(false, Ordering::Relaxed);
                return;
            }
            if stopping {
                return;
            }
        })?;
    let mut slot = guard();
    retire(&mut slot);
    *slot = Some(Sink::Buffered(buffered));
    INSTALLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Installs an arbitrary writer as a *direct* (synchronous) sink — used
/// by tests to capture emission in memory and observe records
/// immediately. Replaces and flushes any previous sink.
pub fn install_writer(w: Box<dyn Write + Send>) {
    let mut slot = guard();
    retire(&mut slot);
    *slot = Some(Sink::Direct(w));
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Flushes and removes the current sink, if any.
pub fn uninstall() {
    let mut slot = guard();
    INSTALLED.store(false, Ordering::Relaxed);
    retire(&mut slot);
}

/// Flushes the current sink without removing it: pending buffered records
/// are drained to the file synchronously, so a caller that just emitted
/// can read them back from disk when this returns.
pub fn flush() {
    if !is_installed() {
        return;
    }
    match guard().as_mut() {
        Some(Sink::Direct(w)) => {
            w.flush().ok();
        }
        Some(Sink::Buffered(b)) => {
            b.drain();
        }
        None => {}
    }
}

/// Appends `text` (which must be newline-terminated) to the sink. On a
/// direct-sink write error the sink is dropped and the error reported once
/// on stderr; on a full buffered sink the record is dropped and counted.
fn append(text: &str) {
    let mut slot = guard();
    match slot.as_mut() {
        Some(Sink::Direct(w)) => {
            let failed = w.write_all(text.as_bytes()).is_err();
            if failed {
                eprintln!("proxim-obs: trace sink write failed; tracing disabled");
                INSTALLED.store(false, Ordering::Relaxed);
                *slot = None;
            }
        }
        Some(Sink::Buffered(b)) => {
            let mut pending = lock(&b.pending);
            if pending.len() + text.len() > MAX_PENDING_BYTES {
                b.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                pending.push_str(text);
            }
        }
        None => {}
    }
}

/// Writes one line (a newline is appended) to the installed sink. No-op
/// when no sink is installed.
pub fn write_line(line: &str) {
    if !is_installed() {
        return;
    }
    // One tiny thread-local assembly buffer so the line and its newline
    // land in the sink as a single append.
    thread_local! {
        static LINE_BUF: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
    }
    LINE_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        buf.push_str(line);
        buf.push('\n');
        append(&buf);
    });
}

/// Writes a pre-assembled block of newline-terminated lines in one append
/// under a single sink lock. Hot emission sites that produce a group of
/// records per unit of work — the serving path writes five spans per
/// request — use this so the group costs one lock acquisition and one
/// buffer copy instead of five.
pub fn write_block(block: &str) {
    if !is_installed() || block.is_empty() {
        return;
    }
    append(block);
}
