//! The process-wide trace sink: where emitted JSONL lines go.
//!
//! At most one sink is installed at a time. Emission sites call
//! [`write_line`], which is a no-op when nothing is installed; the
//! [`crate::trace_enabled`] fast path checks [`is_installed`] first, so the
//! mutex here is only touched when tracing is actually armed.
//!
//! A sink that starts failing (disk full, closed pipe) is dropped after
//! reporting once on stderr — observability must never take the workload
//! down.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

static INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Whether a sink is currently installed (lock-free).
#[inline]
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

fn guard() -> std::sync::MutexGuard<'static, Option<Box<dyn Write + Send>>> {
    SINK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs a buffered JSONL sink writing to `path` (truncating any
/// existing file). Replaces and flushes any previous sink.
///
/// # Errors
///
/// Returns the I/O error when the file cannot be created.
pub fn install_jsonl(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    install_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary writer as the sink (used by tests to capture
/// emission in memory). Replaces and flushes any previous sink.
pub fn install_writer(w: Box<dyn Write + Send>) {
    let mut slot = guard();
    if let Some(mut old) = slot.take() {
        old.flush().ok();
    }
    *slot = Some(w);
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Flushes and removes the current sink, if any.
pub fn uninstall() {
    let mut slot = guard();
    INSTALLED.store(false, Ordering::Relaxed);
    if let Some(mut old) = slot.take() {
        old.flush().ok();
    }
}

/// Flushes the current sink without removing it.
pub fn flush() {
    if !is_installed() {
        return;
    }
    if let Some(w) = guard().as_mut() {
        w.flush().ok();
    }
}

/// Writes one line (a newline is appended) to the installed sink. No-op
/// when no sink is installed. On a write error the sink is dropped and the
/// error reported once on stderr.
pub fn write_line(line: &str) {
    if !is_installed() {
        return;
    }
    let mut slot = guard();
    let Some(w) = slot.as_mut() else { return };
    let failed = w
        .write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .is_err();
    if failed {
        eprintln!("proxim-obs: trace sink write failed; tracing disabled");
        INSTALLED.store(false, Ordering::Relaxed);
        *slot = None;
    }
}
