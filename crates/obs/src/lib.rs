//! Structured tracing, metrics, and trace export for the proximity stack.
//!
//! Characterization runs thousands of transient solves behind every grid
//! point, and the pipeline around them makes runtime decisions — recovery
//! rungs, step cuts, cache quarantines, degraded slices — that are invisible
//! in end-of-run totals. This crate is the shared observability layer that
//! makes those decisions inspectable without taxing the hot path:
//!
//! - **Levels** ([`Level`]): one process-wide atomic gates everything.
//!   [`Level::Off`] (the default) reduces every instrumentation site to an
//!   atomic load and a branch; [`Level::Metrics`] enables registry updates;
//!   [`Level::Trace`] additionally emits spans and events to the installed
//!   sink.
//! - **Metrics** ([`metrics::Registry`]): counters, gauges, and fixed-bucket
//!   histograms. The process-wide registry ([`Registry::global`]) aggregates
//!   across the whole run; local registries can be created for per-run
//!   accounting that must not bleed across concurrent runs (the
//!   characterization pipeline derives its `CharStats` from one).
//! - **Tracing** ([`trace`]): spans (scoped, nested per thread, monotonic
//!   microsecond timestamps, stable thread ids) and instant events, both
//!   carrying key/value args. Emission is line-oriented JSON via [`sink`].
//! - **Export** ([`sink`], [`chrome`]): a JSONL sink installed from the
//!   `PROXIM_TRACE` environment variable, and a converter to the Chrome
//!   `trace_event` format so a run can be opened in `about:tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//!
//! # Example
//!
//! ```
//! use proxim_obs as obs;
//!
//! // Metrics work against any registry; the global one is the default.
//! let reg = obs::Registry::new();
//! let solves = reg.counter("demo.solves");
//! solves.add(3);
//! let h = reg.histogram("demo.iters", &[1.0, 2.0, 4.0, 8.0]);
//! h.observe(3.0);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("demo.solves"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod chrome;
pub mod exposition;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use trace::{event, span, Event, Span};

/// Shared metric names (and bucket bounds) for the batched transient kernel,
/// owned here so the producer (`proxim-spice`) and the consumers
/// (`proxim-core` stats, `proxim-bench` reports) cannot drift apart.
pub mod batch_metrics {
    /// Histogram: requested batch size (lanes per `tran_batch` call).
    pub const LANES: &str = "spice.batch.lanes";
    /// Bucket bounds for [`LANES`] and [`ACTIVE_LANES`].
    pub const LANE_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    /// Histogram: live (non-evicted, unfinished) lanes observed per
    /// round of the lockstep loop — the occupancy the SoA layout actually
    /// achieved.
    pub const ACTIVE_LANES: &str = "spice.batch.active_lanes";
    /// Counter: batched calls issued.
    pub const GROUPS: &str = "spice.batch.groups";
    /// Counter: lanes that left the lockstep loop for the scalar path
    /// (Newton failure, fault injection, budget exhaustion).
    pub const EVICTIONS: &str = "spice.batch.evictions";
    /// Counter: lanes that completed inside the lockstep loop.
    pub const LANES_COMPLETED: &str = "spice.batch.lanes_completed";
}

/// Shared metric names (and bucket bounds) for the timing-query daemon,
/// owned here so the producer (`proxim-serve`) and the consumers
/// (`proxim-bench`'s `bench_serve`, operational dashboards reading the
/// final-metrics flush) cannot drift apart.
pub mod serve_metrics {
    /// Counter: requests admitted to the work queue (everything that was
    /// not shed, including requests that later fail typed).
    pub const REQUESTS: &str = "serve.requests";
    /// Counter: requests shed at admission with a typed `overloaded`
    /// response because the bounded queue was full.
    pub const SHED: &str = "serve.shed";
    /// Gauge: instantaneous admission-queue depth.
    pub const QUEUE_DEPTH: &str = "serve.queue.depth";
    /// Counter: frames rejected at the protocol boundary (oversized,
    /// truncated, non-UTF-8, malformed JSON, structural caps).
    pub const PROTO_ERRORS: &str = "serve.proto_errors";
    /// Counter: requests that expired their per-request wall-clock
    /// deadline before or during evaluation.
    pub const DEADLINE_EXPIRED: &str = "serve.deadline_expired";
    /// Counter: answers served through a documented degraded fallback
    /// (`GateTiming::degradation` was `Some`).
    pub const DEGRADED_ANSWERS: &str = "serve.degraded_answers";
    /// Counter: store entries quarantined during library load.
    pub const STORE_QUARANTINED: &str = "serve.store.quarantined";
    /// Counter: connections accepted.
    pub const CONNECTIONS: &str = "serve.connections";
    /// Gauge: currently open connections.
    pub const ACTIVE_CONNECTIONS: &str = "serve.connections.active";
    /// Counter: connections dropped because a slow client stalled a
    /// response write past the write timeout.
    pub const WRITE_TIMEOUTS: &str = "serve.write_timeouts";
    /// Histogram: request latency from admission to response render,
    /// in seconds.
    pub const REQUEST_SECONDS: &str = "serve.request.seconds";
    /// Bucket bounds for [`REQUEST_SECONDS`]: table-lookup queries are
    /// microseconds, so the buckets start well below a millisecond.
    pub const REQUEST_SECONDS_BOUNDS: &[f64] = &[
        10e-6, 30e-6, 100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 1.0,
    ];
    /// Histogram: time a request spent in admission (model resolution +
    /// queue reservation), seconds.
    pub const PHASE_ADMIT_SECONDS: &str = "serve.phase.admit.seconds";
    /// Histogram: time a request waited in the admission queue before a
    /// worker picked it up, seconds.
    pub const PHASE_QUEUE_SECONDS: &str = "serve.phase.queue_wait.seconds";
    /// Histogram: time a worker spent evaluating the request, seconds.
    pub const PHASE_EXECUTE_SECONDS: &str = "serve.phase.execute.seconds";
    /// Histogram: time spent writing the response frame to the client,
    /// seconds.
    pub const PHASE_WRITE_SECONDS: &str = "serve.phase.write.seconds";
    /// Bucket bounds for the per-phase histograms: phases bottom out well
    /// under the end-to-end bounds, so these start at a microsecond.
    pub const PHASE_SECONDS_BOUNDS: &[f64] = &[
        1e-6, 3e-6, 10e-6, 30e-6, 100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 1.0,
    ];
    /// Counter: requests whose end-to-end latency crossed the slow-request
    /// threshold (they are force-sampled into the trace and logged).
    pub const SLOW: &str = "serve.slow";
    /// Counter: requests whose trace was emitted to the JSONL sink (head
    /// sampling plus forced slow samples).
    pub const TRACE_SAMPLED: &str = "serve.trace.sampled";
    /// Gauge: daemon uptime in seconds, refreshed on every snapshot the
    /// introspection plane renders.
    pub const UPTIME_SECONDS: &str = "serve.uptime.seconds";
    /// Gauge: the library generation currently serving (bumped by every
    /// successful hot reload).
    pub const GENERATION: &str = "serve.generation";
    /// Counter: hot reloads that validated and swapped in.
    pub const RELOAD_SWAPPED: &str = "serve.reload.swapped";
    /// Counter: hot reloads whose candidate was rejected (worse than the
    /// live generation, or its store root was unreadable).
    pub const RELOAD_REJECTED: &str = "serve.reload.rejected";
    /// Gauge: bytes of model data currently resident in the library
    /// (never exceeds the configured memory budget after load completes).
    pub const LIBRARY_RESIDENT_BYTES: &str = "serve.library.resident_bytes";
    /// Counter: models evicted from residency to stay under the memory
    /// budget (the library drops its reference; in-flight holders keep
    /// theirs).
    pub const LIBRARY_EVICTIONS: &str = "serve.library.evictions";
    /// Counter: requests that found their model non-resident and paid a
    /// cold load from the store.
    pub const LIBRARY_COLD_MISSES: &str = "serve.library.cold_misses";
    /// Counter: requests that waited on another request's in-progress cold
    /// load instead of loading the same model twice (single-flight).
    pub const LIBRARY_SINGLEFLIGHT_WAITS: &str = "serve.library.singleflight_waits";
    /// Counter: quarantine renames that themselves failed (read-only or
    /// full disk); the corrupt entry stayed in place and the failure is
    /// reported distinctly from successful quarantines.
    pub const QUARANTINE_FAILED: &str = "serve.store.quarantine_failed";
    /// Counter: disk writes (store entries, quarantine renames, metrics
    /// snapshots, flight dumps) that failed with a typed ENOSPC/EIO and
    /// were degraded instead of panicking.
    pub const DISK_FAULTS: &str = "serve.disk.faults";
    /// Gauge: replicas the fleet supervisor currently counts as up
    /// (spawned, probing healthy, not quarantined).
    pub const FLEET_REPLICAS_UP: &str = "serve.fleet.replicas_up";
    /// Counter: replica restarts the fleet supervisor performed after a
    /// crash or a wedged startup.
    pub const FLEET_RESTARTS: &str = "serve.fleet.restarts";
    /// Counter: replicas quarantined for crash-looping (at least the
    /// configured number of exits inside the quarantine window); the
    /// supervisor stops restarting them and the fleet serves degraded on
    /// the survivors.
    pub const FLEET_QUARANTINED: &str = "serve.fleet.quarantined";
    /// Counter: hedged attempts the fleet client issued — a second copy of
    /// an idempotent request sent to a different replica after the hedge
    /// delay elapsed without a response.
    pub const FLEET_HEDGES: &str = "serve.fleet.hedges";
    /// Counter: hedged attempts whose response arrived before the primary
    /// attempt's (first-response-wins).
    pub const FLEET_HEDGE_WINS: &str = "serve.fleet.hedge_wins";
}

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};

/// How much observability the process pays for.
///
/// Stored in one process-wide atomic; every instrumentation site loads it
/// (relaxed) and branches, so the disabled cost is a couple of nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Level {
    /// No metrics, no tracing (the default).
    #[default]
    Off = 0,
    /// Update the global metrics registry; no span/event emission.
    Metrics = 1,
    /// Metrics plus span/event emission to the installed sink, and
    /// fine-grained solver profiling (LU timing) in the simulator.
    Trace = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Sets the process-wide observability level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide observability level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Metrics,
        _ => Level::Trace,
    }
}

/// Whether metric updates should be recorded against the global registry.
#[inline]
pub fn metrics_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Metrics as u8
}

/// Whether spans and events are emitted. Requires [`Level::Trace`] *and* an
/// installed sink: tracing with nowhere to write would be pure overhead.
#[inline]
pub fn trace_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Trace as u8 && sink::is_installed()
}

/// Initializes tracing from the environment: when `PROXIM_TRACE` names a
/// path, installs a JSONL sink writing there and raises the level to
/// [`Level::Trace`]. Returns the trace path when tracing was armed.
///
/// A path that cannot be created is reported on stderr and ignored rather
/// than failing the run — observability must never take the workload down.
pub fn init_from_env() -> Option<PathBuf> {
    let path = std::env::var_os("PROXIM_TRACE")?;
    if path.is_empty() {
        return None;
    }
    let path = PathBuf::from(path);
    match sink::install_jsonl(&path) {
        Ok(()) => {
            set_level(Level::Trace);
            Some(path)
        }
        Err(e) => {
            eprintln!("PROXIM_TRACE: cannot open {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_correctly() {
        assert!(Level::Off < Level::Metrics);
        assert!(Level::Metrics < Level::Trace);
        assert_eq!(Level::default(), Level::Off);
    }
}
