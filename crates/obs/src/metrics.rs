//! Counters, gauges, and fixed-bucket histograms behind a named registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s over
//! atomics: look one up once, then update it lock-free from any thread.
//! The registry mutex is only taken at registration and snapshot time,
//! never on the update path.
//!
//! Two registries matter in practice: [`Registry::global`] aggregates over
//! the whole process for end-of-run summaries and trace export, while a
//! local `Registry::new()` gives a single characterization run its own
//! books — required because several runs may execute concurrently in one
//! process (cargo's test runner does exactly that) and per-run statistics
//! must not bleed between them.

use crate::json::{push_escaped, push_f64};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing integer metric.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point metric, also supporting accumulation.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `x`.
    #[inline]
    pub fn set(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Adds `x` to the gauge (compare-and-swap loop; gauges are not on the
    /// hot path).
    pub fn add(&self, x: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, ascending. An observation lands
    /// in the first bucket whose bound it does not exceed; anything above
    /// the last bound lands in the implicit overflow bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets, the last one being overflow.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, as f64 bits (CAS-accumulated).
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Observation is a linear scan over the bucket
/// bounds plus three relaxed atomic updates — no locks, no allocation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, x: f64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(inner.bounds.len());
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match inner
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter named `name`, creating it on first use. Asking for a
    /// name that is registered as a different kind returns a fresh
    /// detached handle (never panics; the registry keeps the original).
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.entries();
        match entries
            .entry(name.to_owned())
            .or_insert_with(|| Entry::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Entry::Counter(c) => c.clone(),
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// The gauge named `name`, creating it on first use (same kind-mismatch
    /// policy as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = self.entries();
        match entries
            .entry(name.to_owned())
            .or_insert_with(|| Entry::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Entry::Gauge(g) => g.clone(),
            _ => Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        }
    }

    /// The histogram named `name` with the given finite bucket bounds
    /// (ascending), creating it on first use. Bounds are fixed at creation;
    /// later callers get the existing histogram regardless of the bounds
    /// they pass.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut entries = self.entries();
        match entries.entry(name.to_owned()).or_insert_with(|| {
            let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Entry::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0f64.to_bits()),
            })))
        }) {
            Entry::Histogram(h) => h.clone(),
            _ => Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0f64.to_bits()),
            })),
        }
    }

    /// A consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries();
        let mut snap = Snapshot::default();
        for (name, entry) in entries.iter() {
            match entry {
                Entry::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Entry::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Entry::Histogram(h) => {
                    let inner = &h.0;
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            bounds: inner.bounds.clone(),
                            counts: inner
                                .counts
                                .iter()
                                .map(|c| c.load(Ordering::Relaxed))
                                .collect(),
                            count: inner.count.load(Ordering::Relaxed),
                            sum: f64::from_bits(inner.sum.load(Ordering::Relaxed)),
                        },
                    );
                }
            }
        }
        snap
    }
}

/// A point-in-time copy of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The value of a counter, or 0 when it never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge, or 0.0 when it never registered.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// The snapshot of a histogram, when it registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as one compact JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,"mean":..}}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_escaped(&mut s, name);
            s.push(':');
            s.push_str(&v.to_string());
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_escaped(&mut s, name);
            s.push(':');
            push_f64(&mut s, *v);
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_escaped(&mut s, name);
            s.push_str(":{\"count\":");
            s.push_str(&h.count.to_string());
            s.push_str(",\"sum\":");
            push_f64(&mut s, h.sum);
            s.push_str(",\"mean\":");
            push_f64(&mut s, h.mean());
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                s.push_str(",\"");
                s.push_str(label);
                s.push_str("\":");
                push_f64(&mut s, h.quantile(q));
            }
            s.push('}');
        }
        s.push_str("}}");
        s
    }

    /// Renders a plain-text summary table (one metric per line, aligned),
    /// suitable for an end-of-run report on stderr or stdout. Lines are in
    /// global name order regardless of metric kind, so two snapshots of
    /// the same registry state render byte-identically — summary diffs
    /// and test assertions can rely on the order.
    pub fn render_summary(&self) -> String {
        let mut lines: Vec<(String, String)> = Vec::new();
        for (name, v) in &self.counters {
            lines.push((name.clone(), v.to_string()));
        }
        for (name, v) in &self.gauges {
            lines.push((name.clone(), format!("{v:.6}")));
        }
        for (name, h) in &self.histograms {
            lines.push((
                name.clone(),
                format!(
                    "count={} mean={:.3} p50={:.3} p90={:.3} p99={:.3}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                ),
            ));
        }
        lines.sort_by(|a, b| a.0.cmp(&b.0));
        let width = lines.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in lines {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
        out
    }
}

/// The state of one histogram at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; the final entry is the overflow
    /// bucket (observations above the last bound).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// An estimate of the `q`-quantile (`0.0..=1.0`) by linear
    /// interpolation inside the containing bucket. Observations in the
    /// overflow bucket report the last finite bound — fixed-bucket
    /// histograms cannot see beyond it.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = seen + c;
            if (next as f64) >= rank && c > 0 {
                if i >= self.bounds.len() {
                    // Overflow bucket: the best we can report is the top
                    // finite bound.
                    return self.bounds[self.bounds.len() - 1];
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = if c == 0 {
                    0.0
                } else {
                    (rank - seen as f64) / c as f64
                };
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            seen = next;
        }
        self.bounds[self.bounds.len() - 1]
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_accumulate_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(reg.snapshot().counter("x"), 3);
        assert_eq!(reg.snapshot().counter("never"), 0);
    }

    #[test]
    fn gauges_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("g");
        g.set(1.5);
        g.add(0.25);
        assert!((reg.snapshot().gauge("g") - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[1.0, 2.0, 4.0, 8.0]);
        for x in [0.5, 1.5, 1.5, 3.0, 9.0] {
            h.observe(x);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.counts, vec![1, 2, 1, 0, 1]);
        assert!((hs.sum - 15.5).abs() < 1e-12);
        assert!((hs.mean() - 3.1).abs() < 1e-12);
        let p50 = hs.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "p50 = {p50}");
        // The overflow observation pins the extreme quantile to the top
        // finite bound.
        assert_eq!(hs.quantile(1.0), 8.0);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let reg = std::sync::Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("n");
                let h = reg.histogram("lat", &[10.0, 100.0]);
                for i in 0..1000 {
                    c.incr();
                    h.observe((i % 150) as f64);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("n"), 4000);
        assert_eq!(snap.histogram("lat").unwrap().count, 4000);
    }

    #[test]
    fn snapshot_json_parses() {
        let reg = Registry::new();
        reg.counter("runs").add(7);
        reg.gauge("ratio").set(0.5);
        reg.histogram("iters", &[2.0, 4.0]).observe(3.0);
        let v = Json::parse(&reg.snapshot().to_json()).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("runs").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            v.get("histograms")
                .unwrap()
                .get("iters")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn summary_is_globally_name_sorted_and_deterministic() {
        let reg = Registry::new();
        // Register in an order that interleaves kinds alphabetically:
        // a gauge that sorts before a counter, a histogram in between.
        reg.counter("z.count").add(1);
        reg.gauge("a.gauge").set(2.0);
        reg.histogram("m.hist", &[1.0]).observe(0.5);
        reg.counter("b.count").add(3);
        let summary = reg.snapshot().render_summary();
        let names: Vec<&str> = summary
            .lines()
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(names, vec!["a.gauge", "b.count", "m.hist", "z.count"]);
        // Byte-identical across repeated renders of the same state.
        assert_eq!(summary, reg.snapshot().render_summary());
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let make = |order_flip: bool| {
            let reg = Registry::new();
            let names = if order_flip {
                ["b", "a", "c"]
            } else {
                ["c", "b", "a"]
            };
            for n in names {
                reg.counter(n).add(1);
                reg.gauge(format!("{n}.g").as_str()).set(1.0);
            }
            reg.snapshot().to_json()
        };
        assert_eq!(make(false), make(true), "registration order must not leak");
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = Registry::new();
        reg.counter("m").add(5);
        // Asking for the same name as a gauge must not panic or clobber.
        let g = reg.gauge("m");
        g.set(9.0);
        assert_eq!(reg.snapshot().counter("m"), 5);
    }
}
