//! Spans and instant events with monotonic timestamps and stable thread
//! ids, emitted as one JSONL record each.
//!
//! A [`Span`] measures a scope: it stamps its start on creation and emits a
//! single record with its duration when dropped. Spans nest per thread — a
//! thread-local stack tracks the open spans, so a child records its
//! parent's id without any coordination between threads. An [`Event`] marks
//! an instant and emits on drop.
//!
//! Everything here is inert unless [`crate::trace_enabled`] or the
//! [`crate::flight`] recorder holds at construction: an inert span is a
//! `None` payload whose drop does nothing, so instrumentation left in the
//! hot path costs an atomic load and a branch. A live record is routed to
//! the JSONL sink (when tracing is on) and to the flight-recorder ring
//! (when it is enabled) — the ring captures every record even when no
//! sink is installed, which is what makes post-mortem dumps possible on
//! processes that never asked for a trace file.
//!
//! ## Record formats (one JSON object per line)
//!
//! ```json
//! {"t":"span","name":"char.job","id":7,"parent":3,"tid":2,"ts":1520,"dur":880,"args":{"job":"12"}}
//! {"t":"event","name":"cache.hit","tid":1,"ts":40,"args":{"key":"9f"}}
//! {"t":"metrics","data":{...}}
//! ```
//!
//! `ts`/`dur` are microseconds since the process trace epoch (the first
//! timestamped call), matching the Chrome `trace_event` clock domain.

use crate::flight;
use crate::json::push_escaped;
use crate::sink;
use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (monotonic).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's stable trace id (sequential, assigned on first use).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

struct SpanData {
    name: String,
    id: u64,
    parent: Option<u64>,
    tid: u64,
    start_us: u64,
    args: Vec<(String, String)>,
}

/// A scoped span: created open, emitted on drop. Obtain via [`span`].
#[must_use = "a span measures its scope; dropping it immediately records nothing useful"]
pub struct Span(Option<SpanData>);

/// Whether span/event records have anywhere to go: the sink (tracing on)
/// or the flight-recorder ring.
#[inline]
fn recording() -> bool {
    crate::trace_enabled() || flight::enabled()
}

/// Routes one finished record line: to the sink when tracing is enabled,
/// and to the flight ring when the recorder is on.
fn route_line(line: String) {
    if crate::trace_enabled() {
        sink::write_line(&line);
    }
    flight::record(&line);
}

/// Opens a span named `name`. Inert (and free beyond the level check) when
/// neither tracing nor the flight recorder is enabled. Attach fields with
/// [`Span::arg`]; the record is emitted when the returned guard drops.
pub fn span(name: &str) -> Span {
    if !recording() {
        return Span(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_parent();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span(Some(SpanData {
        name: name.to_owned(),
        id,
        parent,
        tid: current_tid(),
        start_us: now_us(),
        args: Vec::new(),
    }))
}

impl Span {
    /// Attaches a key/value field (rendered as a string). No-op on an
    /// inert span, so the value is never formatted when tracing is off —
    /// pass cheap Displays or gate expensive ones on [`crate::trace_enabled`].
    pub fn arg(mut self, key: &str, value: impl Display) -> Self {
        if let Some(data) = self.0.as_mut() {
            data.args.push((key.to_owned(), value.to_string()));
        }
        self
    }

    /// Attaches a field to a span held by reference (for args only known
    /// mid-scope).
    pub fn add_arg(&mut self, key: &str, value: impl Display) {
        if let Some(data) = self.0.as_mut() {
            data.args.push((key.to_owned(), value.to_string()));
        }
    }

    /// Whether this span is live (tracing was enabled when it opened).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.0.take() else { return };
        let dur = now_us().saturating_sub(data.start_us);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Almost always the top; rposition tolerates out-of-order drops.
            if let Some(i) = stack.iter().rposition(|&id| id == data.id) {
                stack.remove(i);
            }
        });
        let mut line = String::with_capacity(96);
        line.push_str("{\"t\":\"span\",\"name\":");
        push_escaped(&mut line, &data.name);
        line.push_str(&format!(",\"id\":{}", data.id));
        if let Some(p) = data.parent {
            line.push_str(&format!(",\"parent\":{p}"));
        }
        line.push_str(&format!(
            ",\"tid\":{},\"ts\":{},\"dur\":{dur}",
            data.tid, data.start_us
        ));
        push_args(&mut line, &data.args);
        line.push('}');
        route_line(line);
    }
}

struct EventData {
    name: String,
    tid: u64,
    ts_us: u64,
    parent: Option<u64>,
    args: Vec<(String, String)>,
}

/// An instant event: stamped at creation, emitted on drop. Obtain via
/// [`event`].
#[must_use = "an event emits when dropped; bind it or drop it explicitly after adding args"]
pub struct Event(Option<EventData>);

/// Marks an instant event named `name`, recorded inside the currently open
/// span (if any). Inert when neither tracing nor the flight recorder is
/// enabled. Attach fields with [`Event::arg`]; the record is emitted when
/// the value drops.
pub fn event(name: &str) -> Event {
    if !recording() {
        return Event(None);
    }
    Event(Some(EventData {
        name: name.to_owned(),
        tid: current_tid(),
        ts_us: now_us(),
        parent: current_parent(),
        args: Vec::new(),
    }))
}

impl Event {
    /// Attaches a key/value field (rendered as a string). No-op when inert.
    pub fn arg(mut self, key: &str, value: impl Display) -> Self {
        if let Some(data) = self.0.as_mut() {
            data.args.push((key.to_owned(), value.to_string()));
        }
        self
    }
}

impl Drop for Event {
    fn drop(&mut self) {
        let Some(data) = self.0.take() else { return };
        let mut line = String::with_capacity(64);
        line.push_str("{\"t\":\"event\",\"name\":");
        push_escaped(&mut line, &data.name);
        line.push_str(&format!(",\"tid\":{},\"ts\":{}", data.tid, data.ts_us));
        if let Some(p) = data.parent {
            line.push_str(&format!(",\"parent\":{p}"));
        }
        push_args(&mut line, &data.args);
        line.push('}');
        route_line(line);
    }
}

fn push_args(line: &mut String, args: &[(String, String)]) {
    if args.is_empty() {
        return;
    }
    line.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_escaped(line, k);
        line.push(':');
        push_escaped(line, v);
    }
    line.push('}');
}

/// Writes a metrics-snapshot record (`{"t":"metrics","data":{...}}`) to the
/// sink and the flight ring. The Chrome converter turns the counter and
/// gauge samples inside into counter-track events; offline tools read them
/// for end-of-run registry state. No-op when nothing is recording.
pub fn emit_metrics(snapshot: &crate::metrics::Snapshot) {
    if !recording() {
        return;
    }
    let mut line = String::from("{\"t\":\"metrics\",\"ts\":");
    line.push_str(&now_us().to_string());
    line.push_str(",\"data\":");
    line.push_str(&snapshot.to_json());
    line.push('}');
    route_line(line);
}

/// Writes one counter-sample record
/// (`{"t":"counter","name":...,"ts":...,"v":...}`): a single metric value
/// at an instant, cheap enough to emit from inside a serving loop. The
/// Chrome converter renders these as counter tracks, so gauges like queue
/// depth show up in Perfetto alongside the spans they explain. No-op when
/// nothing is recording.
pub fn emit_counter(name: &str, value: f64) {
    if !recording() {
        return;
    }
    use crate::json::push_u64;
    let mut line = String::with_capacity(96);
    line.push_str("{\"t\":\"counter\",\"name\":");
    push_escaped(&mut line, name);
    line.push_str(",\"tid\":");
    push_u64(&mut line, current_tid());
    line.push_str(",\"ts\":");
    push_u64(&mut line, now_us());
    line.push_str(",\"v\":");
    crate::json::push_f64(&mut line, value);
    line.push('}');
    route_line(line);
}

/// Emits a span record with explicit timestamps, for callers that measure
/// a phase with plain clocks and decide only afterwards whether to record
/// it (the serving path's per-request sampling works this way: every
/// request is timed, only sampled or slow ones are written to the sink,
/// and the flight ring sees all of them).
///
/// `start_us` is on the [`now_us`] clock. `to_sink` gates the JSONL sink;
/// the flight ring records whenever it is enabled. Returns the span id for
/// parenting children, or 0 when nothing recorded.
pub fn emit_span_at(
    name: &str,
    start_us: u64,
    dur_us: u64,
    parent: Option<u64>,
    args: &[(&str, &str)],
    to_sink: bool,
) -> u64 {
    let sink_live = to_sink && crate::trace_enabled();
    if !sink_live && !flight::enabled() {
        return 0;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let mut line = String::with_capacity(128);
    format_span_into(
        &mut line,
        name,
        id,
        parent,
        current_tid(),
        start_us,
        dur_us,
        args,
    );
    if sink_live {
        sink::write_line(&line);
    }
    flight::record(&line);
    id
}

/// Formats one span record into `line`. `write!` into the caller's buffer
/// keeps the hot emission path allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn format_span_into(
    line: &mut String,
    name: &str,
    id: u64,
    parent: Option<u64>,
    tid: u64,
    start_us: u64,
    dur_us: u64,
    args: &[(&str, &str)],
) {
    use crate::json::push_u64;
    line.push_str("{\"t\":\"span\",\"name\":");
    push_escaped(line, name);
    line.push_str(",\"id\":");
    push_u64(line, id);
    if let Some(p) = parent {
        line.push_str(",\"parent\":");
        push_u64(line, p);
    }
    line.push_str(",\"tid\":");
    push_u64(line, tid);
    line.push_str(",\"ts\":");
    push_u64(line, start_us);
    line.push_str(",\"dur\":");
    push_u64(line, dur_us);
    if !args.is_empty() {
        line.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_escaped(line, k);
            line.push(':');
            push_escaped(line, v);
        }
        line.push('}');
    }
    line.push('}');
}

/// One span in an [`emit_span_tree_at`] batch: a named phase with
/// explicit timestamps and string args.
pub struct SpanAt<'a> {
    /// Span name (e.g. `serve.queue_wait`).
    pub name: &'a str,
    /// Start on the [`now_us`] clock.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// String args rendered into the record's `args` object.
    pub args: &'a [(&'a str, &'a str)],
}

thread_local! {
    /// Reused per-thread buffer for [`emit_span_tree_at`]: the serving
    /// path emits one fixed tree per request, and reusing the buffer makes
    /// that emission allocation-free in steady state.
    static TREE_BUF: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Emits a parent span and its children as one batch: all records are
/// formatted into one per-thread buffer and hit the sink as a single
/// block write under a single lock instead of one per span — the
/// difference between tracing being nearly free and tracing being a tax
/// when a serving loop emits a fixed little tree per request. Children
/// are parented to the parent's fresh id. Same routing as
/// [`emit_span_at`]; returns the parent's id, or 0 when nothing was
/// recorded.
pub fn emit_span_tree_at(parent: &SpanAt<'_>, children: &[SpanAt<'_>], to_sink: bool) -> u64 {
    let sink_live = to_sink && crate::trace_enabled();
    if !sink_live && !flight::enabled() {
        return 0;
    }
    // One contended fetch_add for the whole tree: span ids are only
    // required to be unique, and at serving rates five separate RMWs on
    // the same cache line from every worker is measurable.
    let parent_id = NEXT_SPAN_ID.fetch_add(1 + children.len() as u64, Ordering::Relaxed);
    let tid = current_tid();
    if sink_live {
        TREE_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.clear();
            format_span_into(
                &mut buf,
                parent.name,
                parent_id,
                None,
                tid,
                parent.start_us,
                parent.dur_us,
                parent.args,
            );
            buf.push('\n');
            for (i, child) in children.iter().enumerate() {
                format_span_into(
                    &mut buf,
                    child.name,
                    parent_id + 1 + i as u64,
                    Some(parent_id),
                    tid,
                    child.start_us,
                    child.dur_us,
                    child.args,
                );
                buf.push('\n');
            }
            sink::write_block(&buf);
        });
    }
    // The whole tree goes into the flight ring as ONE record occupying one
    // slot — a request is the ring's natural post-mortem unit, so an
    // N-slot ring holds N *requests* of history. The ring keeps the
    // tree unformatted (rendering happens at dump time), which is why the
    // non-sampled common case never pays for JSONL at all.
    flight::record_tree(parent, children, tid, parent_id);
    parent_id
}
