//! Spans and instant events with monotonic timestamps and stable thread
//! ids, emitted as one JSONL record each.
//!
//! A [`Span`] measures a scope: it stamps its start on creation and emits a
//! single record with its duration when dropped. Spans nest per thread — a
//! thread-local stack tracks the open spans, so a child records its
//! parent's id without any coordination between threads. An [`Event`] marks
//! an instant and emits on drop.
//!
//! Everything here is inert unless [`crate::trace_enabled`] holds at
//! construction: an inert span is a `None` payload whose drop does nothing,
//! so instrumentation left in the hot path costs an atomic load and a
//! branch.
//!
//! ## Record formats (one JSON object per line)
//!
//! ```json
//! {"t":"span","name":"char.job","id":7,"parent":3,"tid":2,"ts":1520,"dur":880,"args":{"job":"12"}}
//! {"t":"event","name":"cache.hit","tid":1,"ts":40,"args":{"key":"9f"}}
//! {"t":"metrics","data":{...}}
//! ```
//!
//! `ts`/`dur` are microseconds since the process trace epoch (the first
//! timestamped call), matching the Chrome `trace_event` clock domain.

use crate::json::push_escaped;
use crate::sink;
use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (monotonic).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's stable trace id (sequential, assigned on first use).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

struct SpanData {
    name: String,
    id: u64,
    parent: Option<u64>,
    tid: u64,
    start_us: u64,
    args: Vec<(String, String)>,
}

/// A scoped span: created open, emitted on drop. Obtain via [`span`].
#[must_use = "a span measures its scope; dropping it immediately records nothing useful"]
pub struct Span(Option<SpanData>);

/// Opens a span named `name`. Inert (and free beyond the level check) when
/// tracing is disabled. Attach fields with [`Span::arg`]; the record is
/// emitted when the returned guard drops.
pub fn span(name: &str) -> Span {
    if !crate::trace_enabled() {
        return Span(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_parent();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span(Some(SpanData {
        name: name.to_owned(),
        id,
        parent,
        tid: current_tid(),
        start_us: now_us(),
        args: Vec::new(),
    }))
}

impl Span {
    /// Attaches a key/value field (rendered as a string). No-op on an
    /// inert span, so the value is never formatted when tracing is off —
    /// pass cheap Displays or gate expensive ones on [`crate::trace_enabled`].
    pub fn arg(mut self, key: &str, value: impl Display) -> Self {
        if let Some(data) = self.0.as_mut() {
            data.args.push((key.to_owned(), value.to_string()));
        }
        self
    }

    /// Attaches a field to a span held by reference (for args only known
    /// mid-scope).
    pub fn add_arg(&mut self, key: &str, value: impl Display) {
        if let Some(data) = self.0.as_mut() {
            data.args.push((key.to_owned(), value.to_string()));
        }
    }

    /// Whether this span is live (tracing was enabled when it opened).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.0.take() else { return };
        let dur = now_us().saturating_sub(data.start_us);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Almost always the top; rposition tolerates out-of-order drops.
            if let Some(i) = stack.iter().rposition(|&id| id == data.id) {
                stack.remove(i);
            }
        });
        let mut line = String::with_capacity(96);
        line.push_str("{\"t\":\"span\",\"name\":");
        push_escaped(&mut line, &data.name);
        line.push_str(&format!(",\"id\":{}", data.id));
        if let Some(p) = data.parent {
            line.push_str(&format!(",\"parent\":{p}"));
        }
        line.push_str(&format!(
            ",\"tid\":{},\"ts\":{},\"dur\":{dur}",
            data.tid, data.start_us
        ));
        push_args(&mut line, &data.args);
        line.push('}');
        sink::write_line(&line);
    }
}

struct EventData {
    name: String,
    tid: u64,
    ts_us: u64,
    parent: Option<u64>,
    args: Vec<(String, String)>,
}

/// An instant event: stamped at creation, emitted on drop. Obtain via
/// [`event`].
#[must_use = "an event emits when dropped; bind it or drop it explicitly after adding args"]
pub struct Event(Option<EventData>);

/// Marks an instant event named `name`, recorded inside the currently open
/// span (if any). Inert when tracing is disabled. Attach fields with
/// [`Event::arg`]; the record is emitted when the value drops.
pub fn event(name: &str) -> Event {
    if !crate::trace_enabled() {
        return Event(None);
    }
    Event(Some(EventData {
        name: name.to_owned(),
        tid: current_tid(),
        ts_us: now_us(),
        parent: current_parent(),
        args: Vec::new(),
    }))
}

impl Event {
    /// Attaches a key/value field (rendered as a string). No-op when inert.
    pub fn arg(mut self, key: &str, value: impl Display) -> Self {
        if let Some(data) = self.0.as_mut() {
            data.args.push((key.to_owned(), value.to_string()));
        }
        self
    }
}

impl Drop for Event {
    fn drop(&mut self) {
        let Some(data) = self.0.take() else { return };
        let mut line = String::with_capacity(64);
        line.push_str("{\"t\":\"event\",\"name\":");
        push_escaped(&mut line, &data.name);
        line.push_str(&format!(",\"tid\":{},\"ts\":{}", data.tid, data.ts_us));
        if let Some(p) = data.parent {
            line.push_str(&format!(",\"parent\":{p}"));
        }
        push_args(&mut line, &data.args);
        line.push('}');
        sink::write_line(&line);
    }
}

fn push_args(line: &mut String, args: &[(String, String)]) {
    if args.is_empty() {
        return;
    }
    line.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_escaped(line, k);
        line.push(':');
        push_escaped(line, v);
    }
    line.push('}');
}

/// Writes a metrics-snapshot record (`{"t":"metrics","data":{...}}`) to the
/// sink. The Chrome converter skips these; offline tools read them for
/// end-of-run registry state. No-op when tracing is disabled.
pub fn emit_metrics(snapshot: &crate::metrics::Snapshot) {
    if !crate::trace_enabled() {
        return;
    }
    let mut line = String::from("{\"t\":\"metrics\",\"ts\":");
    line.push_str(&now_us().to_string());
    line.push_str(",\"data\":");
    line.push_str(&snapshot.to_json());
    line.push('}');
    sink::write_line(&line);
}
