//! A minimal JSON value, parser, and writer.
//!
//! The observability layer is deliberately std-only, so it carries its own
//! tiny JSON implementation instead of depending on a serialization crate.
//! It is used three ways: escaping strings while *emitting* JSONL trace
//! lines, *parsing* those lines back in the Chrome-trace converter, and
//! reading benchmark baselines. The parser accepts standard JSON (objects,
//! arrays, strings with escapes including surrogate pairs, numbers, bools,
//! null); the writer emits compact JSON with deterministic key order (keys
//! keep insertion order).

use std::fmt;

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders compact JSON into `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(x) => push_f64(out, *x),
            Self::Str(s) => push_escaped(out, s),
            Self::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Self::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, k);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// The compact rendering as a fresh string.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.render(&mut s);
        s
    }
}

/// Appends `v` in decimal without going through `core::fmt` — the trace
/// emission hot path renders five integers per span record, and the
/// formatting machinery's overhead is measurable at serving rates.
pub fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap_or("0"));
}

/// Appends a JSON number. Non-finite values (which JSON cannot represent)
/// are written as `null`.
pub fn push_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral values render without a fraction so counters stay exact.
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

/// Appends `s` as a quoted, escaped JSON string. The overwhelmingly common
/// case — no character needs escaping — is a single scan and one bulk
/// append rather than a per-character loop.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
    } else {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free, ASCII-or-UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so slices on char boundaries are
                // valid UTF-8; the loop above only stops on ASCII bytes,
                // which are always boundaries.
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structured_values() {
        let text = r#"{"a":1,"b":[true,false,null],"c":{"s":"x\"y\\z\n"},"d":-2.5e3}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("c").unwrap().get("s").unwrap().as_str(),
            Some("x\"y\\z\n")
        );
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-2500.0));
        // render → parse is the identity on the value.
        let again = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = Json::parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "{} extra",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escaping_survives_controls() {
        let mut out = String::new();
        push_escaped(&mut out, "tab\there \"quoted\" \u{1}");
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("tab\there \"quoted\" \u{1}"));
    }

    #[test]
    fn numbers_render_exactly() {
        let mut s = String::new();
        push_f64(&mut s, 42.0);
        assert_eq!(s, "42");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, 0.125);
        assert_eq!(s, "0.125");
    }
}
