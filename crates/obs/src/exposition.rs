//! Prometheus text-exposition rendering (and a syntax validator) for a
//! metrics [`Snapshot`](crate::metrics::Snapshot).
//!
//! The daemon's introspection plane answers a `metrics` op with this
//! format so any Prometheus-compatible scraper can consume a snapshot
//! without a client library. The renderer emits the version-0.0.4 text
//! format: a `# TYPE` comment per family, counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`. Metric names are sanitized (`.` and every other
//! invalid character become `_`), and families are emitted in sorted
//! order — the snapshot's maps are ordered, so the output is byte-stable
//! for a given registry state.
//!
//! [`validate`] is the matching syntax checker: the CI smoke test scrapes
//! a live daemon and runs the scrape through it, so a renderer regression
//! is caught by the same build that introduced it.

use crate::metrics::Snapshot;
use std::fmt;

/// Renders a value the way Prometheus expects: plain decimal, `NaN`,
/// `+Inf`, or `-Inf`.
fn push_value(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x == f64::INFINITY {
        out.push_str("+Inf");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        out.push_str(&format!("{x}"));
    }
}

/// Maps an internal metric name (dotted, e.g. `serve.queue.depth`) to a
/// valid Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} "));
        push_value(&mut out, *v);
        out.push('\n');
    }
    for (name, h) in &snapshot.histograms {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, count) in h.counts.iter().enumerate() {
            cumulative += count;
            out.push_str(&format!("{name}_bucket{{le=\""));
            match h.bounds.get(i) {
                Some(b) => push_value(&mut out, *b),
                None => out.push_str("+Inf"),
            }
            out.push_str(&format!("\"}} {cumulative}\n"));
        }
        // A histogram registered with no observations still exposes the
        // mandatory +Inf bucket when its bounds list is empty.
        if h.counts.is_empty() {
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        }
        out.push_str(&format!("{name}_sum "));
        push_value(&mut out, h.sum);
        out.push('\n');
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// A validation failure, pointing at the offending exposition line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionError {
    /// 1-based line number in the exposition text.
    pub line: usize,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ExpositionError {}

fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_value(v: &str) -> bool {
    matches!(v, "NaN" | "+Inf" | "-Inf" | "Inf") || v.parse::<f64>().is_ok()
}

/// Validates one sample line: `name[{label="value",...}] value [timestamp]`.
fn validate_sample(line: &str) -> Result<(), String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line[open..]
                .find('}')
                .map(|i| open + i)
                .ok_or("unclosed label set")?;
            let labels = &line[open + 1..close];
            if !labels.is_empty() {
                for pair in labels.split(',') {
                    let (lname, lval) = pair.split_once('=').ok_or("label without '='")?;
                    if !is_valid_name(lname) {
                        return Err(format!("invalid label name {lname:?}"));
                    }
                    if !(lval.len() >= 2 && lval.starts_with('"') && lval.ends_with('"')) {
                        return Err(format!("label value {lval:?} is not quoted"));
                    }
                }
            }
            (&line[..open], line[close + 1..].trim())
        }
        None => {
            let (name, rest) = line
                .split_once(char::is_whitespace)
                .ok_or("sample line has no value")?;
            (name, rest.trim())
        }
    };
    if !is_valid_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let mut fields = rest.split_whitespace();
    let value = fields.next().ok_or("sample line has no value")?;
    if !is_valid_value(value) {
        return Err(format!("invalid sample value {value:?}"));
    }
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("invalid timestamp {ts:?}"));
        }
    }
    if fields.next().is_some() {
        return Err("trailing tokens after timestamp".into());
    }
    Ok(())
}

/// Validates Prometheus text-exposition syntax line by line, plus one
/// semantic rule: every `histogram` family must expose a `+Inf` bucket
/// that equals its `_count`.
///
/// # Errors
///
/// Returns [`ExpositionError`] naming the first unusable line.
pub fn validate(text: &str) -> Result<(), ExpositionError> {
    use std::collections::BTreeMap;
    let err = |line: usize, detail: String| ExpositionError { line, detail };
    let mut histograms: BTreeMap<String, (Option<u64>, Option<u64>, usize)> = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut fields = comment.split_whitespace();
            match fields.next() {
                Some("TYPE") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| err(lineno, "# TYPE without a metric name".into()))?;
                    if !is_valid_name(name) {
                        return Err(err(lineno, format!("invalid TYPE metric name {name:?}")));
                    }
                    let kind = fields
                        .next()
                        .ok_or_else(|| err(lineno, "# TYPE without a type".into()))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(err(lineno, format!("unknown metric type {kind:?}")));
                    }
                    if kind == "histogram" {
                        histograms.insert(name.to_owned(), (None, None, lineno));
                    }
                }
                Some("HELP") | Some("EOF") => {}
                // Free-form comments are legal in the text format.
                _ => {}
            }
            continue;
        }
        validate_sample(line).map_err(|detail| err(lineno, detail))?;
        // Track histogram +Inf buckets and counts for the semantic check.
        let name_end = line.find(['{', ' ', '\t']).unwrap_or(line.len());
        let name = &line[..name_end];
        if let Some(base) = name.strip_suffix("_bucket") {
            if let Some((_, inf_slot, _)) = histograms.get_mut(base) {
                if line.contains("le=\"+Inf\"") {
                    let v = line.rsplit(' ').next().and_then(|v| v.parse::<u64>().ok());
                    *inf_slot = v;
                }
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if let Some((count_slot, _, _)) = histograms.get_mut(base) {
                *count_slot = line.rsplit(' ').next().and_then(|v| v.parse::<u64>().ok());
            }
        }
    }
    for (name, (count, inf, lineno)) in &histograms {
        let inf =
            inf.ok_or_else(|| err(*lineno, format!("histogram {name} has no +Inf bucket")))?;
        let count =
            count.ok_or_else(|| err(*lineno, format!("histogram {name} has no _count sample")))?;
        if inf != count {
            return Err(err(
                *lineno,
                format!("histogram {name}: +Inf bucket {inf} != _count {count}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_all_kinds_and_validates() {
        let reg = Registry::new();
        reg.counter("serve.requests").add(42);
        reg.gauge("serve.queue.depth").set(3.0);
        let h = reg.histogram("serve.request.seconds", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.5);
        let text = render(&reg.snapshot());
        validate(&text).expect(&text);
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 42\n"));
        assert!(text.contains("serve_queue_depth 3"));
        assert!(text.contains("serve_request_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("serve_request_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_request_seconds_count 2"));
    }

    #[test]
    fn sanitizes_hostile_names() {
        assert_eq!(sanitize_name("serve.queue.depth"), "serve_queue_depth");
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert!(is_valid_name(&sanitize_name("ünïcode")));
    }

    #[test]
    fn validator_rejects_broken_syntax() {
        for (bad, why) in [
            ("metric", "no value"),
            ("metric{le=\"1\" 3", "unclosed labels"),
            ("metric{le=1} 3", "unquoted label value"),
            ("1metric 3", "name starts with a digit"),
            ("metric notanumber", "bad value"),
            ("# TYPE metric widget", "unknown type"),
            ("metric 1 notatimestamp", "bad timestamp"),
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?} ({why})");
        }
        // A histogram whose +Inf bucket disagrees with _count is semantic
        // corruption, not just bad syntax.
        let inconsistent = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"+Inf\"} 3\n",
            "h_sum 1\n",
            "h_count 4\n"
        );
        let e = validate(inconsistent).unwrap_err();
        assert!(e.detail.contains("!= _count"), "{e}");
    }

    #[test]
    fn empty_registry_renders_empty_and_valid() {
        let text = render(&Registry::new().snapshot());
        assert!(text.is_empty());
        validate(&text).unwrap();
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        let reg = Registry::new();
        reg.gauge("ratio").set(f64::INFINITY);
        let text = render(&reg.snapshot());
        assert!(text.contains("ratio +Inf"), "{text}");
        validate(&text).unwrap();
    }
}
