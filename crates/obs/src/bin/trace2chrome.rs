//! Converts a proxim JSONL trace to the Chrome `trace_event` format.
//!
//! ```text
//! trace2chrome TRACE.jsonl [-o OUT.json]
//! ```
//!
//! With no `-o`, writes next to the input with a `.chrome.json` suffix.
//! Open the result in `about:tracing` or <https://ui.perfetto.dev>.

use proxim_obs::chrome::chrome_trace;
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<PathBuf, String> {
    let mut args = std::env::args_os().skip(1);
    let mut input: Option<PathBuf> = None;
    let mut output: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        if a == "-o" || a == "--output" {
            let v = args.next().ok_or("missing path after -o")?;
            output = Some(PathBuf::from(v));
        } else if a == "-h" || a == "--help" {
            return Err("usage: trace2chrome TRACE.jsonl [-o OUT.json]".into());
        } else if input.is_none() {
            input = Some(PathBuf::from(a));
        } else {
            return Err(format!("unexpected argument {:?}", a.to_string_lossy()));
        }
    }
    let input = input.ok_or("usage: trace2chrome TRACE.jsonl [-o OUT.json]")?;
    let output = output.unwrap_or_else(|| {
        let mut name = input.as_os_str().to_owned();
        name.push(".chrome.json");
        PathBuf::from(name)
    });
    let jsonl = std::fs::read_to_string(&input)
        .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
    let chrome = chrome_trace(&jsonl).map_err(|e| format!("{}: {e}", input.display()))?;
    std::fs::write(&output, chrome)
        .map_err(|e| format!("cannot write {}: {e}", output.display()))?;
    Ok(output)
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
