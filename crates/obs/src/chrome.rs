//! Converts a JSONL trace (the [`crate::sink`] format) to the Chrome
//! `trace_event` JSON format, viewable in `about:tracing` or
//! [Perfetto](https://ui.perfetto.dev).
//!
//! Mapping: `span` records become complete events (`"ph":"X"`, carrying
//! `ts`/`dur` in microseconds on the span's thread track), `event` records
//! become thread-scoped instant events (`"ph":"i"`, `"s":"t"`), `counter`
//! records and the counter/gauge samples inside `metrics` records become
//! counter-track events (`"ph":"C"`) so queue depth and active connections
//! render as graphs alongside the spans, and `flight` dump headers are
//! skipped (they describe the dump, not the timeline). All events share
//! `pid` 1 — the trace is one process.

use crate::json::{push_escaped, push_f64, Json};
use std::fmt;

/// A conversion failure, pointing at the offending JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for ChromeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ChromeError {}

fn field_u64(v: &Json, key: &str, line: usize) -> Result<u64, ChromeError> {
    v.get(key)
        .and_then(Json::as_f64)
        .map(|x| x as u64)
        .ok_or_else(|| ChromeError {
            line,
            detail: format!("missing numeric field {key:?}"),
        })
}

fn field_str<'a>(v: &'a Json, key: &str, line: usize) -> Result<&'a str, ChromeError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ChromeError {
            line,
            detail: format!("missing string field {key:?}"),
        })
}

fn push_chrome_args(out: &mut String, record: &Json) {
    // Span/event args are {"k":"v"} string maps; ids ride along so the
    // Perfetto UI can correlate parents.
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(Json::Obj(members)) = record.get("args") {
        for (k, v) in members {
            if !first {
                out.push(',');
            }
            first = false;
            push_escaped(out, k);
            out.push(':');
            v.render(out);
        }
    }
    for key in ["id", "parent"] {
        if let Some(x) = record.get(key).and_then(Json::as_f64) {
            if !first {
                out.push(',');
            }
            first = false;
            push_escaped(out, key);
            out.push(':');
            push_f64(out, x);
        }
    }
    out.push('}');
}

/// Appends one `"ph":"C"` counter-track event. Counter tracks are
/// per-process in the trace viewer, so no `tid` is attached.
fn push_counter_event(out: &mut String, first: &mut bool, name: &str, ts: u64, v: f64) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"ph\":\"C\",\"cat\":\"counter\",\"name\":");
    push_escaped(out, name);
    out.push_str(&format!(",\"pid\":1,\"ts\":{ts},\"args\":{{\"value\":"));
    push_f64(out, v);
    out.push_str("}}");
}

/// Converts JSONL trace text to a Chrome `trace_event` document
/// (`{"traceEvents":[...]}`). Blank lines are skipped; any malformed line
/// fails the conversion with its line number.
///
/// # Errors
///
/// Returns [`ChromeError`] naming the first unusable line.
pub fn chrome_trace(jsonl: &str) -> Result<String, ChromeError> {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (i, raw) in jsonl.lines().enumerate() {
        let lineno = i + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let record = Json::parse(raw).map_err(|e| ChromeError {
            line: lineno,
            detail: e.to_string(),
        })?;
        let kind = field_str(&record, "t", lineno)?;
        match kind {
            "span" => {
                let name = field_str(&record, "name", lineno)?;
                let tid = field_u64(&record, "tid", lineno)?;
                let ts = field_u64(&record, "ts", lineno)?;
                let dur = field_u64(&record, "dur", lineno)?;
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"ph\":\"X\",\"cat\":\"span\",\"name\":");
                push_escaped(&mut out, name);
                out.push_str(&format!(
                    ",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}"
                ));
                push_chrome_args(&mut out, &record);
                out.push('}');
            }
            "event" => {
                let name = field_str(&record, "name", lineno)?;
                let tid = field_u64(&record, "tid", lineno)?;
                let ts = field_u64(&record, "ts", lineno)?;
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"event\",\"name\":");
                push_escaped(&mut out, name);
                out.push_str(&format!(",\"pid\":1,\"tid\":{tid},\"ts\":{ts}"));
                push_chrome_args(&mut out, &record);
                out.push('}');
            }
            "counter" => {
                let name = field_str(&record, "name", lineno)?;
                let ts = field_u64(&record, "ts", lineno)?;
                let v = record.get("v").and_then(Json::as_f64).unwrap_or(0.0);
                push_counter_event(&mut out, &mut first, name, ts, v);
            }
            // Registry snapshots: the scalar samples inside become one
            // counter-track point each at the snapshot's timestamp, so a
            // run that periodically emits metrics gets step graphs.
            "metrics" => {
                let ts = record.get("ts").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                if let Some(data) = record.get("data") {
                    for group in ["counters", "gauges"] {
                        if let Some(Json::Obj(members)) = data.get(group) {
                            for (name, v) in members {
                                let Some(v) = v.as_f64() else { continue };
                                push_counter_event(&mut out, &mut first, name, ts, v);
                            }
                        }
                    }
                }
            }
            // Flight-recorder dump headers describe the dump, not the
            // timeline — a dump converts like any other trace.
            "flight" => {}
            other => {
                return Err(ChromeError {
                    line: lineno,
                    detail: format!("unknown record type {other:?}"),
                });
            }
        }
    }
    out.push_str("]}");
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn converts_spans_events_and_empty_metrics() {
        let jsonl = concat!(
            "{\"t\":\"span\",\"name\":\"tran\",\"id\":1,\"tid\":1,\"ts\":10,\"dur\":90,\"args\":{\"steps\":\"42\"}}\n",
            "\n",
            "{\"t\":\"event\",\"name\":\"cache.hit\",\"tid\":2,\"ts\":5,\"parent\":1}\n",
            "{\"t\":\"metrics\",\"ts\":100,\"data\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}}\n",
        );
        let chrome = chrome_trace(jsonl).unwrap();
        let doc = Json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2, "an empty metrics record adds no events");
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(90.0));
        assert_eq!(
            events[0]
                .get("args")
                .unwrap()
                .get("steps")
                .unwrap()
                .as_str(),
            Some("42")
        );
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("parent")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn counter_records_and_metrics_samples_become_counter_tracks() {
        let jsonl = concat!(
            "{\"t\":\"counter\",\"name\":\"serve.queue.depth\",\"tid\":1,\"ts\":40,\"v\":3}\n",
            "{\"t\":\"metrics\",\"ts\":100,\"data\":{\"counters\":{\"serve.requests\":7},",
            "\"gauges\":{\"serve.connections.active\":2.5},\"histograms\":{}}}\n",
            "{\"t\":\"flight\",\"recorded\":12,\"capacity\":8,\"dropped\":4}\n",
        );
        let chrome = chrome_trace(jsonl).unwrap();
        let doc = Json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3, "flight headers are skipped: {chrome}");
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("C"));
        }
        assert_eq!(
            events[0].get("name").unwrap().as_str(),
            Some("serve.queue.depth")
        );
        assert_eq!(
            events[0]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        assert_eq!(events[1].get("ts").unwrap().as_f64(), Some(100.0));
        assert_eq!(
            events[2]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(2.5)
        );
    }

    #[test]
    fn reports_bad_lines_with_position() {
        let err = chrome_trace("{\"t\":\"span\"}\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = chrome_trace(
            "{\"t\":\"span\",\"name\":\"x\",\"tid\":1,\"ts\":0,\"dur\":1}\nnot json\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        let err = chrome_trace("{\"t\":\"mystery\"}\n").unwrap_err();
        assert!(err.detail.contains("unknown record type"));
    }
}
