//! Vendored stand-in for the `serde_derive` proc macros.
//!
//! The build environment is fully offline (see EXPERIMENTS.md), so the real
//! `serde_derive` — and its `syn`/`quote` dependency tree — cannot be
//! fetched. This crate re-implements the two derives against the reduced
//! data model in the vendored `serde` crate: every value serializes through
//! an in-memory [`Value`] tree, so the derives only need to emit field
//! pushes and match arms, not a full visitor state machine.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! - structs with named fields (no generics),
//! - enums with unit and tuple variants (externally tagged, like serde),
//! - the `#[serde(with = "path")]` field attribute.
//!
//! Anything else panics at macro-expansion time with a clear message, which
//! is the correct failure mode for a deliberately narrow shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct field and its optional `#[serde(with = "...")]` override.
struct Field {
    name: String,
    with: Option<String>,
}

/// An enum variant: unit (`arity == 0`) or tuple (`arity >= 1`).
struct Variant {
    name: String,
    arity: usize,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes and visibility until the `struct`/`enum` keyword.
    let kind = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute body: `[...]`.
                it.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional `pub(crate)` / `pub(super)` path group.
                    if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        it.next();
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                } else {
                    panic!("serde_derive shim: unexpected keyword `{s}` before item");
                }
            }
            other => panic!("serde_derive shim: unexpected token before item: {other:?}"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    let body = loop {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic types are not supported (`{name}`)")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple structs are not supported (`{name}`)")
            }
            Some(_) => continue,
            None => {
                panic!("serde_derive shim: `{name}` has no braced body (unit structs unsupported)")
            }
        }
    };
    let body = if kind == "struct" {
        Body::Struct(parse_fields(body))
    } else {
        Body::Enum(parse_variants(body))
    };
    Item { name, body }
}

/// Extracts `with = "path"` from a `serde(...)` attribute body, ignoring
/// every other attribute (doc comments, `derive`, ...).
fn parse_serde_with(stream: TokenStream) -> Option<String> {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let group = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde_derive shim: malformed serde attribute: {other:?}"),
    };
    let toks: Vec<TokenTree> = group.into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if key.to_string() == "with" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            let path = raw.trim_matches('"').to_string();
            assert!(
                raw.len() >= 2 && raw.starts_with('"') && raw.ends_with('"'),
                "serde_derive shim: `with` expects a string literal, got {raw}"
            );
            Some(path)
        }
        other => {
            panic!("serde_derive shim: only `#[serde(with = \"...\")]` is supported, got {other:?}")
        }
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Field attributes.
        let mut with = None;
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if let Some(w) = parse_serde_with(g.stream()) {
                        with = Some(w);
                    }
                }
                other => panic!("serde_derive shim: malformed attribute: {other:?}"),
            }
        }
        // Visibility.
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                it.next();
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{name}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && depth == 0 {
                        it.next();
                        break;
                    }
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    }
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
            }
        }
        fields.push(Field { name, with });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            it.next(); // attribute body
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let arity = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                it.next();
                count_tuple_fields(inner)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive shim: struct variants are not supported (`{name}`)")
            }
            _ => 0,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, arity });
    }
    variants
}

/// Counts the fields of a tuple variant: top-level commas (outside `<...>`)
/// plus one, ignoring a trailing comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = true;
    let mut any = false;
    for t in stream {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        return 0;
    }
    commas + 1 - usize::from(trailing_comma)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::with_capacity({});\n",
                fields.len()
            );
            for f in fields {
                let fname = &f.name;
                match &f.with {
                    Some(path) => s.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{fname}\"), \
                         {path}::serialize(&self.{fname}, \
                         ::serde::ValueSerializer::<S::Error>::new())?));\n"
                    )),
                    None => s.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{fname}\"), \
                         ::serde::to_value::<_, S::Error>(&self.{fname})?));\n"
                    )),
                }
            }
            s.push_str("__serializer.collect_value(::serde::Value::Object(__fields))\n");
            s
        }
        Body::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                if v.arity == 0 {
                    s.push_str(&format!(
                        "{name}::{vname} => __serializer.collect_value(\
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\"))),\n"
                    ));
                } else {
                    let binders: Vec<String> = (0..v.arity).map(|i| format!("__f{i}")).collect();
                    let payload = if v.arity == 1 {
                        "::serde::to_value::<_, S::Error>(__f0)?".to_string()
                    } else {
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::to_value::<_, S::Error>({b})?"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                    };
                    s.push_str(&format!(
                        "{name}::{vname}({binds}) => __serializer.collect_value(\
                         ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), {payload})])),\n",
                        binds = binders.join(", ")
                    ));
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, __serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = format!(
                "let mut __obj = match __value {{\n\
                 ::serde::Value::Object(__o) => __o,\n\
                 _ => return ::core::result::Result::Err(<D::Error as ::serde::Error>::custom(\
                 ::std::string::String::from(\"expected an object for struct `{name}`\"))),\n\
                 }};\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let fname = &f.name;
                match &f.with {
                    Some(path) => s.push_str(&format!(
                        "{fname}: {path}::deserialize(::serde::ValueDeserializer::<D::Error>::new(\
                         ::serde::take_field::<D::Error>(&mut __obj, \"{fname}\")?))?,\n"
                    )),
                    None => s.push_str(&format!(
                        "{fname}: ::serde::from_value::<_, D::Error>(\
                         ::serde::take_field::<D::Error>(&mut __obj, \"{fname}\")?)?,\n"
                    )),
                }
            }
            s.push_str("})\n");
            s
        }
        Body::Enum(variants) => {
            let unknown = format!(
                "::core::result::Result::Err(<D::Error as ::serde::Error>::custom(\
                 ::std::string::String::from(\"unknown variant for enum `{name}`\")))"
            );
            let mut unit_arms = String::new();
            let mut tuple_arms = String::new();
            for v in variants {
                let vname = &v.name;
                if v.arity == 0 {
                    unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    ));
                } else if v.arity == 1 {
                    tuple_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::from_value::<_, D::Error>(__v)?)),\n"
                    ));
                } else {
                    let mut inner = format!(
                        "\"{vname}\" => match __v {{\n\
                         ::serde::Value::Array(mut __a) if __a.len() == {arity} => {{\n",
                        arity = v.arity
                    );
                    // Pop in reverse so bindings come out in field order.
                    for i in (0..v.arity).rev() {
                        inner.push_str(&format!(
                            "let __f{i} = ::serde::from_value::<_, D::Error>(\
                             __a.pop().expect(\"length checked\"))?;\n"
                        ));
                    }
                    let binders: Vec<String> = (0..v.arity).map(|i| format!("__f{i}")).collect();
                    inner.push_str(&format!(
                        "::core::result::Result::Ok({name}::{vname}({}))\n}}\n_ => {unknown},\n}},\n",
                        binders.join(", ")
                    ));
                    tuple_arms.push_str(&inner);
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}_ => {unknown},\n}},\n\
                 ::serde::Value::Object(mut __o) if __o.len() == 1 => {{\n\
                 let (__k, __v) = __o.pop().expect(\"length checked\");\n\
                 match __k.as_str() {{\n{tuple_arms}_ => {unknown},\n}}\n}}\n\
                 _ => {unknown},\n}}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(__deserializer: D) \
         -> ::core::result::Result<Self, D::Error> {{\n\
         let __value = __deserializer.take_value()?;\n{body}}}\n}}\n"
    )
}
