//! Vendored offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`Value`] tree to compact JSON text
//! and parses it back. The feature set is exactly what this workspace needs:
//! finite numbers, strings, booleans, nulls, arrays, and objects, plus a
//! pretty printer for human-facing report files.
//!
//! Floats are written with Rust's shortest round-trip formatting. An `f64`
//! whose value is integral prints without a fractional part (`1` rather than
//! `1.0`); the numeric `Deserialize` impls coerce integers back into float
//! fields, so round-trips are lossless. Non-finite floats are a
//! serialization error, as in real serde_json.

use serde::{DeserializeOwned, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::Error for Error {
    fn custom(msg: String) -> Self {
        Self { msg }
    }
}

/// Serializes a value to compact JSON (no whitespace), field order preserved.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::to_value::<T, Error>(value)?;
    let mut out = String::new();
    write_value(&mut out, &tree)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::to_value::<T, Error>(value)?;
    let mut out = String::new();
    write_value_pretty(&mut out, &tree, 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let tree = parse_value_complete(text)?;
    serde::from_value::<T, Error>(tree)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_f64(out: &mut String, x: f64) -> Result<(), Error> {
    if !x.is_finite() {
        return Err(Error::new(format!("cannot serialize non-finite float {x}")));
    }
    out.push_str(&format!("{x}"));
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => write_f64(out, *x)?,
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) -> Result<(), Error> {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_value(out, other)?,
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting the parser accepts. [`Parser::parse_value`]
/// recurses per `[`/`{`, so unbounded depth lets a few kilobytes of
/// `[[[[…` overflow the thread stack; honest model files nest a handful
/// of levels.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.parse_value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.nested(Self::parse_object),
            b'[' => self.nested(Self::parse_array),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn nested(&mut self, f: fn(&mut Self) -> Result<Value, Error>) -> Result<Value, Error> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(Error::new(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.skip_whitespace();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error::new(format!(
                "expected a string at byte {}",
                self.pos
            )));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate escape"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the full character through.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated utf-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid utf-8 in string"))?,
                    );
                    self.pos = end;
                }
                b if b < 0x20 => return Err(Error::new("unescaped control character")),
                b => out.push(b as char),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::F64(x))
        } else if text.starts_with('-') {
            let i: i64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::I64(i))
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::U64(u)),
                // Integers beyond u64 fall back to float, like serde_json's
                // arbitrary-precision-off behavior.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, Error> {
    match first {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error::new("invalid utf-8 lead byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string("hi \"there\"").unwrap(), "\"hi \\\"there\\\"\"");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<f64>> = vec![Some(1.0), None, Some(2.25e-12)];
        let json = to_string(&v).unwrap();
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let t: (f64, f64) = (1.0, -2.0);
        let back: (f64, f64) = from_str(&to_string(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn float_shortest_repr_roundtrips_exactly() {
        for &x in &[1.0e-12, 0.1 + 0.2, f64::MAX, 5e-324, -3.7e18] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} failed to round-trip");
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1.5 garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // Within the limit the parser accepts the nesting (the subsequent
        // type mapping fails, but not with the depth error).
        let shallow = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        let err = from_str::<f64>(&shallow).unwrap_err();
        assert!(!err.to_string().contains("nesting"), "{err}");
        // A few kilobytes of `[[[[…` must fail typed, not blow the stack.
        let deep = "[".repeat(100_000);
        let err = from_str::<f64>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(from_str::<f64>(&deep_obj).is_err());
    }

    #[test]
    fn nested_value_pretty_print_parses_back() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("nand2".to_string())),
            (
                "grid".to_string(),
                Value::Array(vec![Value::F64(1e-12), Value::U64(3), Value::Null]),
            ),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v).unwrap();
        // Rust float Display is positional (no exponent), shortest round-trip.
        assert_eq!(
            compact,
            "{\"name\":\"nand2\",\"grid\":[0.000000000001,3,null]}"
        );
        let mut pretty = String::new();
        write_value_pretty(&mut pretty, &v, 0).unwrap();
        let reparsed = parse_value_complete(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }
}
