//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and the crates.io mirror is
//! unreachable (see EXPERIMENTS.md), so the real `serde` cannot be fetched.
//! This crate keeps the workspace's public surface — `Serialize`,
//! `Deserialize`, `Serializer`, `Deserializer`, and the two derive macros —
//! source-compatible for everything the workspace actually uses, but routes
//! all data through one concrete in-memory [`Value`] tree instead of serde's
//! visitor machinery. `serde_json` (also vendored) renders that tree to and
//! from JSON text.
//!
//! Design notes:
//!
//! - [`Serializer::collect_value`] replaces the whole `serialize_*` method
//!   family: a `Serialize` impl builds a [`Value`] and hands it over. The
//!   generic signatures (`fn serialize<S: Serializer>`) stay identical, so
//!   hand-written helpers like the `edge_serde` module compile unchanged.
//! - [`Deserializer::take_value`] is the mirror image: a `Deserialize` impl
//!   takes the [`Value`] and destructures it.
//! - Numbers keep their integer/float identity in the tree ([`Value::U64`],
//!   [`Value::I64`], [`Value::F64`]) and the numeric `Deserialize` impls
//!   coerce between them, so `1` parses back into an `f64` field just like
//!   serde_json would.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::marker::PhantomData;

/// The in-memory data tree every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (field order of the struct).
    Object(Vec<(String, Value)>),
}

/// The error-construction hook shared by serialization and deserialization,
/// standing in for both `serde::ser::Error` and `serde::de::Error`.
pub trait Error: Sized {
    fn custom(msg: String) -> Self;
}

pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    /// Consumes the fully-built value tree.
    fn collect_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

pub trait Deserializer<'de>: Sized {
    type Error: Error;
    /// Surrenders the value tree for destructuring.
    fn take_value(self) -> Result<Value, Self::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializable from any lifetime — all types in this workspace are owned.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The one [`Serializer`]: returns the built [`Value`] unchanged.
pub struct ValueSerializer<E> {
    _marker: PhantomData<fn() -> E>,
}

impl<E> ValueSerializer<E> {
    pub fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<E> Default for ValueSerializer<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Error> Serializer for ValueSerializer<E> {
    type Ok = Value;
    type Error = E;
    fn collect_value(self, value: Value) -> Result<Value, E> {
        Ok(value)
    }
}

/// The one [`Deserializer`]: hands out a stored [`Value`].
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    pub fn new(value: Value) -> Self {
        Self {
            value,
            _marker: PhantomData,
        }
    }
}

impl<E: Error> Deserializer<'static> for ValueDeserializer<E> {
    type Error = E;
    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized, E: Error>(value: &T) -> Result<Value, E> {
    value.serialize(ValueSerializer::<E>::new())
}

/// Deserializes any owned value out of a [`Value`] tree.
pub fn from_value<T: DeserializeOwned, E: Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(value))
}

/// Removes the named field from an object's pairs (derive-internal).
pub fn take_field<E: Error>(obj: &mut Vec<(String, Value)>, name: &str) -> Result<Value, E> {
    match obj.iter().position(|(k, _)| k == name) {
        Some(i) => Ok(obj.swap_remove(i).1),
        None => Err(E::custom(format!("missing field `{name}`"))),
    }
}

fn type_error<T, E: Error>(expected: &str, got: &Value) -> Result<T, E> {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::I64(_) | Value::U64(_) => "an integer",
        Value::F64(_) => "a float",
        Value::Str(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    };
    Err(E::custom(format!("expected {expected}, found {kind}")))
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_value(Value::Bool(*self))
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.collect_value(Value::U64(*self as u64))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.collect_value(Value::I64(*self as i64))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_value(Value::F64(f64::from(*self)))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.collect_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

fn serialize_seq<'a, T, S, I>(iter: I, serializer: S) -> Result<S::Ok, S::Error>
where
    T: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = &'a T>,
{
    let mut out = Vec::new();
    for item in iter {
        out.push(to_value::<T, S::Error>(item)?);
    }
    serializer.collect_value(Value::Array(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(self.iter(), serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_seq(self.iter(), serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.collect_value(Value::Array(vec![
                    $(to_value::<$t, S::Error>(&self.$idx)?),+
                ]))
            }
        }
    )+};
}
serialize_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and containers
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => type_error("a boolean", &other),
        }
    }
}

fn value_to_u64<E: Error>(v: Value) -> Result<u64, E> {
    match v {
        Value::U64(u) => Ok(u),
        Value::I64(i) if i >= 0 => Ok(i as u64),
        other => type_error("an unsigned integer", &other),
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let u = value_to_u64::<D::Error>(deserializer.take_value()?)?;
                <$t>::try_from(u)
                    .map_err(|_| D::Error::custom(format!("integer {u} out of range")))
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let i = match deserializer.take_value()? {
                    Value::I64(i) => i,
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| D::Error::custom(format!("integer {u} out of range")))?,
                    other => return type_error("a signed integer", &other),
                };
                <$t>::try_from(i)
                    .map_err(|_| D::Error::custom(format!("integer {i} out of range")))
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::F64(x) => Ok(x),
            Value::I64(i) => Ok(i as f64),
            Value::U64(u) => Ok(u as f64),
            other => type_error("a number", &other),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => type_error("a string", &other),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(from_value::<T, D::Error>(v)?)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

fn value_to_array<E: Error>(v: Value) -> Result<Vec<Value>, E> {
    match v {
        Value::Array(a) => Ok(a),
        other => type_error("an array", &other),
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = value_to_array::<D::Error>(deserializer.take_value()?)?;
        items.into_iter().map(from_value::<T, D::Error>).collect()
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = value_to_array::<D::Error>(deserializer.take_value()?)?;
        if items.len() != N {
            return Err(D::Error::custom(format!(
                "expected an array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .into_iter()
            .map(from_value::<T, D::Error>)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| D::Error::custom("array length changed during conversion".to_string()))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal, $($t:ident),+)),+ $(,)?) => {$(
        impl<'de, $($t: DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let items = value_to_array::<D::Error>(deserializer.take_value()?)?;
                if items.len() != $len {
                    return Err(D::Error::custom(format!(
                        "expected a tuple of length {}, found {}", $len, items.len()
                    )));
                }
                let mut it = items.into_iter();
                Ok(($(from_value::<$t, D::Error>(
                    it.next().expect("length checked")
                )?,)+))
            }
        }
    )+};
}
deserialize_tuple!(
    (1, T0),
    (2, T0, T1),
    (3, T0, T1, T2),
    (4, T0, T1, T2, T3),
    (5, T0, T1, T2, T3, T4),
    (6, T0, T1, T2, T3, T4, T5),
);
