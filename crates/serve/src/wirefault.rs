//! Deterministic wire-layer fault injection.
//!
//! Extends the [`proxim_spice::faultpoint`] discipline from the solver to
//! the socket boundary: behind the `fault-injection` feature, tests can
//! make the server tear response frames mid-write (a crashing or
//! byte-miserly peer) and stall its reads (a slow-sending client), so the
//! robustness suite can prove that torn frames surface as *typed*
//! truncation errors on the receiving side and that stalled I/O is bounded
//! by the socket timeouts rather than wedging a connection thread forever.
//!
//! Decisions are drawn from the same splitmix64 stream family as the
//! solver injector, seeded by the configured seed plus the connection
//! index — run-intrinsic, never wall clock — so a faulted run replays
//! identically. With the feature disabled (the default) every hook
//! compiles to a constant no-op.

use std::time::Duration;

#[cfg(feature = "fault-injection")]
use proxim_spice::faultpoint::{splitmix64, unit};
#[cfg(feature = "fault-injection")]
use std::sync::{Mutex, PoisonError};

/// Wire-fault configuration. All rates are probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaultConfig {
    /// Per-response probability that the frame write is torn: only a
    /// prefix of the bytes is sent and the connection is dropped.
    pub torn_write_rate: f64,
    /// Per-read probability that a stall of [`Self::slow_read`] is
    /// injected before the read proceeds.
    pub slow_read_rate: f64,
    /// The injected stall duration.
    pub slow_read: Duration,
    /// Seed mixed into every per-connection stream.
    pub seed: u64,
}

impl WireFaultConfig {
    /// The inert configuration: every rate zero.
    pub const DISARMED: Self = Self {
        torn_write_rate: 0.0,
        slow_read_rate: 0.0,
        slow_read: Duration::ZERO,
        seed: 0,
    };

    /// Whether any wire fault can ever fire under this configuration.
    pub fn is_armed(&self) -> bool {
        self.torn_write_rate > 0.0 || self.slow_read_rate > 0.0
    }
}

impl Default for WireFaultConfig {
    fn default() -> Self {
        Self::DISARMED
    }
}

#[cfg(feature = "fault-injection")]
static CONFIG: Mutex<WireFaultConfig> = Mutex::new(WireFaultConfig::DISARMED);

/// Installs a process-global wire-fault configuration. Global state: tests
/// that arm it serialize on their own lock and [`disarm`] when done.
#[cfg(feature = "fault-injection")]
pub fn configure(cfg: WireFaultConfig) {
    *CONFIG.lock().unwrap_or_else(PoisonError::into_inner) = cfg;
}

/// No-op stub: without the `fault-injection` feature nothing is installed.
#[cfg(not(feature = "fault-injection"))]
pub fn configure(_cfg: WireFaultConfig) {}

/// Resets the process-global configuration to [`WireFaultConfig::DISARMED`].
pub fn disarm() {
    configure(WireFaultConfig::DISARMED);
}

/// The currently installed configuration.
#[cfg(feature = "fault-injection")]
pub fn current() -> WireFaultConfig {
    *CONFIG.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Always [`WireFaultConfig::DISARMED`] without the `fault-injection`
/// feature.
#[cfg(not(feature = "fault-injection"))]
pub fn current() -> WireFaultConfig {
    WireFaultConfig::DISARMED
}

#[cfg(feature = "fault-injection")]
struct Armed {
    cfg: WireFaultConfig,
    state: u64,
}

/// A per-connection stream of wire-fault decisions. Disarmed (or
/// feature-off) streams compile to constant no-ops.
pub struct WireFaultStream {
    #[cfg(feature = "fault-injection")]
    armed: Option<Armed>,
}

#[cfg(feature = "fault-injection")]
impl WireFaultStream {
    /// Opens the stream for the `index`-th accepted connection.
    pub fn for_connection(index: u64) -> Self {
        let cfg = current();
        if !cfg.is_armed() {
            return Self { armed: None };
        }
        let state = cfg.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(1);
        Self {
            armed: Some(Armed { cfg, state }),
        }
    }

    /// Whether (and where) the next `frame_len`-byte response write should
    /// be torn: `Some(keep)` means send only the first `keep` bytes and
    /// drop the connection. `keep` is always strictly inside the frame, so
    /// the tear is visible to the peer as a typed truncation.
    pub fn torn_write(&mut self, frame_len: usize) -> Option<usize> {
        let a = self.armed.as_mut()?;
        if frame_len == 0 || a.cfg.torn_write_rate <= 0.0 {
            return None;
        }
        if unit(&mut a.state) < a.cfg.torn_write_rate {
            Some((splitmix64(&mut a.state) % frame_len as u64) as usize)
        } else {
            None
        }
    }

    /// The stall to inject before the next read, if any.
    pub fn read_delay(&mut self) -> Option<Duration> {
        let a = self.armed.as_mut()?;
        if a.cfg.slow_read_rate > 0.0 && unit(&mut a.state) < a.cfg.slow_read_rate {
            Some(a.cfg.slow_read)
        } else {
            None
        }
    }
}

#[cfg(not(feature = "fault-injection"))]
impl WireFaultStream {
    /// Opens the (inert) stream for the `index`-th accepted connection.
    #[inline]
    pub fn for_connection(_index: u64) -> Self {
        Self {}
    }

    /// Never tears without the `fault-injection` feature.
    #[inline]
    pub fn torn_write(&mut self, _frame_len: usize) -> Option<usize> {
        None
    }

    /// Never stalls without the `fault-injection` feature.
    #[inline]
    pub fn read_delay(&mut self) -> Option<Duration> {
        None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_stream_is_inert() {
        assert!(!WireFaultConfig::DISARMED.is_armed());
        let mut s = WireFaultStream::for_connection(7);
        for _ in 0..100 {
            assert!(s.torn_write(512).is_none());
            assert!(s.read_delay().is_none());
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn armed_stream_replays_deterministically() {
        configure(WireFaultConfig {
            torn_write_rate: 0.5,
            slow_read_rate: 0.25,
            slow_read: Duration::from_millis(5),
            seed: 99,
        });
        let draw = |index: u64| -> Vec<Option<usize>> {
            let mut s = WireFaultStream::for_connection(index);
            (0..200).map(|_| s.torn_write(100)).collect()
        };
        let a = draw(3);
        assert_eq!(a, draw(3), "same connection index must replay");
        assert_ne!(a, draw(4), "different connections get different fates");
        let tears = a.iter().filter(|t| t.is_some()).count();
        assert!((60..140).contains(&tears), "~50% of 200, got {tears}");
        assert!(
            a.iter().flatten().all(|&keep| keep < 100),
            "a tear always keeps strictly less than the frame"
        );
        disarm();
        assert!(!current().is_armed());
    }
}
