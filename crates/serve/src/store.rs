//! The checksummed binary model store.
//!
//! A served library must load fast and fail *loud*: a torn or bit-rotted
//! entry has to be detected before a single query is answered from it.
//! Each entry is one `<name>.pxm` file — a sectioned binary container in
//! which every section carries its own length and FNV-1a checksum
//! envelope:
//!
//! ```text
//! magic  "PXMSTOR1"                     8 bytes
//! u32    section count                  little-endian
//! per section:
//!   u32  section id                     (1 = meta, 2 = model)
//!   u64  payload length in bytes
//!   u64  FNV-1a 64 of the payload
//!   [u8] payload
//! ```
//!
//! The *meta* section is a small JSON object (`name`, `format`, cell input
//! count) that can be read without decoding the model; the *model* section
//! is the model's canonical JSON, revalidated on load through
//! [`ProximityModel::from_json`] (size cap, non-finite rejection,
//! structural `validate()`). The checksummed framing detects torn and
//! corrupt files before the payload parser ever runs; the JSON payload
//! keeps the bytes debuggable and reuses the hardened model codec.
//!
//! Writes go through the crash-consistent
//! [`atomic_write`](proxim_model::persist::atomic_write) path (same-dir
//! temp file + fsync + rename), so a crash — including `SIGKILL` mid-write,
//! which `tests/chaos.rs` fires for real — leaves either the complete old
//! entry or the complete new entry, never a prefix. Entries that fail any
//! check at load are quarantined aside under the model-cache convention:
//! renamed to `<file>.<content-hash>.quarantined` so the evidence survives
//! (and repeated corruption events cannot overwrite each other), counted,
//! and the rest of the library keeps serving.

use crate::diskfault::{self, DiskError, DiskFaultKind};
use proxim_model::persist::{fnv1a_64, MAX_MODEL_JSON_BYTES};
use proxim_model::{ModelError, ProximityModel};
use proxim_obs::json::{push_escaped, Json};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// First bytes of every store entry.
pub const STORE_MAGIC: &[u8; 8] = b"PXMSTOR1";

/// Section id of the metadata section.
pub const SECTION_META: u32 = 1;
/// Section id of the model-payload section.
pub const SECTION_MODEL: u32 = 2;

/// Upper bound on sections per entry; ours have exactly two, and a hostile
/// header must not be able to request millions.
const MAX_SECTIONS: u32 = 16;

/// Store format version, recorded in the meta section.
const STORE_FORMAT: u32 = 1;

/// File extension of a live store entry.
pub const ENTRY_EXT: &str = "pxm";

/// What went wrong while reading or writing a store entry.
///
/// Every variant is a *typed* outcome: corrupt bytes become an error the
/// caller can quarantine on, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem failure.
    Io {
        /// The rendered I/O error.
        detail: String,
    },
    /// The device is out of space (`ENOSPC`): a *typed* write failure the
    /// daemon degrades on — reads and already-loaded models keep serving.
    DiskFull {
        /// The rendered I/O error.
        detail: String,
    },
    /// The model name is not storable (empty, too long, or containing
    /// characters outside `[A-Za-z0-9_-]`).
    BadName {
        /// The offending name.
        name: String,
    },
    /// The file does not start with [`STORE_MAGIC`].
    BadMagic,
    /// The file ended before the advertised structure did — the signature
    /// of a torn write (which the atomic path prevents) or truncation at
    /// rest.
    Truncated {
        /// What was being read when the bytes ran out.
        detail: String,
    },
    /// A section's payload does not match its checksum envelope.
    Checksum {
        /// The section id whose envelope failed.
        section: u32,
    },
    /// The container structure is inconsistent (unknown section layout,
    /// oversized advertisement, duplicate or missing sections, meta that
    /// does not parse).
    Malformed {
        /// What was inconsistent.
        detail: String,
    },
    /// The model payload decoded but failed the model codec's own gates
    /// (size cap, JSON syntax, non-finite entries, structural validation).
    Model(ModelError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { detail } => write!(f, "store I/O error: {detail}"),
            Self::DiskFull { detail } => write!(f, "store disk full: {detail}"),
            Self::BadName { name } => write!(
                f,
                "unstorable model name {name:?} (want 1-64 chars of [A-Za-z0-9_-])"
            ),
            Self::BadMagic => write!(f, "not a proxim model store entry (bad magic)"),
            Self::Truncated { detail } => write!(f, "store entry truncated: {detail}"),
            Self::Checksum { section } => {
                write!(f, "store entry section {section} failed its checksum")
            }
            Self::Malformed { detail } => write!(f, "store entry malformed: {detail}"),
            Self::Model(e) => write!(f, "store entry model rejected: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<DiskError> for StoreError {
    fn from(e: DiskError) -> Self {
        match e.kind {
            DiskFaultKind::NoSpace => Self::DiskFull { detail: e.detail },
            DiskFaultKind::Io => Self::Io { detail: e.detail },
        }
    }
}

fn io_err(e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        detail: e.to_string(),
    }
}

/// Whether `name` may name a store entry: 1–64 characters, each
/// alphanumeric, `_`, or `-`. Names arrive from the untrusted wire (query
/// routing) and from operator CLIs (imports), so the same bound guards
/// both paths — and keeps every entry a plain single-component filename.
pub fn valid_name(name: &str) -> bool {
    (1..=64).contains(&name.len())
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Serializes one `(name, model)` pair into the sectioned container.
///
/// # Errors
///
/// Returns [`StoreError::BadName`] for unstorable names and
/// [`StoreError::Model`] if the model cannot serialize.
pub fn encode_entry(name: &str, model: &ProximityModel) -> Result<Vec<u8>, StoreError> {
    if !valid_name(name) {
        return Err(StoreError::BadName { name: name.into() });
    }
    let mut meta = String::from("{\"format\":");
    meta.push_str(&STORE_FORMAT.to_string());
    meta.push_str(",\"name\":");
    push_escaped(&mut meta, name);
    meta.push_str(",\"inputs\":");
    meta.push_str(&model.cell().input_count().to_string());
    meta.push('}');
    let model_json = model.to_json()?;

    let mut out = Vec::with_capacity(meta.len() + model_json.len() + 64);
    out.extend_from_slice(STORE_MAGIC);
    out.extend_from_slice(&2u32.to_le_bytes());
    for (id, payload) in [
        (SECTION_META, meta.as_bytes()),
        (SECTION_MODEL, model_json.as_bytes()),
    ] {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    Ok(out)
}

fn take<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &str,
) -> Result<&'a [u8], StoreError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or(StoreError::Truncated {
            detail: format!("{what} needs {n} more bytes"),
        })?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

fn le_u32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32, StoreError> {
    let b = take(bytes, pos, 4, what)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn le_u64(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64, StoreError> {
    let b = take(bytes, pos, 8, what)?;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Decodes a container produced by [`encode_entry`], verifying every
/// section envelope and revalidating the model payload.
///
/// # Errors
///
/// A typed [`StoreError`] for every way the bytes can be wrong; callers
/// quarantine on any of them.
pub fn decode_entry(bytes: &[u8]) -> Result<(String, ProximityModel), StoreError> {
    let mut pos = 0usize;
    if take(bytes, &mut pos, STORE_MAGIC.len(), "magic").ok() != Some(&STORE_MAGIC[..]) {
        return Err(StoreError::BadMagic);
    }
    let count = le_u32(bytes, &mut pos, "section count")?;
    if count == 0 || count > MAX_SECTIONS {
        return Err(StoreError::Malformed {
            detail: format!("section count {count} outside 1..={MAX_SECTIONS}"),
        });
    }
    let mut meta: Option<&[u8]> = None;
    let mut model: Option<&[u8]> = None;
    for _ in 0..count {
        let id = le_u32(bytes, &mut pos, "section id")?;
        let len = le_u64(bytes, &mut pos, "section length")?;
        if len > MAX_MODEL_JSON_BYTES as u64 {
            return Err(StoreError::Malformed {
                detail: format!("section {id} advertises {len} bytes, over the payload cap"),
            });
        }
        let sum = le_u64(bytes, &mut pos, "section checksum")?;
        let payload = take(bytes, &mut pos, len as usize, "section payload")?;
        if fnv1a_64(payload) != sum {
            return Err(StoreError::Checksum { section: id });
        }
        // Unknown section ids are skipped once their checksum passes —
        // room for forward-compatible additions without a format bump.
        match id {
            SECTION_META if meta.is_none() => meta = Some(payload),
            SECTION_MODEL if model.is_none() => model = Some(payload),
            SECTION_META | SECTION_MODEL => {
                return Err(StoreError::Malformed {
                    detail: format!("duplicate section {id}"),
                })
            }
            _ => {}
        }
    }
    if pos != bytes.len() {
        return Err(StoreError::Malformed {
            detail: format!(
                "{} trailing bytes after the last section",
                bytes.len() - pos
            ),
        });
    }
    let meta = meta.ok_or(StoreError::Malformed {
        detail: "missing meta section".into(),
    })?;
    let model = model.ok_or(StoreError::Malformed {
        detail: "missing model section".into(),
    })?;

    let meta_text = std::str::from_utf8(meta).map_err(|_| StoreError::Malformed {
        detail: "meta section is not UTF-8".into(),
    })?;
    let meta_json = Json::parse(meta_text).map_err(|e| StoreError::Malformed {
        detail: format!("meta section does not parse: {e}"),
    })?;
    let name = meta_json
        .get("name")
        .and_then(Json::as_str)
        .ok_or(StoreError::Malformed {
            detail: "meta section has no name".into(),
        })?;
    if !valid_name(name) {
        return Err(StoreError::BadName { name: name.into() });
    }

    let model_text = std::str::from_utf8(model).map_err(|_| StoreError::Malformed {
        detail: "model section is not UTF-8".into(),
    })?;
    let model = ProximityModel::from_json(model_text)?;
    Ok((name.to_owned(), model))
}

/// A quarantine that could not complete: the rename failed, so the corrupt
/// entry is still at its original path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineFailure {
    /// The corrupt entry, still in place.
    pub entry: PathBuf,
    /// Where the evidence was supposed to go.
    pub intended: PathBuf,
    /// The typed rename failure.
    pub error: DiskError,
}

impl fmt::Display for QuarantineFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quarantine of {} failed ({}); corrupt entry left in place",
            self.entry.display(),
            self.error
        )
    }
}

/// A directory of checksummed binary model entries.
#[derive(Debug, Clone)]
pub struct ModelStore {
    root: PathBuf,
}

impl ModelStore {
    /// Opens (and lazily creates on first save) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The store directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of the entry `name`.
    pub fn entry_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.{ENTRY_EXT}"))
    }

    /// The path a corrupt entry file is quarantined at: the file name plus
    /// the FNV-1a hash of the corrupt bytes and a `.quarantined` suffix —
    /// the model-cache convention, collision-proofed by content.
    pub fn quarantined_path(&self, entry: &Path, content_hash: u64) -> PathBuf {
        let file = entry
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        self.root
            .join(format!("{file}.{content_hash:016x}.quarantined"))
    }

    /// Writes (or replaces) the entry `name` atomically: the container is
    /// staged in a same-directory temp file, fsync'd, and renamed into
    /// place, so a crash at any instant — `SIGKILL` included — leaves the
    /// old complete entry or the new complete entry, never a torn one.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadName`] for unstorable names, [`StoreError::Model`]
    /// on serialization failure, and a typed [`StoreError::DiskFull`] /
    /// [`StoreError::Io`] on write failure (every store write goes through
    /// the [`diskfault`]-guarded atomic path).
    pub fn save(&self, name: &str, model: &ProximityModel) -> Result<(), StoreError> {
        let bytes = encode_entry(name, model)?;
        fs::create_dir_all(&self.root).map_err(io_err)?;
        diskfault::checked_write(&self.entry_path(name), &bytes).map_err(StoreError::from)
    }

    /// Loads and fully validates the entry `name`.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] on missing, torn, corrupt, or invalid
    /// entries. Loading never quarantines; that policy belongs to
    /// [`crate::library::ModelLibrary`], which owns the degraded-start
    /// decision.
    pub fn load(&self, name: &str) -> Result<ProximityModel, StoreError> {
        if !valid_name(name) {
            return Err(StoreError::BadName { name: name.into() });
        }
        let bytes = fs::read(self.entry_path(name)).map_err(io_err)?;
        let (stored_name, model) = decode_entry(&bytes)?;
        if stored_name != name {
            return Err(StoreError::Malformed {
                detail: format!("entry {name:?} carries meta name {stored_name:?}"),
            });
        }
        Ok(model)
    }

    /// Quarantines the entry file at `path` aside and returns where the
    /// evidence went.
    ///
    /// # Errors
    ///
    /// A [`QuarantineFailure`] when the rename itself failed (read-only or
    /// full disk): the corrupt entry is still *in place*, and reporting
    /// the intended destination as evidence would be a lie — callers must
    /// surface the rename error distinctly and count it under
    /// `serve.store.quarantine_failed`.
    pub fn quarantine(&self, path: &Path) -> Result<PathBuf, QuarantineFailure> {
        let content_hash = fnv1a_64(&fs::read(path).unwrap_or_default());
        let to = self.quarantined_path(path, content_hash);
        match diskfault::checked_rename(path, &to) {
            Ok(()) => Ok(to),
            Err(error) => Err(QuarantineFailure {
                entry: path.to_path_buf(),
                intended: to,
                error,
            }),
        }
    }

    /// Every live entry name in the store, sorted. Quarantined files,
    /// stale atomic-write temp files, and foreign files are skipped.
    pub fn list(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if let Some(name) = entry_name(&entry.path()) {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        names
    }

    /// Removes stale atomic-write temp files (crash debris from a killed
    /// writer) and returns how many were reclaimed. Live entries and
    /// quarantined evidence are never touched.
    pub fn reclaim_temp_files(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return 0;
        };
        let mut reclaimed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(file) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if file.starts_with('.')
                && file.contains(&format!(".{ENTRY_EXT}.tmp."))
                && fs::remove_file(&path).is_ok()
            {
                reclaimed += 1;
            }
        }
        reclaimed
    }
}

/// The entry name of a live store file (`<name>.pxm` with a storable
/// name), or `None` for anything else.
pub(crate) fn entry_name(path: &Path) -> Option<String> {
    let file = path.file_name()?.to_str()?;
    if file.starts_with('.') {
        return None;
    }
    let name = file.strip_suffix(&format!(".{ENTRY_EXT}"))?;
    valid_name(name).then(|| name.to_owned())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub(crate) mod tests {
    use super::*;
    use proxim_cells::{Cell, Technology};
    use proxim_model::characterize::CharacterizeOptions;
    use std::sync::OnceLock;

    /// One shared fast model; characterization is the expensive part of
    /// these tests, so it runs once.
    pub(crate) fn shared_model() -> &'static ProximityModel {
        static MODEL: OnceLock<ProximityModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            let tech = Technology::demo_5v();
            let cell = Cell::inv();
            ProximityModel::characterize(&cell, &tech, &CharacterizeOptions::fast())
                .expect("test model characterizes")
        })
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("proxim_store_{}_{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn round_trips_byte_identically() {
        let store = ModelStore::new(scratch("roundtrip"));
        let model = shared_model();
        store.save("inv_fast", model).unwrap();
        let back = store.load("inv_fast").unwrap();
        assert_eq!(model.to_json().unwrap(), back.to_json().unwrap());
        // Saving the same model again produces the same bytes — the
        // property the SIGKILL chaos test relies on.
        let bytes1 = fs::read(store.entry_path("inv_fast")).unwrap();
        store.save("inv_fast", model).unwrap();
        let bytes2 = fs::read(store.entry_path("inv_fast")).unwrap();
        assert_eq!(bytes1, bytes2);
        assert_eq!(store.list(), vec!["inv_fast".to_string()]);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn rejects_unstorable_names() {
        let store = ModelStore::new(scratch("badname"));
        for bad in ["", "a/b", "../etc", "name with spaces", &"x".repeat(65)] {
            assert!(
                matches!(
                    store.save(bad, shared_model()),
                    Err(StoreError::BadName { .. })
                ),
                "{bad:?} must be rejected"
            );
            assert!(matches!(store.load(bad), Err(StoreError::BadName { .. })));
        }
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let store = ModelStore::new(scratch("corrupt"));
        let model = shared_model();
        store.save("m", model).unwrap();
        let good = fs::read(store.entry_path("m")).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_entry(&bad).unwrap_err(), StoreError::BadMagic);

        // Truncations at every structural boundary.
        for cut in [4, STORE_MAGIC.len() + 2, good.len() / 2, good.len() - 1] {
            let e = decode_entry(&good[..cut]).unwrap_err();
            assert!(
                matches!(
                    e,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic
                        | StoreError::Checksum { .. }
                ),
                "cut at {cut}: {e}"
            );
        }

        // A flipped payload byte fails its section checksum.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 10] ^= 0x01;
        assert!(matches!(
            decode_entry(&bad).unwrap_err(),
            StoreError::Checksum { .. }
        ));

        // Trailing garbage is malformed, not ignored.
        let mut bad = good.clone();
        bad.extend_from_slice(b"junk");
        assert!(matches!(
            decode_entry(&bad).unwrap_err(),
            StoreError::Malformed { .. }
        ));

        // A hostile section count is refused before any allocation.
        let mut bad = good[..12].to_vec();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_entry(&bad).unwrap_err(),
            StoreError::Malformed { .. }
        ));

        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn quarantine_preserves_distinct_evidence() {
        let store = ModelStore::new(scratch("quarantine"));
        fs::create_dir_all(store.root()).unwrap();
        let path = store.entry_path("bad");
        for corrupt in [b"garbage one".as_slice(), b"garbage two".as_slice()] {
            fs::write(&path, corrupt).unwrap();
            let to = store.quarantine(&path).unwrap();
            assert_eq!(fs::read(&to).unwrap(), corrupt);
        }
        assert!(store.list().is_empty(), "quarantined files are not entries");
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn reclaims_only_stale_temp_files() {
        let store = ModelStore::new(scratch("reclaim"));
        store.save("live", shared_model()).unwrap();
        let tmp = store.root().join(format!(".live.{ENTRY_EXT}.tmp.123.0"));
        fs::write(&tmp, b"half a write").unwrap();
        assert_eq!(store.reclaim_temp_files(), 1);
        assert!(!tmp.exists());
        assert!(store.load("live").is_ok());
        fs::remove_dir_all(store.root()).ok();
    }
}
