//! The length-prefixed socket protocol, hardened against hostile bytes.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Everything that arrives is *untrusted input* and
//! every way it can be wrong has a typed outcome — never a panic, never a
//! silent drop:
//!
//! - an advertised length over [`MAX_FRAME_BYTES`] is rejected *before*
//!   any payload allocation ([`ErrorKind::BadFrame`]);
//! - EOF mid-length or mid-payload is a typed truncation, distinct from a
//!   clean close at a frame boundary ([`read_frame`] returns `Ok(None)`
//!   for the latter);
//! - non-UTF-8 payloads, malformed JSON, and structure that nests deeper
//!   than [`MAX_REQUEST_DEPTH`] are all typed errors — the depth pre-scan
//!   runs before the recursive JSON parser ever sees the bytes, so a
//!   nesting bomb cannot blow the stack;
//! - semantic caps ([`MAX_BATCH_QUERIES`], [`MAX_EVENTS_PER_QUERY`],
//!   non-finite numbers) are enforced during decoding.
//!
//! Responses are rendered here too, so the wire shape — including the
//! end-to-end `degraded` provenance field carried from
//! [`GateTiming::degradation`] — is owned by one module.

use proxim_model::{DegradedReason, GateTiming, InputEvent, ModelError};
use proxim_numeric::pwl::Edge;
use proxim_obs::json::{push_escaped, push_f64, Json};
use std::fmt;
use std::io::{Read, Write};

/// Hard cap on a frame payload. Every real request is far smaller; the cap
/// exists so a hostile 4-byte prefix cannot demand a huge allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Maximum bracket-nesting depth of a request document, enforced by a
/// string-aware pre-scan *before* the recursive parser runs.
pub const MAX_REQUEST_DEPTH: usize = 16;

/// Maximum queries in one `batch` request.
pub const MAX_BATCH_QUERIES: usize = 256;

/// Maximum input events in one query. The widest characterized cell has a
/// handful of pins; 16 leaves headroom without letting a request buy
/// unbounded evaluation work.
pub const MAX_EVENTS_PER_QUERY: usize = 16;

/// The typed category of a protocol-level failure, as spelled on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The bounded admission queue was full; the request was shed, not
    /// silently dropped.
    Overloaded,
    /// The frame itself was unusable: oversized, truncated, or not UTF-8.
    BadFrame,
    /// The frame decoded but the request inside it did not: malformed
    /// JSON, unknown op, structural caps, non-finite numbers.
    BadRequest,
    /// The request named a model the library does not hold.
    UnknownModel,
    /// The model rejected the query ([`ModelError::InvalidQuery`]).
    InvalidQuery,
    /// The per-request wall-clock deadline expired before an answer.
    DeadlineExceeded,
    /// The daemon is draining after `SIGTERM` and no longer admits work.
    ShuttingDown,
    /// A `reload` candidate loaded worse than the live generation (or its
    /// store root was unreadable) and was refused; the live generation is
    /// untouched.
    ReloadRejected,
    /// A fleet replica crash-looped (too many exits inside the quarantine
    /// window) and the supervisor stopped restarting it; the fleet keeps
    /// serving degraded on the survivors.
    ReplicaQuarantined,
    /// An unexpected server-side failure; the detail names it.
    Internal,
}

impl ErrorKind {
    /// The stable wire spelling of this kind.
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Overloaded => "overloaded",
            Self::BadFrame => "bad_frame",
            Self::BadRequest => "bad_request",
            Self::UnknownModel => "unknown_model",
            Self::InvalidQuery => "invalid_query",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::ShuttingDown => "shutting_down",
            Self::ReloadRejected => "reload_rejected",
            Self::ReplicaQuarantined => "replica_quarantined",
            Self::Internal => "internal",
        }
    }

    /// Whether a client may safely retry after this kind: the request was
    /// refused *before* any server-side effect (shed at admission, or the
    /// daemon is draining), so re-sending cannot double-apply anything.
    pub fn is_retryable(self) -> bool {
        matches!(self, Self::Overloaded | Self::ShuttingDown)
    }
}

/// A typed protocol failure: what category, and the human detail.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// The typed category, stable on the wire.
    pub kind: ErrorKind,
    /// Human-readable specifics (never parsed by clients).
    pub detail: String,
    /// Whether the underlying transport failure was a read/write timeout
    /// (`WouldBlock`/`TimedOut`). Classified from [`std::io::Error::kind`]
    /// at the I/O boundary — never from the error message, whose text is
    /// OS- and locale-dependent (Linux spells a socket read timeout
    /// "Resource temporarily unavailable").
    pub timeout: bool,
    /// Server hint: how long a retrying client should wait before trying
    /// again. Set on shed (`overloaded`) responses from the daemon's own
    /// queue-drain estimate; rendered on the wire as `retry_after_ms`.
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// Builds an error of `kind` with `detail`.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
            timeout: false,
            retry_after_ms: None,
        }
    }

    /// Attaches a retry-after hint in milliseconds.
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.wire_name(), self.detail)
    }
}

impl std::error::Error for ProtoError {}

/// One timing query: the input events and an optional explicit load.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuery {
    /// The switching input events.
    pub events: Vec<InputEvent>,
    /// Output load in farads; `None` queries at the characterized
    /// reference load.
    pub c_load: Option<f64>,
}

/// Maximum length of a client-supplied `trace_id`.
pub const MAX_TRACE_ID_LEN: usize = 64;

/// Runtime observability controls carried by the `obs` op. Every field is
/// optional: an empty `obs` request is a read of the current configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsControl {
    /// New process-wide observability level.
    pub level: Option<proxim_obs::Level>,
    /// New head-sampling rate: trace 1 in `n` requests (0 disables
    /// head sampling; slow requests are still force-sampled).
    pub sample_every: Option<u64>,
    /// New slow-request threshold in milliseconds.
    pub slow_ms: Option<u64>,
    /// Whether to include a flight-recorder dump in the response.
    pub dump: bool,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one timing query against the named model.
    Query {
        /// The library entry to query.
        model: String,
        /// The query itself.
        query: WireQuery,
        /// Client-supplied trace correlation id, echoed in the response
        /// and stamped on the request's spans. The server generates one
        /// when absent.
        trace_id: Option<String>,
    },
    /// Evaluate up to [`MAX_BATCH_QUERIES`] queries against one model in
    /// a single round trip.
    Batch {
        /// The library entry to query.
        model: String,
        /// The queries, answered in order.
        queries: Vec<WireQuery>,
        /// Client-supplied trace correlation id (see [`Request::Query`]).
        trace_id: Option<String>,
    },
    /// Liveness/readiness probe; answered inline, bypassing the admission
    /// queue so it works under full overload.
    Health,
    /// A snapshot of the daemon's metrics registry, uptime, queue depth,
    /// and in-flight request table.
    Stats,
    /// The names of every servable model.
    List,
    /// The metrics registry rendered as Prometheus text exposition.
    /// Answered inline like the other probes.
    Metrics,
    /// Flip observability settings at runtime and/or fetch a
    /// flight-recorder dump. Answered inline so it works under overload.
    Obs(ObsControl),
    /// Per-replica fleet state: supervision state, generation, uptime, and
    /// restart counts for every replica. Answered by a fleet supervisor's
    /// control socket; a plain replica daemon refuses it typed, pointing
    /// the client at the supervisor. Read-only, so it is retry-safe.
    Fleet,
    /// Load a candidate library generation from the store, validate it
    /// against the live one, and swap it in if it is no worse. Answered
    /// inline (reload must work while the queue is full of queries).
    Reload {
        /// Accept a candidate that loaded worse than the live generation
        /// (fewer survivors, new quarantines). Never overrides the
        /// unreadable-store-root gate.
        force: bool,
        /// Optional operator label stamped on the new generation and
        /// echoed on the health probe.
        label: Option<String>,
    },
}

/// Maximum length of an operator-supplied generation label (same bound and
/// charset as `trace_id`: it lands in log lines and health probes).
pub const MAX_LABEL_LEN: usize = MAX_TRACE_ID_LEN;

/// Every `op` the protocol recognizes, in dispatch order. The retrying
/// client's idempotency table is tested against this list, so adding an op
/// here without classifying it there is a compile-visible test failure —
/// a new op can never silently become retry-unsafe (or unsafely
/// retryable).
pub const WIRE_OPS: &[&str] = &[
    "query", "batch", "health", "stats", "list", "metrics", "obs", "reload", "fleet",
];

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Reads one frame. `Ok(None)` is a clean close (EOF exactly at a frame
/// boundary); everything else wrong is a typed error.
///
/// # Errors
///
/// [`ErrorKind::BadFrame`] for oversized advertisements and mid-frame
/// truncation; [`ErrorKind::Internal`] for transport errors (including
/// read timeouts — the caller decides whether that means a slow client).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtoError::new(
                    ErrorKind::BadFrame,
                    format!("connection closed {got} bytes into the length prefix"),
                ))
            }
            Ok(n) => got += n,
            Err(e) => return Err(io_proto(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::new(
            ErrorKind::BadFrame,
            format!("frame advertises {len} bytes, over the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(ProtoError::new(
                    ErrorKind::BadFrame,
                    format!("frame truncated: got {got} of {len} payload bytes"),
                ))
            }
            Ok(n) => got += n,
            Err(e) => return Err(io_proto(e)),
        }
    }
    Ok(Some(payload))
}

fn io_proto(e: std::io::Error) -> ProtoError {
    let timeout = matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    );
    ProtoError {
        kind: ErrorKind::Internal,
        detail: format!("transport error: {e}"),
        timeout,
        retry_after_ms: None,
    }
}

/// Whether a [`read_frame`]/[`write_frame`] transport error was a timeout
/// — the slow-client signal, as opposed to a reset or a hard I/O failure.
pub fn is_timeout(e: &ProtoError) -> bool {
    e.timeout
}

/// Assembles the on-wire bytes of one frame: 4-byte big-endian length,
/// then the payload. Exposed so the server's write path (which may need to
/// tear the assembled frame under fault injection) frames identically to
/// [`write_frame`].
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// [`ErrorKind::Internal`] on transport failure (including write timeouts
/// against a stalled client) and for payloads over [`MAX_FRAME_BYTES`],
/// which a correct server never produces.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::new(
            ErrorKind::Internal,
            format!("refusing to send a {}-byte frame", payload.len()),
        ));
    }
    // One write call for prefix + payload: a kill between two writes must
    // not be able to leave a prefix with no payload on the wire.
    w.write_all(&frame_bytes(payload)).map_err(io_proto)?;
    w.flush().map_err(io_proto)
}

/// One request/response round trip over any bidirectional stream.
///
/// # Errors
///
/// Frame-layer errors from [`write_frame`]/[`read_frame`], plus
/// [`ErrorKind::BadFrame`] if the server closes without responding or the
/// response is not UTF-8.
pub fn call<S: Read + Write>(stream: &mut S, request: &str) -> Result<String, ProtoError> {
    write_frame(stream, request.as_bytes())?;
    let bytes = read_frame(stream)?
        .ok_or_else(|| ProtoError::new(ErrorKind::BadFrame, "server closed without responding"))?;
    String::from_utf8(bytes)
        .map_err(|_| ProtoError::new(ErrorKind::BadFrame, "response is not UTF-8"))
}

// ---------------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------------

/// A string-aware bracket-depth pre-scan. Runs in one pass before the
/// recursive parser so hostile nesting depth is a typed error, not a stack
/// overflow.
fn max_nesting_depth(text: &str) -> usize {
    let (mut depth, mut max, mut in_str, mut escaped) = (0usize, 0usize, false, false);
    for b in text.bytes() {
        if in_str {
            match (escaped, b) {
                (true, _) => escaped = false,
                (false, b'\\') => escaped = true,
                (false, b'"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => {
                depth += 1;
                max = max.max(depth);
            }
            b'}' | b']' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    max
}

fn bad_request(detail: impl Into<String>) -> ProtoError {
    ProtoError::new(ErrorKind::BadRequest, detail)
}

fn finite(json: &Json, what: &str) -> Result<f64, ProtoError> {
    let x = json
        .as_f64()
        .ok_or_else(|| bad_request(format!("{what} is not a number")))?;
    if !x.is_finite() {
        return Err(bad_request(format!("{what} is not finite")));
    }
    Ok(x)
}

fn parse_events(json: &Json) -> Result<Vec<InputEvent>, ProtoError> {
    let arr = json
        .as_arr()
        .ok_or_else(|| bad_request("\"events\" must be an array"))?;
    if arr.is_empty() {
        return Err(bad_request("\"events\" must not be empty"));
    }
    if arr.len() > MAX_EVENTS_PER_QUERY {
        return Err(bad_request(format!(
            "{} events, over the {MAX_EVENTS_PER_QUERY}-event cap",
            arr.len()
        )));
    }
    let mut events = Vec::with_capacity(arr.len());
    for (i, ev) in arr.iter().enumerate() {
        let pin = finite(
            ev.get("pin")
                .ok_or_else(|| bad_request("event missing \"pin\""))?,
            "event pin",
        )?;
        if pin < 0.0 || pin.fract() != 0.0 || pin > 255.0 {
            return Err(bad_request(format!(
                "event {i} pin {pin} is not a small integer"
            )));
        }
        let edge = match ev.get("edge").and_then(Json::as_str) {
            Some("rise") => Edge::Rising,
            Some("fall") => Edge::Falling,
            _ => {
                return Err(bad_request(format!(
                    "event {i} edge must be \"rise\" or \"fall\""
                )))
            }
        };
        let t = finite(
            ev.get("t")
                .ok_or_else(|| bad_request("event missing \"t\""))?,
            "event t",
        )?;
        let tt = finite(
            ev.get("tt")
                .ok_or_else(|| bad_request("event missing \"tt\""))?,
            "event tt",
        )?;
        if tt <= 0.0 {
            return Err(bad_request(format!(
                "event {i} transition time must be positive"
            )));
        }
        events.push(InputEvent::new(pin as usize, edge, t, tt));
    }
    Ok(events)
}

fn parse_wire_query(json: &Json) -> Result<WireQuery, ProtoError> {
    let events = parse_events(
        json.get("events")
            .ok_or_else(|| bad_request("query missing \"events\""))?,
    )?;
    let c_load = match json.get("c_load") {
        None => None,
        Some(j) => {
            let c = finite(j, "c_load")?;
            if c <= 0.0 {
                return Err(bad_request("c_load must be positive"));
            }
            Some(c)
        }
    };
    Ok(WireQuery { events, c_load })
}

/// Decodes and validates an optional client-supplied `trace_id`. The id is
/// echoed into responses and trace records, so the charset is restricted to
/// keep it harmless in JSONL, log lines, and shell pipelines.
fn parse_trace_id(json: &Json) -> Result<Option<String>, ProtoError> {
    let Some(j) = json.get("trace_id") else {
        return Ok(None);
    };
    let s = j
        .as_str()
        .ok_or_else(|| bad_request("\"trace_id\" must be a string"))?;
    if s.is_empty() || s.len() > MAX_TRACE_ID_LEN {
        return Err(bad_request(format!(
            "trace_id must be 1..={MAX_TRACE_ID_LEN} characters"
        )));
    }
    if !s
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
    {
        return Err(bad_request("trace_id may contain only [A-Za-z0-9._:-]"));
    }
    Ok(Some(s.to_owned()))
}

/// Decodes an optional non-negative integer field.
fn parse_u64_field(json: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    let Some(j) = json.get(key) else {
        return Ok(None);
    };
    let x = finite(j, key)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(bad_request(format!(
            "\"{key}\" must be a non-negative integer"
        )));
    }
    Ok(Some(x as u64))
}

fn parse_obs_control(json: &Json) -> Result<ObsControl, ProtoError> {
    let level = match json.get("level") {
        None => None,
        Some(j) => match j.as_str() {
            Some("off") => Some(proxim_obs::Level::Off),
            Some("metrics") => Some(proxim_obs::Level::Metrics),
            Some("trace") => Some(proxim_obs::Level::Trace),
            _ => {
                return Err(bad_request(
                    "\"level\" must be \"off\", \"metrics\", or \"trace\"",
                ))
            }
        },
    };
    let dump = match json.get("dump") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad_request("\"dump\" must be a boolean")),
    };
    Ok(ObsControl {
        level,
        sample_every: parse_u64_field(json, "sample_every")?,
        slow_ms: parse_u64_field(json, "slow_ms")?,
        dump,
    })
}

fn parse_reload(json: &Json) -> Result<Request, ProtoError> {
    let force = match json.get("force") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad_request("\"force\" must be a boolean")),
    };
    let label = match json.get("label") {
        None => None,
        Some(j) => {
            let s = j
                .as_str()
                .ok_or_else(|| bad_request("\"label\" must be a string"))?;
            if s.is_empty() || s.len() > MAX_LABEL_LEN {
                return Err(bad_request(format!(
                    "label must be 1..={MAX_LABEL_LEN} characters"
                )));
            }
            if !s
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
            {
                return Err(bad_request("label may contain only [A-Za-z0-9._:-]"));
            }
            Some(s.to_owned())
        }
    };
    Ok(Request::Reload { force, label })
}

fn parse_model_name(json: &Json) -> Result<String, ProtoError> {
    let name = json
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad_request("request missing \"model\""))?;
    if !crate::store::valid_name(name) {
        return Err(bad_request(format!("model name {name:?} is not servable")));
    }
    Ok(name.to_owned())
}

/// Decodes one frame payload into a [`Request`].
///
/// # Errors
///
/// [`ErrorKind::BadFrame`] for non-UTF-8 payloads; [`ErrorKind::BadRequest`]
/// for everything structurally or semantically wrong inside.
pub fn parse_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtoError::new(ErrorKind::BadFrame, "frame payload is not UTF-8"))?;
    if max_nesting_depth(text) > MAX_REQUEST_DEPTH {
        return Err(bad_request(format!(
            "request nests deeper than {MAX_REQUEST_DEPTH} levels"
        )));
    }
    let json =
        Json::parse(text).map_err(|e| bad_request(format!("request does not parse: {e}")))?;
    match json.get("op").and_then(Json::as_str) {
        Some("query") => Ok(Request::Query {
            model: parse_model_name(&json)?,
            query: parse_wire_query(&json)?,
            trace_id: parse_trace_id(&json)?,
        }),
        Some("batch") => {
            let model = parse_model_name(&json)?;
            let trace_id = parse_trace_id(&json)?;
            let arr = json
                .get("queries")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad_request("batch missing \"queries\" array"))?;
            if arr.is_empty() {
                return Err(bad_request("batch \"queries\" must not be empty"));
            }
            if arr.len() > MAX_BATCH_QUERIES {
                return Err(bad_request(format!(
                    "{} queries, over the {MAX_BATCH_QUERIES}-query cap",
                    arr.len()
                )));
            }
            let queries = arr
                .iter()
                .map(parse_wire_query)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Batch {
                model,
                queries,
                trace_id,
            })
        }
        Some("health") => Ok(Request::Health),
        Some("stats") => Ok(Request::Stats),
        Some("list") => Ok(Request::List),
        Some("metrics") => Ok(Request::Metrics),
        Some("obs") => Ok(Request::Obs(parse_obs_control(&json)?)),
        Some("reload") => parse_reload(&json),
        Some("fleet") => Ok(Request::Fleet),
        Some(op) => Err(bad_request(format!("unknown op {op:?}"))),
        None => Err(bad_request("request missing \"op\"")),
    }
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

/// The wire spelling of a degraded-answer provenance marker.
pub fn degraded_wire_name(reason: DegradedReason) -> &'static str {
    match reason {
        DegradedReason::DualSliceMissing => "dual_slice_missing",
        DegradedReason::NldmSliceMissing => "nldm_slice_missing",
    }
}

fn push_timing(out: &mut String, t: &GateTiming) {
    out.push_str("{\"reference_pin\":");
    out.push_str(&t.reference_pin.to_string());
    out.push_str(",\"delay\":");
    push_f64(out, t.delay);
    out.push_str(",\"output_transition\":");
    push_f64(out, t.output_transition);
    out.push_str(",\"output_arrival\":");
    push_f64(out, t.output_arrival);
    out.push_str(",\"output_edge\":");
    out.push_str(match t.output_edge {
        Edge::Rising => "\"rise\"",
        Edge::Falling => "\"fall\"",
    });
    out.push_str(",\"inputs_in_window\":");
    out.push_str(&t.inputs_in_window.to_string());
    out.push_str(",\"degraded\":");
    match t.degradation {
        None => out.push_str("null"),
        Some(reason) => push_escaped(out, degraded_wire_name(reason)),
    }
    out.push('}');
}

fn push_error(out: &mut String, e: &ProtoError) {
    out.push_str("{\"kind\":");
    push_escaped(out, e.kind.wire_name());
    out.push_str(",\"detail\":");
    push_escaped(out, &e.detail);
    if let Some(ms) = e.retry_after_ms {
        out.push_str(",\"retry_after_ms\":");
        out.push_str(&ms.to_string());
    }
    out.push('}');
}

/// The per-request trace context echoed into a response: the correlation
/// id plus the server-side phase breakdown in microseconds. The `write`
/// phase cannot appear here — a response is rendered before its own write
/// happens — so write time lands only in the trace and the phase
/// histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEcho {
    /// The request's correlation id (client-supplied or server-generated).
    pub trace_id: String,
    /// Microseconds spent in admission (decode + model resolution + queue
    /// reservation).
    pub admit_us: u64,
    /// Microseconds spent waiting in the admission queue.
    pub queue_us: u64,
    /// Microseconds a worker spent evaluating the request.
    pub execute_us: u64,
    /// `Some(load_us)` when serving this request paid a cold model load
    /// from the store (the model was outside the memory budget's resident
    /// set); rendered as `"cold":true,"load_us":N`.
    pub cold_load_us: Option<u64>,
}

fn push_trace_echo(out: &mut String, echo: &TraceEcho) {
    out.push_str(",\"trace_id\":");
    push_escaped(out, &echo.trace_id);
    out.push_str(&format!(
        ",\"breakdown\":{{\"admit_us\":{},\"queue_us\":{},\"execute_us\":{}}}",
        echo.admit_us, echo.queue_us, echo.execute_us
    ));
    if let Some(load_us) = echo.cold_load_us {
        out.push_str(&format!(",\"cold\":true,\"load_us\":{load_us}"));
    }
}

/// Renders a failed request: `{"ok":false,"error":{...}}`.
pub fn render_error(e: &ProtoError) -> String {
    render_error_traced(e, None)
}

/// Renders a failed request carrying its trace correlation id:
/// `{"ok":false,"trace_id":...,"error":{...}}`. Shed and expired requests
/// stay correlatable with their trace records this way.
pub fn render_error_traced(e: &ProtoError, trace_id: Option<&str>) -> String {
    let mut out = String::from("{\"ok\":false");
    if let Some(id) = trace_id {
        out.push_str(",\"trace_id\":");
        push_escaped(&mut out, id);
    }
    out.push_str(",\"error\":");
    push_error(&mut out, e);
    out.push('}');
    out
}

/// Renders a successful single query:
/// `{"ok":true[,"trace_id":...,"breakdown":{...}],"timing":{...}}`.
pub fn render_timing(t: &GateTiming, echo: Option<&TraceEcho>) -> String {
    let mut out = String::from("{\"ok\":true");
    if let Some(echo) = echo {
        push_trace_echo(&mut out, echo);
    }
    out.push_str(",\"timing\":");
    push_timing(&mut out, t);
    out.push('}');
    out
}

/// Renders a batch response. The envelope is `ok` as long as the *frame*
/// was servable; each item is independently a timing or a typed error, so
/// one bad query cannot hide the other answers.
pub fn render_batch(
    results: &[Result<GateTiming, ProtoError>],
    echo: Option<&TraceEcho>,
) -> String {
    let mut out = String::from("{\"ok\":true");
    if let Some(echo) = echo {
        push_trace_echo(&mut out, echo);
    }
    out.push_str(",\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match r {
            Ok(t) => {
                out.push_str("{\"timing\":");
                push_timing(&mut out, t);
                out.push('}');
            }
            Err(e) => {
                out.push_str("{\"error\":");
                push_error(&mut out, e);
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}

/// Renders the health probe response, including which library generation
/// is serving and — so an unreadable store can never masquerade as an
/// empty one — the load-time store-root error, if any.
pub fn render_health(
    status: &str,
    models: usize,
    degraded: bool,
    generation: u64,
    store_error: Option<&str>,
) -> String {
    let mut out = String::from("{\"ok\":true,\"status\":");
    push_escaped(&mut out, status);
    out.push_str(",\"models\":");
    out.push_str(&models.to_string());
    out.push_str(",\"degraded\":");
    out.push_str(if degraded { "true" } else { "false" });
    out.push_str(",\"generation\":");
    out.push_str(&generation.to_string());
    out.push_str(",\"store_error\":");
    match store_error {
        None => out.push_str("null"),
        Some(e) => push_escaped(&mut out, e),
    }
    out.push('}');
    out
}

/// Renders a successful reload: the generation that is now live and how
/// long the candidate took to load, validate, and swap.
pub fn render_reload_swapped(generation: u64, models: usize, reload_us: u64) -> String {
    format!(
        "{{\"ok\":true,\"swapped\":true,\"generation\":{generation},\"models\":{models},\"reload_us\":{reload_us}}}"
    )
}

/// Renders a refused reload as a typed `reload_rejected` error carrying
/// the full comparison report, so an operator sees exactly how the
/// candidate was worse than the live generation.
pub fn render_reload_rejected(rej: &crate::library::ReloadRejection) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    push_error(
        &mut out,
        &ProtoError::new(ErrorKind::ReloadRejected, rej.reasons.join("; ")),
    );
    out.push_str(",\"report\":{\"candidate_loaded\":");
    out.push_str(&rej.candidate_loaded.to_string());
    out.push_str(",\"live_loaded\":");
    out.push_str(&rej.live_loaded.to_string());
    out.push_str(",\"candidate_quarantined\":");
    out.push_str(&rej.candidate_quarantined.to_string());
    out.push_str(",\"root_error\":");
    match &rej.root_error {
        None => out.push_str("null"),
        Some(e) => push_escaped(&mut out, e),
    }
    out.push_str("}}");
    out
}

/// Renders the model-list response.
pub fn render_list(names: &[String]) -> String {
    let mut out = String::from("{\"ok\":true,\"models\":[");
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, n);
    }
    out.push_str("]}");
    out
}

/// Maps a model-evaluation failure onto the wire error taxonomy.
pub fn model_error_to_proto(e: &ModelError) -> ProtoError {
    match e {
        ModelError::InvalidQuery { detail } => {
            ProtoError::new(ErrorKind::InvalidQuery, detail.clone())
        }
        e if e.is_cancellation() => ProtoError::new(
            ErrorKind::DeadlineExceeded,
            "request deadline expired during evaluation",
        ),
        e => ProtoError::new(ErrorKind::Internal, e.to_string()),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"health\"}").unwrap();
        let mut r = Cursor::new(buf);
        let frame = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(frame, b"{\"op\":\"health\"}");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF is None");
    }

    #[test]
    fn oversized_advertisement_is_rejected_before_allocation() {
        let mut bytes = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"x");
        let e = read_frame(&mut Cursor::new(bytes)).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadFrame);
        assert!(e.detail.contains("cap"), "{e}");
    }

    #[test]
    fn truncation_everywhere_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"list\"}").unwrap();
        // Cut inside the prefix and inside the payload.
        for cut in [1, 2, 3, 5, buf.len() - 1] {
            let e = read_frame(&mut Cursor::new(buf[..cut].to_vec())).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadFrame, "cut at {cut}");
        }
    }

    #[test]
    fn timeouts_are_classified_by_io_error_kind_not_message_text() {
        // Linux spells a Unix-socket read timeout as ErrorKind::WouldBlock
        // with "Resource temporarily unavailable (os error 11)" — no
        // "timed out" substring anywhere. Classification must come from
        // the kind alone.
        struct FailingReader(Option<std::io::Error>);
        impl Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(self.0.take().expect("read called twice"))
            }
        }
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            let os11 = std::io::Error::new(kind, "Resource temporarily unavailable (os error 11)");
            let e = read_frame(&mut FailingReader(Some(os11))).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Internal);
            assert!(is_timeout(&e), "{kind:?} must classify as timeout: {e}");
        }
        let reset =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "connection timed out");
        let e = read_frame(&mut FailingReader(Some(reset))).unwrap_err();
        assert!(
            !is_timeout(&e),
            "a reset is not a timeout even if its message says so: {e}"
        );
    }

    #[test]
    fn non_utf8_and_garbage_are_typed() {
        assert_eq!(
            parse_request(&[0xff, 0xfe, 0x00]).unwrap_err().kind,
            ErrorKind::BadFrame
        );
        assert_eq!(
            parse_request(b"not json at all").unwrap_err().kind,
            ErrorKind::BadRequest
        );
        assert_eq!(
            parse_request(b"{\"op\":\"conquer\"}").unwrap_err().kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn nesting_bomb_is_a_typed_error_not_a_stack_overflow() {
        let mut bomb = String::new();
        for _ in 0..100_000 {
            bomb.push('[');
        }
        let e = parse_request(bomb.as_bytes()).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.detail.contains("nests deeper"), "{e}");
        // Balanced-but-deep is equally refused.
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert_eq!(
            parse_request(deep.as_bytes()).unwrap_err().kind,
            ErrorKind::BadRequest
        );
        // ...while strings full of brackets don't trip the scanner.
        let ok = r#"{"op":"health","note":"[[[[{{{{"}"#;
        assert!(matches!(parse_request(ok.as_bytes()), Ok(Request::Health)));
    }

    #[test]
    fn query_decodes_and_caps_hold() {
        let req = parse_request(
            br#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}"#,
        )
        .unwrap();
        match req {
            Request::Query {
                model,
                query,
                trace_id,
            } => {
                assert_eq!(model, "inv");
                assert_eq!(query.events.len(), 1);
                assert_eq!(query.c_load, None);
                assert_eq!(trace_id, None);
            }
            other => panic!("expected query, got {other:?}"),
        }

        let ev = r#"{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}"#;
        let too_many = format!(
            r#"{{"op":"query","model":"inv","events":[{}]}}"#,
            vec![ev; MAX_EVENTS_PER_QUERY + 1].join(",")
        );
        assert_eq!(
            parse_request(too_many.as_bytes()).unwrap_err().kind,
            ErrorKind::BadRequest
        );

        let q = format!(r#"{{"events":[{ev}]}}"#);
        let too_many_queries = format!(
            r#"{{"op":"batch","model":"inv","queries":[{}]}}"#,
            vec![q.as_str(); MAX_BATCH_QUERIES + 1].join(",")
        );
        assert_eq!(
            parse_request(too_many_queries.as_bytes()).unwrap_err().kind,
            ErrorKind::BadRequest
        );

        for bad in [
            r#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":1e999,"tt":1e-9}]}"#,
            r#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0,"tt":-1e-9}]}"#,
            r#"{"op":"query","model":"inv","events":[{"pin":-3,"edge":"rise","t":0,"tt":1e-9}]}"#,
            r#"{"op":"query","model":"../x","events":[{"pin":0,"edge":"rise","t":0,"tt":1e-9}]}"#,
            r#"{"op":"query","model":"inv","events":[]}"#,
        ] {
            assert_eq!(
                parse_request(bad.as_bytes()).unwrap_err().kind,
                ErrorKind::BadRequest,
                "{bad}"
            );
        }
    }

    #[test]
    fn responses_render_parseable_json() {
        let t = GateTiming {
            reference_pin: 1,
            delay: 1.25e-9,
            output_transition: 0.5e-9,
            output_arrival: 2e-9,
            output_edge: Edge::Falling,
            inputs_in_window: 2,
            degradation: Some(DegradedReason::DualSliceMissing),
        };
        let json = Json::parse(&render_timing(&t, None)).unwrap();
        assert_eq!(json.get("ok").and_then(Json::as_f64), None);
        let timing = json.get("timing").unwrap();
        assert_eq!(
            timing.get("degraded").and_then(Json::as_str),
            Some("dual_slice_missing")
        );
        assert_eq!(
            timing.get("output_edge").and_then(Json::as_str),
            Some("fall")
        );

        let err = ProtoError::new(ErrorKind::Overloaded, "queue full (64)");
        let json = Json::parse(&render_error(&err)).unwrap();
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded")
        );

        let batch = render_batch(&[Ok(t), Err(err)], None);
        let json = Json::parse(&batch).unwrap();
        assert_eq!(json.get("results").and_then(Json::as_arr).unwrap().len(), 2);

        let health = Json::parse(&render_health("draining", 3, true, 2, None)).unwrap();
        assert_eq!(
            health.get("status").and_then(Json::as_str),
            Some("draining")
        );
        assert_eq!(health.get("generation").and_then(Json::as_f64), Some(2.0));
        assert!(matches!(health.get("store_error"), Some(Json::Null)));
        let sick = Json::parse(&render_health("serving", 0, true, 1, Some("EACCES"))).unwrap();
        assert_eq!(
            sick.get("store_error").and_then(Json::as_str),
            Some("EACCES")
        );
    }

    #[test]
    fn retry_after_hint_renders_only_when_present() {
        let bare = render_error(&ProtoError::new(ErrorKind::Overloaded, "queue full"));
        assert!(!bare.contains("retry_after_ms"), "{bare}");
        let hinted =
            render_error(&ProtoError::new(ErrorKind::Overloaded, "queue full").with_retry_after(7));
        let json = Json::parse(&hinted).unwrap();
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn reload_op_decodes_and_hostile_variants_are_typed() {
        match parse_request(br#"{"op":"reload"}"#).unwrap() {
            Request::Reload { force, label } => {
                assert!(!force);
                assert_eq!(label, None);
            }
            other => panic!("expected reload, got {other:?}"),
        }
        match parse_request(br#"{"op":"reload","force":true,"label":"corner-ff.v2"}"#).unwrap() {
            Request::Reload { force, label } => {
                assert!(force);
                assert_eq!(label.as_deref(), Some("corner-ff.v2"));
            }
            other => panic!("expected reload, got {other:?}"),
        }
        let oversized = format!(
            r#"{{"op":"reload","label":"{}"}}"#,
            "g".repeat(MAX_LABEL_LEN + 1)
        );
        for bad in [
            br#"{"op":"reload","force":"yes"}"#.as_slice(),
            br#"{"op":"reload","force":1}"#.as_slice(),
            br#"{"op":"reload","force":null}"#.as_slice(),
            br#"{"op":"reload","label":42}"#.as_slice(),
            br#"{"op":"reload","label":""}"#.as_slice(),
            br#"{"op":"reload","label":"has space"}"#.as_slice(),
            oversized.as_bytes(),
        ] {
            assert_eq!(
                parse_request(bad).unwrap_err().kind,
                ErrorKind::BadRequest,
                "{}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn trace_echo_rides_along_on_every_response_shape() {
        let echo = TraceEcho {
            trace_id: "client-7".into(),
            admit_us: 12,
            queue_us: 340,
            execute_us: 56,
            cold_load_us: None,
        };
        let t = GateTiming {
            reference_pin: 0,
            delay: 1e-9,
            output_transition: 1e-10,
            output_arrival: 2e-9,
            output_edge: Edge::Rising,
            inputs_in_window: 1,
            degradation: None,
        };
        for rendered in [
            render_timing(&t, Some(&echo)),
            render_batch(&[Ok(t)], Some(&echo)),
        ] {
            let json = Json::parse(&rendered).unwrap();
            assert_eq!(
                json.get("trace_id").and_then(Json::as_str),
                Some("client-7"),
                "{rendered}"
            );
            let b = json.get("breakdown").unwrap();
            assert_eq!(b.get("admit_us").and_then(Json::as_f64), Some(12.0));
            assert_eq!(b.get("queue_us").and_then(Json::as_f64), Some(340.0));
            assert_eq!(b.get("execute_us").and_then(Json::as_f64), Some(56.0));
        }
        let err = ProtoError::new(ErrorKind::Overloaded, "queue full");
        let shed = render_error_traced(&err, Some("client-7"));
        let json = Json::parse(&shed).unwrap();
        assert_eq!(
            json.get("trace_id").and_then(Json::as_str),
            Some("client-7")
        );
        assert!(
            render_error(&err).starts_with("{\"ok\":false,\"error\""),
            "untraced errors keep the bare shape"
        );
        // A cold-load acquisition is marked on the response.
        let cold_echo = TraceEcho {
            cold_load_us: Some(870),
            ..echo
        };
        let json = Json::parse(&render_timing(&t, Some(&cold_echo))).unwrap();
        assert_eq!(json.get("cold").and_then(Json::as_bool), Some(true));
        assert_eq!(json.get("load_us").and_then(Json::as_f64), Some(870.0));
    }

    #[test]
    fn trace_ids_decode_and_hostile_ones_are_refused() {
        let with_id = br#"{"op":"query","model":"inv","trace_id":"abc.DEF:7-x_","events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}"#;
        match parse_request(with_id).unwrap() {
            Request::Query { trace_id, .. } => {
                assert_eq!(trace_id.as_deref(), Some("abc.DEF:7-x_"));
            }
            other => panic!("expected query, got {other:?}"),
        }
        let without = br#"{"op":"batch","model":"inv","queries":[{"events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}]}"#;
        match parse_request(without).unwrap() {
            Request::Batch { trace_id, .. } => assert_eq!(trace_id, None),
            other => panic!("expected batch, got {other:?}"),
        }
        let ev = r#"{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}"#;
        for bad_id in [
            "\"\"",
            "42",
            "\"has space\"",
            "\"quote\\\"inside\"",
            &format!("\"{}\"", "x".repeat(MAX_TRACE_ID_LEN + 1)),
        ] {
            let req =
                format!(r#"{{"op":"query","model":"inv","trace_id":{bad_id},"events":[{ev}]}}"#);
            assert_eq!(
                parse_request(req.as_bytes()).unwrap_err().kind,
                ErrorKind::BadRequest,
                "{bad_id}"
            );
        }
    }

    #[test]
    fn wire_ops_lists_exactly_the_recognized_ops() {
        // Every listed op must dispatch past the unknown-op arm. A minimal
        // `{"op":...}` document is enough: ops with required fields fail
        // with their field-specific message, never with "unknown op".
        for op in WIRE_OPS {
            let req = format!("{{\"op\":\"{op}\"}}");
            match parse_request(req.as_bytes()) {
                Ok(_) => {}
                Err(e) => assert!(
                    !e.detail.contains("unknown op"),
                    "{op} is listed in WIRE_OPS but the parser does not know it: {e}"
                ),
            }
        }
        // And an op outside the list is refused as unknown, so the list
        // cannot silently lag behind the dispatch table.
        let e = parse_request(br#"{"op":"conquer"}"#).unwrap_err();
        assert!(e.detail.contains("unknown op"), "{e}");
        assert!(matches!(
            parse_request(br#"{"op":"fleet"}"#).unwrap(),
            Request::Fleet
        ));
        assert_eq!(
            ErrorKind::ReplicaQuarantined.wire_name(),
            "replica_quarantined"
        );
        assert!(!ErrorKind::ReplicaQuarantined.is_retryable());
    }

    #[test]
    fn obs_and_metrics_ops_decode() {
        assert!(matches!(
            parse_request(b"{\"op\":\"metrics\"}").unwrap(),
            Request::Metrics
        ));
        // An empty obs request is a configuration read.
        match parse_request(b"{\"op\":\"obs\"}").unwrap() {
            Request::Obs(c) => assert_eq!(c, ObsControl::default()),
            other => panic!("expected obs, got {other:?}"),
        }
        let full = br#"{"op":"obs","level":"trace","sample_every":4,"slow_ms":100,"dump":true}"#;
        match parse_request(full).unwrap() {
            Request::Obs(c) => {
                assert_eq!(c.level, Some(proxim_obs::Level::Trace));
                assert_eq!(c.sample_every, Some(4));
                assert_eq!(c.slow_ms, Some(100));
                assert!(c.dump);
            }
            other => panic!("expected obs, got {other:?}"),
        }
        for bad in [
            br#"{"op":"obs","level":"loud"}"#.as_slice(),
            br#"{"op":"obs","sample_every":-1}"#.as_slice(),
            br#"{"op":"obs","sample_every":1.5}"#.as_slice(),
            br#"{"op":"obs","dump":"yes"}"#.as_slice(),
        ] {
            assert_eq!(
                parse_request(bad).unwrap_err().kind,
                ErrorKind::BadRequest,
                "{}",
                String::from_utf8_lossy(bad)
            );
        }
    }
}
