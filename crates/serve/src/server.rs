//! The daemon loop: bounded admission, typed shedding, deadlines, drain.
//!
//! # Threading model
//!
//! One *acceptor* thread polls a non-blocking `UnixListener`; each accepted
//! connection gets its own handler thread; a fixed pool of *worker*
//! threads services a single bounded admission queue. A connection thread
//! reads one frame, decodes it, and either answers inline (health, stats,
//! list — probes must work even under full overload, so they never touch
//! the queue) or submits a job and waits for the rendered response, then
//! writes it back. Per-connection request/response alternation makes the
//! wire trivially ordered: a response is always complete before the next
//! frame is read, so a drain can never tear one.
//!
//! # Robustness mechanisms (each typed, each testable)
//!
//! - **Bounded admission + load shedding**: the queue has a hard capacity;
//!   a request that arrives when it is full is *shed* with a typed
//!   `overloaded` response and counted ([`serve_metrics::SHED`]) — never
//!   silently dropped, never unboundedly buffered.
//! - **Per-request deadlines**: every admitted job carries a
//!   [`CancelToken`] whose wall-clock deadline starts at admission; workers
//!   check it before and between evaluations, so a request that waited out
//!   its deadline in the queue answers `deadline_exceeded` instead of
//!   burning evaluation time nobody is waiting for.
//! - **Slow-client bounds**: reads and writes against the peer carry
//!   timeouts. An idle client is closed after the read timeout; a client
//!   that stalls a response write is closed and counted
//!   ([`serve_metrics::WRITE_TIMEOUTS`]) so it cannot pin a handler thread.
//! - **Drain on `SIGTERM`**: cancelling [`Server::shutdown_token`] stops
//!   the acceptor, lets every in-flight request finish (or shed typed),
//!   completes in-progress response writes, and [`Server::join`] returns
//!   the final metrics snapshot for the flush — exit is clean, not torn.

use crate::library::{
    judge_candidate, AcquireError, LibraryOptions, ModelLibrary, ReloadRejection,
};
use crate::proto::{
    self, frame_bytes, is_timeout, model_error_to_proto, parse_request, read_frame, render_batch,
    render_error, render_error_traced, render_health, render_list, render_reload_rejected,
    render_reload_swapped, render_timing, ErrorKind, ObsControl, ProtoError, Request, TraceEcho,
    WireQuery,
};
use crate::wirefault::WireFaultStream;
use proxim_model::{GateTiming, ProximityModel};
use proxim_obs::json::{push_escaped, push_f64};
use proxim_obs::serve_metrics as sm;
use proxim_obs::{exposition, flight, trace, Counter, Gauge, Histogram, Registry, Snapshot};
use proxim_spice::CancelToken;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for one daemon instance. Every bound exists so that no client,
/// workload, or peer behaviour can make the daemon's memory or thread-hold
/// time unbounded.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads servicing the admission queue.
    pub workers: usize,
    /// Hard capacity of the admission queue; requests beyond it are shed
    /// with a typed `overloaded` response.
    pub queue_capacity: usize,
    /// Wall-clock budget per admitted request, measured from admission
    /// (queue wait included).
    pub request_deadline: Duration,
    /// How long a connection may sit idle (no frame started) before it is
    /// closed.
    pub read_timeout: Duration,
    /// How long a response write may stall against a slow client before
    /// the connection is dropped.
    pub write_timeout: Duration,
    /// How long [`Server::join`] waits for connection handlers to finish
    /// their in-flight responses during drain.
    pub drain_grace: Duration,
    /// Test hook: an artificial stall inserted before each job is
    /// evaluated, so overload tests and benchmarks can congest the queue
    /// deterministically. Zero (the default) in production.
    pub worker_stall: Duration,
    /// Head-sampling rate for request traces: 1 in `trace_sample_every`
    /// requests is written to the JSONL sink (when tracing is on). Zero
    /// disables head sampling; slow requests are force-sampled regardless.
    /// Adjustable at runtime via the `obs` protocol op.
    pub trace_sample_every: u64,
    /// End-to-end latency at or above which a request counts as *slow*:
    /// it increments [`sm::SLOW`], emits a `serve.slow` event, and is
    /// force-sampled into the trace. Adjustable at runtime via `obs`.
    pub slow_threshold: Duration,
    /// Flight-recorder ring capacity the daemon ensures at start. The
    /// recorder is process-wide and its capacity is fixed at first enable;
    /// zero leaves the recorder exactly as the process configured it
    /// (neither enabled nor disabled).
    pub flight_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            request_deadline: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            drain_grace: Duration::from_secs(5),
            worker_stall: Duration::ZERO,
            trace_sample_every: 16,
            slow_threshold: Duration::from_millis(250),
            flight_capacity: flight::DEFAULT_CAPACITY,
        }
    }
}

/// One admitted unit of work.
struct Job {
    model: Arc<ProximityModel>,
    /// `Some(load_us)` when admission paid a cold model load (echoed on
    /// the response as `"cold":true,"load_us":N`).
    cold_load_us: Option<u64>,
    queries: Vec<WireQuery>,
    /// Whether to render a batch envelope (even for a single query).
    batch: bool,
    /// Deadline clock, started at admission.
    cancel: CancelToken,
    admitted_at: Instant,
    /// Request sequence number (the in-flight table key).
    seq: u64,
    /// Correlation id (client-supplied or server-generated).
    trace_id: String,
    /// Microseconds the connection spent admitting this job.
    admit_us: u64,
    reply: mpsc::SyncSender<WorkerReply>,
}

/// What a worker hands back: the rendered response plus the phase timings
/// only it could measure.
struct WorkerReply {
    response: String,
    queue_us: u64,
    execute_us: u64,
}

/// One row of the live in-flight request table the `stats` op reports.
struct InFlight {
    trace_id: String,
    op: &'static str,
    since: Instant,
    phase: &'static str,
}

/// The per-request trace context a connection carries from admission to
/// the end of the response write, where [`finish_request`] turns it into
/// histograms, sampling decisions, and retroactive spans.
struct ReqTrace {
    seq: u64,
    trace_id: String,
    op: &'static str,
    start: Instant,
    /// Request start on the [`trace::now_us`] clock, for span timestamps.
    start_ts: u64,
    admit_us: u64,
    queue_us: u64,
    execute_us: u64,
}

struct Shared {
    /// The live library generation. Every request clones the `Arc` under a
    /// brief lock (a pointer copy, never held across I/O or evaluation);
    /// reload swaps the `Arc`, and in-flight requests finish on the
    /// generation they started on.
    library: Mutex<Arc<ModelLibrary>>,
    /// Serializes reloads: candidate load + validation happens off to the
    /// side, and two concurrent `reload` ops must not race their swaps.
    reload_lock: Mutex<()>,
    opts: ServeOptions,
    shutdown: CancelToken,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    registry: Arc<Registry>,
    active_conns: AtomicUsize,
    conn_seq: AtomicU64,
    started: Instant,
    /// Request sequence counter; also drives head sampling.
    req_seq: AtomicU64,
    /// Live copies of the runtime-adjustable observability knobs.
    sample_every: AtomicU64,
    slow_us: AtomicU64,
    /// Queue-depth changes seen; rate-limits the depth counter track
    /// (see [`Shared::emit_queue_depth`]).
    depth_emit_seq: AtomicU64,
    /// The in-flight request table, keyed by request sequence number.
    inflight: Mutex<BTreeMap<u64, InFlight>>,
    /// Pre-resolved handles for the metrics touched on every request —
    /// a registry lookup is a global lock plus a name allocation, which
    /// is fine per connection but not per request.
    hot: HotMetrics,
}

/// Metric handles resolved once at startup for the per-request path.
struct HotMetrics {
    requests: Counter,
    shed: Counter,
    slow: Counter,
    trace_sampled: Counter,
    queue_depth: Gauge,
    phase_admit: Histogram,
    phase_queue: Histogram,
    phase_execute: Histogram,
    phase_write: Histogram,
}

impl HotMetrics {
    fn resolve(registry: &Registry) -> Self {
        let hist = |name| registry.histogram(name, sm::PHASE_SECONDS_BOUNDS);
        Self {
            requests: registry.counter(sm::REQUESTS),
            shed: registry.counter(sm::SHED),
            slow: registry.counter(sm::SLOW),
            trace_sampled: registry.counter(sm::TRACE_SAMPLED),
            queue_depth: registry.gauge(sm::QUEUE_DEPTH),
            phase_admit: hist(sm::PHASE_ADMIT_SECONDS),
            phase_queue: hist(sm::PHASE_QUEUE_SECONDS),
            phase_execute: hist(sm::PHASE_EXECUTE_SECONDS),
            phase_write: hist(sm::PHASE_WRITE_SECONDS),
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros() as u64
}

/// A successful reload's summary, for the wire response and the SIGHUP log
/// line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The generation now serving.
    pub generation: u64,
    /// Servable models in the new generation.
    pub models: usize,
    /// Microseconds the candidate took to load, validate, and swap.
    pub reload_us: u64,
}

impl Shared {
    fn count(&self, name: &str) {
        self.registry.counter(name).incr();
    }

    /// The live library generation: a pointer copy under a brief lock.
    fn library(&self) -> Arc<ModelLibrary> {
        Arc::clone(&lock(&self.library))
    }

    /// Loads a candidate generation from the live library's store, judges
    /// it against the live one, and — if it is no worse (or `force`) —
    /// swaps it in. Never blocks queries: the candidate loads outside the
    /// library lock, and the swap itself is one pointer exchange.
    fn do_reload(
        &self,
        force: bool,
        label: Option<String>,
    ) -> Result<ReloadOutcome, ReloadRejection> {
        let _serial = lock(&self.reload_lock);
        let start = Instant::now();
        let live = self.library();
        let candidate = ModelLibrary::open_with(
            live.store(),
            LibraryOptions {
                memory_budget: live.options().memory_budget,
                generation: live.generation() + 1,
                label,
            },
        );
        if let Err(rej) = judge_candidate(&candidate, &live, force) {
            self.count(sm::RELOAD_REJECTED);
            drop(
                trace::event("serve.reload.rejected")
                    .arg("generation", candidate.generation())
                    .arg("reasons", rej.reasons.join("; ")),
            );
            return Err(rej);
        }
        candidate.bind_metrics(&self.registry);
        self.registry
            .counter(sm::STORE_QUARANTINED)
            .add(candidate.report().quarantined.len() as u64);
        let outcome = ReloadOutcome {
            generation: candidate.generation(),
            models: candidate.len(),
            reload_us: elapsed_us(start),
        };
        *lock(&self.library) = Arc::new(candidate);
        self.registry
            .gauge(sm::GENERATION)
            .set(outcome.generation as f64);
        self.count(sm::RELOAD_SWAPPED);
        drop(
            trace::event("serve.reload.swapped")
                .arg("generation", outcome.generation)
                .arg("models", outcome.models as u64)
                .arg("reload_us", outcome.reload_us),
        );
        Ok(outcome)
    }

    fn set_phase(&self, seq: u64, phase: &'static str) {
        if let Some(e) = lock(&self.inflight).get_mut(&seq) {
            e.phase = phase;
        }
    }

    /// Updates the queue-depth gauge and, for every 64th depth change,
    /// emits a counter-track record for it. The gauge (and the live
    /// `stats` op reading it) is always exact; the trace record is a
    /// graph sample, and one in 64 is far denser than any viewer renders
    /// at serving rates. The limiter counts changes rather than watching
    /// the clock because a clock read is a syscall on some hosts — two
    /// per request is a measurable tracing tax, a relaxed fetch_add is
    /// not.
    fn emit_queue_depth(&self, depth: usize) {
        self.hot.queue_depth.set(depth as f64);
        if !(proxim_obs::trace_enabled() || flight::enabled()) {
            return;
        }
        if self
            .depth_emit_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(64)
        {
            trace::emit_counter(sm::QUEUE_DEPTH, depth as f64);
        }
    }
}

/// One transport the daemon listens on. The Unix socket is the native
/// front end; the TCP front end makes replicas reachable beyond the local
/// filesystem (a fleet spread across hosts). Both speak the identical
/// frame protocol.
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Self::Unix(l) => l.set_nonblocking(true),
            Self::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Self::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Self::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

/// One accepted connection, Unix or TCP, behind a single Read/Write
/// surface so the connection loop is transport-agnostic.
pub(crate) enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Unix(s) => s.set_read_timeout(d),
            Self::Tcp(s) => s.set_read_timeout(d),
        }
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Unix(s) => s.set_write_timeout(d),
            Self::Tcp(s) => s.set_write_timeout(d),
        }
    }
}

// Read/Write on `&Conn` mirror the std `&UnixStream`/`&TcpStream` impls:
// the connection loop reads and writes through shared references, exactly
// as it did when it held a bare `UnixStream`.
impl Read for &Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match *self {
            Conn::Unix(s) => (&*s).read(buf),
            Conn::Tcp(s) => (&*s).read(buf),
        }
    }
}

impl Write for &Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match *self {
            Conn::Unix(s) => (&*s).write(buf),
            Conn::Tcp(s) => (&*s).write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match *self {
            Conn::Unix(s) => (&*s).flush(),
            Conn::Tcp(s) => (&*s).flush(),
        }
    }
}

/// Binds the daemon's Unix socket without stealing a live daemon's.
///
/// An existing file at the path is *probed with a connect* first: a
/// successful connect means a daemon is accepting there right now, and
/// binding over it would silently steal its clients — that fails typed
/// [`io::ErrorKind::AddrInUse`]. Only a dead socket (connect refused:
/// debris of a SIGKILL that never reached `join`) is unlinked and rebound.
fn bind_unix_guarded(socket_path: &Path) -> io::Result<UnixListener> {
    if socket_path.exists() {
        match UnixStream::connect(socket_path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!(
                        "socket {} is owned by a live daemon; refusing to steal it",
                        socket_path.display()
                    ),
                ))
            }
            // Connect refused / not-a-socket: stale debris, safe to clear.
            Err(_) => {
                let _ = std::fs::remove_file(socket_path);
            }
        }
    }
    UnixListener::bind(socket_path)
}

/// A running daemon instance: acceptors, workers, and the shared state
/// that connection handlers hang off.
pub struct Server {
    shared: Arc<Shared>,
    acceptors: Vec<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Binds `socket` and starts serving `library`.
    ///
    /// A *stale* socket file at the path (debris of an unclean previous
    /// death) is removed before binding; a socket a live daemon still
    /// answers on fails typed `AddrInUse` instead of being stolen.
    /// Quarantine events from the library's load report are mirrored into
    /// the metrics registry so a degraded start is visible in `stats` from
    /// the first request.
    ///
    /// # Errors
    ///
    /// Only socket binding can fail; a degraded (even empty) library is
    /// served rather than refused.
    pub fn start(
        library: ModelLibrary,
        socket: impl Into<PathBuf>,
        opts: ServeOptions,
    ) -> io::Result<Self> {
        Self::start_with(library, Some(socket.into()), None, opts)
    }

    /// Binds any combination of a Unix socket and a TCP front end
    /// (`tcp` is a `host:port` string; port `0` picks a free port,
    /// readable back via [`Server::tcp_addr`]). At least one listener is
    /// required. Both listeners feed the same admission queue and worker
    /// pool; the wire protocol is identical on both.
    ///
    /// # Errors
    ///
    /// Binding failures, including the typed `AddrInUse` refusal to steal
    /// a live daemon's Unix socket, and `InvalidInput` when no listener
    /// was requested.
    pub fn start_with(
        library: ModelLibrary,
        socket: Option<PathBuf>,
        tcp: Option<&str>,
        opts: ServeOptions,
    ) -> io::Result<Self> {
        let mut listeners = Vec::new();
        let socket_path = match socket {
            Some(path) => {
                listeners.push(Listener::Unix(bind_unix_guarded(&path)?));
                Some(path)
            }
            None => None,
        };
        let tcp_addr = match tcp {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                let bound = listener.local_addr()?;
                listeners.push(Listener::Tcp(listener));
                Some(bound)
            }
            None => None,
        };
        if listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server needs at least one listener (unix socket or tcp)",
            ));
        }
        for listener in &listeners {
            listener.set_nonblocking()?;
        }

        let registry = Arc::new(Registry::new());
        registry
            .counter(sm::STORE_QUARANTINED)
            .add(library.report().quarantined.len() as u64);
        library.bind_metrics(&registry);
        registry
            .gauge(sm::GENERATION)
            .set(library.generation() as f64);
        // Touch the headline metrics so a flush from an idle daemon still
        // reports them as explicit zeros.
        for name in [
            sm::REQUESTS,
            sm::SHED,
            sm::PROTO_ERRORS,
            sm::CONNECTIONS,
            sm::SLOW,
            sm::TRACE_SAMPLED,
        ] {
            registry.counter(name).add(0);
        }

        // The flight recorder is the daemon's black box: ensure it is on
        // (process-wide; capacity fixed at the first enable anywhere in
        // the process) unless the caller explicitly opted out.
        if opts.flight_capacity > 0 {
            flight::enable(opts.flight_capacity);
        }

        let hot = HotMetrics::resolve(&registry);
        let shared = Arc::new(Shared {
            library: Mutex::new(Arc::new(library)),
            reload_lock: Mutex::new(()),
            opts: opts.clone(),
            shutdown: CancelToken::new(),
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            registry,
            active_conns: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
            started: Instant::now(),
            req_seq: AtomicU64::new(0),
            sample_every: AtomicU64::new(opts.trace_sample_every),
            slow_us: AtomicU64::new(opts.slow_threshold.as_micros() as u64),
            depth_emit_seq: AtomicU64::new(0),
            inflight: Mutex::new(BTreeMap::new()),
            hot,
        });

        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptors = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-acceptor-{i}"))
                    .spawn(move || acceptor_loop(&shared, &listener))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Self {
            shared,
            acceptors,
            workers,
            socket_path,
            tcp_addr,
        })
    }

    /// The Unix socket path clients connect to. A TCP-only server (see
    /// [`Server::start_with`]) has none and returns the empty path; such
    /// callers address the daemon via [`Server::tcp_addr`].
    pub fn socket_path(&self) -> &Path {
        self.socket_path.as_deref().unwrap_or_else(|| Path::new(""))
    }

    /// The bound TCP address, when a TCP front end was requested. Useful
    /// with port `0`: the OS-assigned port is readable here.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// How many models are servable.
    pub fn model_count(&self) -> usize {
        self.shared.library().len()
    }

    /// Whether the library lost entries to quarantine at load.
    pub fn is_degraded(&self) -> bool {
        self.shared.library().is_degraded()
    }

    /// The live library generation (a snapshot; reload may swap it the
    /// moment this returns).
    pub fn library(&self) -> Arc<ModelLibrary> {
        self.shared.library()
    }

    /// Reloads the library from its store: load a candidate generation,
    /// validate it against the live one, swap if no worse (or `force`).
    /// The same operation the `reload` wire op and the daemon's `SIGHUP`
    /// handler perform.
    ///
    /// # Errors
    ///
    /// A [`ReloadRejection`] when the candidate loaded worse than the live
    /// generation; the live generation is untouched.
    pub fn reload(
        &self,
        force: bool,
        label: Option<String>,
    ) -> Result<ReloadOutcome, ReloadRejection> {
        self.shared.do_reload(force, label)
    }

    /// The daemon's metrics registry (shared; snapshot any time).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// A clone of the shutdown token. Cancelling it (directly, or from a
    /// `SIGTERM` handler — [`CancelToken::cancel`] is a single atomic
    /// store, safe in signal context) begins the drain.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shared.shutdown.clone()
    }

    /// Begins the drain: stop accepting, let in-flight work finish.
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.cancel();
    }

    /// Waits out the drain and returns the final metrics snapshot (the
    /// caller flushes it). Blocks until the shutdown token is cancelled:
    /// the acceptor exits, workers drain the admitted queue, and
    /// connection handlers get up to `drain_grace` to complete their
    /// in-flight response writes. The socket file is removed.
    pub fn join(mut self) -> Snapshot {
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let drain_deadline = Instant::now() + self.shared.opts.drain_grace;
        while self.shared.active_conns.load(Ordering::Acquire) > 0
            && Instant::now() < drain_deadline
        {
            thread::sleep(Duration::from_millis(5));
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        self.shared.registry.snapshot()
    }
}

/// How often blocked loops re-check the shutdown token.
const POLL: Duration = Duration::from_millis(10);

fn acceptor_loop(shared: &Arc<Shared>, listener: &Listener) {
    loop {
        if shared.shutdown.is_cancelled() {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let index = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                shared.count(sm::CONNECTIONS);
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                shared
                    .registry
                    .gauge(sm::ACTIVE_CONNECTIONS)
                    .set(shared.active_conns.load(Ordering::Acquire) as f64);
                let conn_shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name(format!("serve-conn-{index}"))
                    .spawn(move || {
                        connection_loop(&conn_shared, stream, index);
                        conn_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                        conn_shared
                            .registry
                            .gauge(sm::ACTIVE_CONNECTIONS)
                            .set(conn_shared.active_conns.load(Ordering::Acquire) as f64);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: the connection is dropped (the
                    // stream closes), and both the counter and the gauge
                    // are repaired.
                    let remaining = shared.active_conns.fetch_sub(1, Ordering::AcqRel) - 1;
                    shared
                        .registry
                        .gauge(sm::ACTIVE_CONNECTIONS)
                        .set(remaining as f64);
                }
            }
            // Non-blocking listener: no pending connection. Sleep one poll
            // tick so shutdown is noticed promptly without busy-spinning.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// A reader that counts delivered bytes, so the connection loop can tell
/// an *idle* timeout (no frame started — benign keep-alive) from a stall
/// *mid-frame* (a slow or wedged client that must be dropped).
struct CountingReader<'a> {
    inner: &'a Conn,
    delivered: usize,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut inner = self.inner;
        let n = inner.read(buf)?;
        self.delivered += n;
        Ok(n)
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: Conn, index: u64) {
    // Reads poll at a short interval so a draining daemon never waits a
    // full idle timeout on a quiet connection; writes get the configured
    // slow-client bound directly.
    if stream.set_read_timeout(Some(POLL)).is_err()
        || stream
            .set_write_timeout(Some(shared.opts.write_timeout))
            .is_err()
    {
        return;
    }
    let mut faults = WireFaultStream::for_connection(index);
    let mut idle = Duration::ZERO;
    loop {
        if shared.shutdown.is_cancelled() {
            return;
        }
        if let Some(delay) = faults.read_delay() {
            thread::sleep(delay);
        }
        let mut reader = CountingReader {
            inner: &stream,
            delivered: 0,
        };
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => {
                idle = Duration::ZERO;
                payload
            }
            Ok(None) => return, // clean close
            Err(e) if is_timeout(&e) && reader.delivered == 0 => {
                idle += POLL;
                if idle >= shared.opts.read_timeout {
                    return; // idle client: close
                }
                continue;
            }
            Err(e) if e.kind == ErrorKind::BadFrame || is_timeout(&e) => {
                // Hostile framing or a mid-frame stall. Framing is now
                // unrecoverable on this connection: answer typed
                // (best-effort — the peer may already be gone) and close.
                shared.count(sm::PROTO_ERRORS);
                let e = if is_timeout(&e) {
                    ProtoError::new(
                        ErrorKind::BadFrame,
                        format!("read stalled {} bytes into a frame", reader.delivered),
                    )
                } else {
                    e
                };
                let _ = write_response(shared, &stream, &mut faults, &render_error(&e));
                return;
            }
            Err(_) => return, // transport failure: nothing to answer into
        };
        let (response, req_trace) = respond_to(shared, &payload);
        if let Some(t) = &req_trace {
            shared.set_phase(t.seq, "write");
        }
        let write_start = Instant::now();
        let wrote = write_response(shared, &stream, &mut faults, &response);
        // Finish observability even when the write failed: the request
        // still happened, and the flight ring is how a post-mortem learns
        // about responses the client never received.
        if let Some(t) = req_trace {
            finish_request(shared, &t, write_start.elapsed());
        }
        if wrote.is_err() {
            return;
        }
    }
}

/// Turns a completed request's measurements into phase histograms, the
/// slow-request log, the head-sampling decision, and retroactive spans.
///
/// Spans are emitted *after* the fact with explicit timestamps
/// ([`trace::emit_span_at`]) because the sink decision depends on the
/// total latency: every request is measured, only sampled or slow ones
/// reach the JSONL sink, and the flight ring records all of them.
fn finish_request(shared: &Arc<Shared>, t: &ReqTrace, write: Duration) {
    let write_us = write.as_micros() as u64;
    let total_us = elapsed_us(t.start);
    let hot = &shared.hot;
    for (hist, us) in [
        (&hot.phase_admit, t.admit_us),
        (&hot.phase_queue, t.queue_us),
        (&hot.phase_execute, t.execute_us),
        (&hot.phase_write, write_us),
    ] {
        hist.observe(us as f64 * 1e-6);
    }
    let sample_every = shared.sample_every.load(Ordering::Relaxed);
    let sampled = sample_every > 0 && t.seq.is_multiple_of(sample_every);
    let slow = total_us >= shared.slow_us.load(Ordering::Relaxed);
    if slow {
        hot.slow.incr();
        drop(
            trace::event("serve.slow")
                .arg("trace_id", &t.trace_id)
                .arg("op", t.op)
                .arg("total_us", total_us),
        );
    }
    let to_sink = sampled || slow;
    if to_sink && proxim_obs::trace_enabled() {
        hot.trace_sampled.incr();
    }
    // One batch for the whole request tree: five records, one sink lock.
    let write_start_ts = t.start_ts + total_us.saturating_sub(write_us);
    trace::emit_span_tree_at(
        &trace::SpanAt {
            name: "serve.request",
            start_us: t.start_ts,
            dur_us: total_us,
            args: &[("trace_id", t.trace_id.as_str()), ("op", t.op)],
        },
        &[
            trace::SpanAt {
                name: "serve.admit",
                start_us: t.start_ts,
                dur_us: t.admit_us,
                args: &[],
            },
            trace::SpanAt {
                name: "serve.queue_wait",
                start_us: t.start_ts + t.admit_us,
                dur_us: t.queue_us,
                args: &[],
            },
            trace::SpanAt {
                name: "serve.execute",
                start_us: t.start_ts + t.admit_us + t.queue_us,
                dur_us: t.execute_us,
                args: &[],
            },
            trace::SpanAt {
                name: "serve.write",
                start_us: write_start_ts,
                dur_us: write_us,
                args: &[],
            },
        ],
        to_sink,
    );
    lock(&shared.inflight).remove(&t.seq);
}

/// Writes one response frame, honouring fault injection and the
/// slow-client write timeout. `Err` means the connection must close.
fn write_response(
    shared: &Arc<Shared>,
    stream: &Conn,
    faults: &mut WireFaultStream,
    response: &str,
) -> Result<(), ()> {
    let mut stream = stream;
    let frame = frame_bytes(response.as_bytes());
    if let Some(keep) = faults.torn_write(frame.len()) {
        // Injected tear: send a strict prefix, then drop the connection.
        let _ = stream.write_all(&frame[..keep]);
        let _ = stream.flush();
        return Err(());
    }
    let result = stream.write_all(&frame).and_then(|()| stream.flush());
    match result {
        Ok(()) => Ok(()),
        Err(e) => {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                shared.count(sm::WRITE_TIMEOUTS);
            }
            Err(())
        }
    }
}

/// Decodes one frame payload and produces the rendered response (plus the
/// per-request trace context for queries, finished after the write).
/// Probes (health, stats, list, metrics, obs) answer inline; queries go
/// through admission.
fn respond_to(shared: &Arc<Shared>, payload: &[u8]) -> (String, Option<ReqTrace>) {
    let request = match parse_request(payload) {
        Ok(r) => r,
        Err(e) => {
            shared.count(sm::PROTO_ERRORS);
            return (render_error(&e), None);
        }
    };
    match request {
        Request::Health => {
            let status = if shared.shutdown.is_cancelled() {
                "draining"
            } else {
                "serving"
            };
            let lib = shared.library();
            (
                render_health(
                    status,
                    lib.len(),
                    lib.is_degraded(),
                    lib.generation(),
                    lib.report().root_error.as_deref(),
                ),
                None,
            )
        }
        Request::Stats => (render_stats(shared), None),
        Request::List => (render_list(&shared.library().names()), None),
        Request::Metrics => {
            let mut out = String::from("{\"ok\":true,\"exposition\":");
            push_escaped(&mut out, &exposition::render(&shared.registry.snapshot()));
            out.push('}');
            (out, None)
        }
        Request::Obs(control) => (apply_obs(shared, &control), None),
        Request::Reload { force, label } => {
            // Answered inline like the other control-plane ops: a reload
            // must work while the queue is full of queries. Racing a
            // shutdown answers typed — a draining daemon is about to drop
            // the library anyway.
            if shared.shutdown.is_cancelled() {
                return (
                    render_error(&ProtoError::new(
                        ErrorKind::ShuttingDown,
                        "daemon is draining; reload refused",
                    )),
                    None,
                );
            }
            let response = match shared.do_reload(force, label) {
                Ok(outcome) => {
                    render_reload_swapped(outcome.generation, outcome.models, outcome.reload_us)
                }
                Err(rej) => render_reload_rejected(&rej),
            };
            (response, None)
        }
        Request::Fleet => (
            render_error(&ProtoError::new(
                ErrorKind::BadRequest,
                "this daemon is not a fleet supervisor; send \"fleet\" to the fleet control socket",
            )),
            None,
        ),
        Request::Query {
            model,
            query,
            trace_id,
        } => admit(shared, &model, vec![query], false, trace_id, "query"),
        Request::Batch {
            model,
            queries,
            trace_id,
        } => admit(shared, &model, queries, true, trace_id, "batch"),
    }
}

fn level_wire_name(level: proxim_obs::Level) -> &'static str {
    match level {
        proxim_obs::Level::Off => "off",
        proxim_obs::Level::Metrics => "metrics",
        proxim_obs::Level::Trace => "trace",
    }
}

/// Appends the current observability configuration object:
/// `{"level":...,"sample_every":N,"slow_ms":N,"flight":{...}}`.
fn push_obs_config(shared: &Arc<Shared>, out: &mut String) {
    out.push_str("{\"level\":");
    push_escaped(out, level_wire_name(proxim_obs::level()));
    out.push_str(&format!(
        ",\"sample_every\":{},\"slow_ms\":{}",
        shared.sample_every.load(Ordering::Relaxed),
        shared.slow_us.load(Ordering::Relaxed) / 1000
    ));
    out.push_str(&format!(
        ",\"flight\":{{\"enabled\":{},\"capacity\":{},\"recorded\":{}}}}}",
        flight::enabled(),
        flight::capacity(),
        flight::recorded()
    ));
}

/// Renders the extended `stats` response: uptime, queue depth, the live
/// in-flight request table, the observability configuration, and the full
/// registry snapshot (histograms with percentiles).
fn render_stats(shared: &Arc<Shared>) -> String {
    let uptime = shared.started.elapsed().as_secs_f64();
    shared.registry.gauge(sm::UPTIME_SECONDS).set(uptime);
    let queue_depth = lock(&shared.queue).len();
    let mut out = String::from("{\"ok\":true,\"uptime_s\":");
    push_f64(&mut out, uptime);
    out.push_str(&format!(",\"queue_depth\":{queue_depth},\"inflight\":["));
    {
        let inflight = lock(&shared.inflight);
        for (i, entry) in inflight.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"trace_id\":");
            push_escaped(&mut out, &entry.trace_id);
            out.push_str(",\"op\":");
            push_escaped(&mut out, entry.op);
            out.push_str(&format!(
                ",\"age_us\":{},\"phase\":",
                elapsed_us(entry.since)
            ));
            push_escaped(&mut out, entry.phase);
            out.push('}');
        }
    }
    out.push_str("],\"obs\":");
    push_obs_config(shared, &mut out);
    out.push_str(",\"stats\":");
    out.push_str(&shared.registry.snapshot().to_json());
    out.push('}');
    out
}

/// Escaping a dump into a JSON string inflates it (every quote gains a
/// backslash), so the raw budget is held well under [`proto::MAX_FRAME_BYTES`].
const DUMP_FRAME_BUDGET: usize = 600 * 1024;

/// The flight dump, tail-truncated at line boundaries so its *escaped*
/// JSON form fits in a response frame. The header line is always kept;
/// when truncating, the newest records win — they are what a live
/// operator is asking about.
fn dump_for_frame(budget: usize) -> (String, bool) {
    let dump = flight::dump();
    let mut lines = dump.lines();
    let header = lines.next().unwrap_or("");
    let body: Vec<&str> = lines.collect();
    let escaped_len = |s: &str| {
        s.len() + s.bytes().filter(|b| matches!(b, b'"' | b'\\')).count() + 2 // "\n"
    };
    let mut size = escaped_len(header);
    let mut keep_from = body.len();
    for (i, line) in body.iter().enumerate().rev() {
        let cost = escaped_len(line);
        if size + cost > budget {
            break;
        }
        size += cost;
        keep_from = i;
    }
    let mut text = String::with_capacity(size);
    text.push_str(header);
    for line in &body[keep_from..] {
        text.push('\n');
        text.push_str(line);
    }
    (text, keep_from > 0)
}

/// Applies runtime observability changes and renders the `obs` response.
/// Level changes are process-wide (the obs crate owns one level); sampling
/// and slow-threshold changes are per-daemon.
fn apply_obs(shared: &Arc<Shared>, control: &ObsControl) -> String {
    if let Some(level) = control.level {
        proxim_obs::set_level(level);
    }
    if let Some(n) = control.sample_every {
        shared.sample_every.store(n, Ordering::Relaxed);
    }
    if let Some(ms) = control.slow_ms {
        shared
            .slow_us
            .store(ms.saturating_mul(1000), Ordering::Relaxed);
    }
    let mut out = String::from("{\"ok\":true,\"obs\":");
    push_obs_config(shared, &mut out);
    if control.dump {
        let (dump, truncated) = dump_for_frame(DUMP_FRAME_BUDGET);
        out.push_str(",\"truncated\":");
        out.push_str(if truncated { "true" } else { "false" });
        out.push_str(",\"dump\":");
        push_escaped(&mut out, &dump);
    }
    out.push('}');
    out
}

/// The retry-after hint stamped on shed responses: roughly how long the
/// full queue needs to drain ahead of a retry (`queue_capacity / workers`
/// jobs of `worker_stall` each), clamped to a sane band. With no
/// configured stall (production: real evaluation is microseconds) a small
/// constant keeps retrying clients from hammering a momentary spike.
fn retry_after_hint(opts: &ServeOptions) -> u64 {
    let stall_ms = opts.worker_stall.as_millis() as u64;
    if stall_ms == 0 {
        return 5;
    }
    let jobs_per_worker = (opts.queue_capacity / opts.workers.max(1)).max(1) as u64;
    stall_ms.saturating_mul(jobs_per_worker).clamp(1, 5_000)
}

/// Admission: resolve the model, reserve a queue slot or shed, and wait
/// for the worker's rendered response. Every outcome — including shed,
/// unknown-model, and drain refusals — carries the request's trace context
/// back so it lands in the histograms and the flight ring.
fn admit(
    shared: &Arc<Shared>,
    model: &str,
    queries: Vec<WireQuery>,
    batch: bool,
    trace_id: Option<String>,
    op: &'static str,
) -> (String, Option<ReqTrace>) {
    let start = Instant::now();
    let start_ts = trace::now_us();
    let seq = shared.req_seq.fetch_add(1, Ordering::Relaxed);
    let trace_id = trace_id.unwrap_or_else(|| format!("r{seq}"));
    lock(&shared.inflight).insert(
        seq,
        InFlight {
            trace_id: trace_id.clone(),
            op,
            since: start,
            phase: "admit",
        },
    );
    let mut t = ReqTrace {
        seq,
        trace_id,
        op,
        start,
        start_ts,
        admit_us: 0,
        queue_us: 0,
        execute_us: 0,
    };
    let refuse = |mut t: ReqTrace, e: &ProtoError| {
        t.admit_us = elapsed_us(t.start);
        (render_error_traced(e, Some(&t.trace_id)), Some(t))
    };
    if shared.shutdown.is_cancelled() {
        return refuse(
            t,
            &ProtoError::new(
                ErrorKind::ShuttingDown,
                "daemon is draining; no new work admitted",
            ),
        );
    }
    // Snapshot the live generation: this request runs entirely against it,
    // even if a reload swaps the library mid-flight.
    let library = shared.library();
    let acquired = match library.acquire(model) {
        Ok(a) => a,
        Err(AcquireError::UnknownModel) => {
            return refuse(
                t,
                &ProtoError::new(
                    ErrorKind::UnknownModel,
                    format!("no model named {model:?} (try op \"list\")"),
                ),
            );
        }
        Err(e @ AcquireError::LoadFailed(_)) => {
            return refuse(t, &ProtoError::new(ErrorKind::Internal, e.to_string()));
        }
    };
    if acquired.cold {
        drop(
            trace::event("serve.library.cold_miss")
                .arg("trace_id", &t.trace_id)
                .arg("load_us", acquired.load_us),
        );
    }
    let (tx, rx) = mpsc::sync_channel(1);
    {
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.opts.queue_capacity {
            drop(queue);
            shared.hot.shed.incr();
            drop(
                trace::event("serve.shed")
                    .arg("trace_id", &t.trace_id)
                    .arg("op", op),
            );
            return refuse(
                t,
                &ProtoError::new(
                    ErrorKind::Overloaded,
                    format!(
                        "admission queue full ({} pending); retry with backoff",
                        shared.opts.queue_capacity
                    ),
                )
                .with_retry_after(retry_after_hint(&shared.opts)),
            );
        }
        t.admit_us = elapsed_us(start);
        queue.push_back(Job {
            model: acquired.model,
            cold_load_us: acquired.cold.then_some(acquired.load_us),
            queries,
            batch,
            cancel: CancelToken::with_deadline_in(shared.opts.request_deadline),
            admitted_at: Instant::now(),
            seq,
            trace_id: t.trace_id.clone(),
            admit_us: t.admit_us,
            reply: tx,
        });
        // Workers exit once they observe the queue empty *and* shutdown
        // cancelled. Re-check cancellation while still holding the queue
        // lock: if it landed between the entry check above and the push,
        // every worker may already have seen empty+cancelled and exited,
        // stranding the job — pop it back (the lock was never released,
        // so it is still the tail) and answer typed instead.
        if shared.shutdown.is_cancelled() {
            queue.pop_back();
            return refuse(
                t,
                &ProtoError::new(
                    ErrorKind::ShuttingDown,
                    "daemon is draining; no new work admitted",
                ),
            );
        }
        shared.hot.requests.incr();
        let depth = queue.len();
        shared.emit_queue_depth(depth);
        shared.job_ready.notify_one();
    }
    shared.set_phase(seq, "queue");
    // Workers always reply (evaluated, deadline-expired, or drain-shed),
    // so this wait only trips if a worker thread died — answer typed
    // rather than wedging the connection forever. A job can sit behind up
    // to queue_capacity stalled predecessors before its turn, so the
    // guard scales with the queue depth.
    let guard = shared.opts.request_deadline
        + shared
            .opts
            .worker_stall
            .saturating_mul(shared.opts.queue_capacity.min(u32::MAX as usize) as u32 + 1)
        + Duration::from_secs(30);
    match rx.recv_timeout(guard) {
        Ok(reply) => {
            t.queue_us = reply.queue_us;
            t.execute_us = reply.execute_us;
            (reply.response, Some(t))
        }
        Err(_) => {
            let resp = render_error_traced(
                &ProtoError::new(ErrorKind::Internal, "worker did not produce a response"),
                Some(&t.trace_id),
            );
            (resp, Some(t))
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    let depth = queue.len();
                    shared.emit_queue_depth(depth);
                    break job;
                }
                // Drain semantics: exit only once the queue is empty, so
                // every admitted request gets its response.
                if shared.shutdown.is_cancelled() {
                    return;
                }
                queue = shared
                    .job_ready
                    .wait_timeout(queue, POLL)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        // Queue wait ends the moment a worker owns the job; the
        // congestion stall is evaluation cost, so it counts as execute.
        let queue_us = elapsed_us(job.admitted_at);
        shared.set_phase(job.seq, "execute");
        let exec_start = Instant::now();
        // The congestion stall models evaluation cost; a job already past
        // its deadline gets none (it only needs its typed answer), so a
        // backlog of expired jobs drains immediately instead of making
        // live requests wait out queue_capacity stalls.
        if !shared.opts.worker_stall.is_zero() && job.cancel.check("serve request").is_ok() {
            thread::sleep(shared.opts.worker_stall);
        }
        let results = evaluate(shared, &job);
        let execute_us = elapsed_us(exec_start);
        let echo = TraceEcho {
            trace_id: job.trace_id.clone(),
            admit_us: job.admit_us,
            queue_us,
            execute_us,
            cold_load_us: job.cold_load_us,
        };
        let response = if job.batch {
            render_batch(&results, Some(&echo))
        } else {
            match results.first() {
                Some(Ok(timing)) => render_timing(timing, Some(&echo)),
                Some(Err(e)) => render_error_traced(e, Some(&echo.trace_id)),
                None => render_error(&ProtoError::new(ErrorKind::Internal, "empty job")),
            }
        };
        shared
            .registry
            .histogram(sm::REQUEST_SECONDS, sm::REQUEST_SECONDS_BOUNDS)
            .observe(job.admitted_at.elapsed().as_secs_f64());
        // The connection may have given up (its own guard timeout); a
        // dead receiver is not an error.
        let _ = job.reply.send(WorkerReply {
            response,
            queue_us,
            execute_us,
        });
    }
}

/// Evaluates one admitted job under its deadline token, returning one
/// outcome per query.
fn evaluate(shared: &Arc<Shared>, job: &Job) -> Vec<Result<GateTiming, ProtoError>> {
    let mut results: Vec<Result<GateTiming, ProtoError>> = Vec::with_capacity(job.queries.len());
    for query in &job.queries {
        // The deadline is checked between items, so a half-expired batch
        // returns real answers for the items it finished and typed
        // `deadline_exceeded` for the rest — honest partial progress.
        if let Err(e) = job.cancel.check("serve request") {
            shared.count(sm::DEADLINE_EXPIRED);
            results.push(Err(ProtoError::new(
                ErrorKind::DeadlineExceeded,
                e.to_string(),
            )));
            continue;
        }
        let outcome = match query.c_load {
            Some(c_load) => job.model.gate_timing_at_load(&query.events, c_load),
            None => job.model.gate_timing(&query.events),
        };
        match outcome {
            Ok(timing) => {
                if timing.degradation.is_some() {
                    shared.count(sm::DEGRADED_ANSWERS);
                }
                results.push(Ok(timing));
            }
            Err(e) => results.push(Err(model_error_to_proto(&e))),
        }
    }
    results
}

/// Convenience client: connect, round-trip one request, disconnect.
///
/// # Errors
///
/// Connection failures surface as [`ErrorKind::Internal`]; everything else
/// comes from [`proto::call`].
pub fn one_shot(socket: &Path, request: &str) -> Result<String, ProtoError> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| ProtoError::new(ErrorKind::Internal, format!("connect: {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    proto::call(&mut stream, request)
}

/// [`one_shot`] over the TCP front end: connect to `addr`
/// (`host:port`), round-trip one request, disconnect.
///
/// # Errors
///
/// Connection failures surface as [`ErrorKind::Internal`]; everything else
/// comes from [`proto::call`].
pub fn one_shot_tcp(addr: &str, request: &str) -> Result<String, ProtoError> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| ProtoError::new(ErrorKind::Internal, format!("connect: {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    proto::call(&mut stream, request)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::store::tests::shared_model;
    use crate::store::ModelStore;
    use proxim_obs::json::Json;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("proxim_server_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_library(dir: &Path) -> ModelLibrary {
        let store = ModelStore::new(dir.join("store"));
        store.save("inv", shared_model()).unwrap();
        ModelLibrary::open(&store)
    }

    const QUERY: &str =
        r#"{"op":"query","model":"inv","events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]}"#;

    #[test]
    fn serves_queries_probes_and_typed_errors() {
        let dir = scratch("basic");
        let server = Server::start(
            test_library(&dir),
            dir.join("s.sock"),
            ServeOptions::default(),
        )
        .unwrap();
        let sock = server.socket_path().to_path_buf();

        // A real query answers with a finite delay and no degradation.
        let resp = one_shot(&sock, QUERY).unwrap();
        let json = Json::parse(&resp).unwrap();
        let timing = json.get("timing").expect(&resp);
        assert!(timing.get("delay").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(timing.get("degraded").and_then(Json::as_str).is_none());

        // Batch answers item-by-item; the bad item is typed, not fatal.
        let batch = r#"{"op":"batch","model":"inv","queries":[
            {"events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}]},
            {"events":[{"pin":0,"edge":"rise","t":0.0,"tt":1e-9}],"c_load":1e-13}]}"#;
        let resp = one_shot(&sock, batch).unwrap();
        let json = Json::parse(&resp).unwrap();
        assert_eq!(json.get("results").and_then(Json::as_arr).unwrap().len(), 2);

        // Probes.
        let health = one_shot(&sock, r#"{"op":"health"}"#).unwrap();
        let json = Json::parse(&health).unwrap();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("serving"));
        let list = one_shot(&sock, r#"{"op":"list"}"#).unwrap();
        assert!(list.contains("\"inv\""), "{list}");
        let stats = one_shot(&sock, r#"{"op":"stats"}"#).unwrap();
        assert!(stats.contains(sm::REQUESTS), "{stats}");

        // Typed errors.
        let resp = one_shot(
            &sock,
            r#"{"op":"query","model":"nope","events":[{"pin":0,"edge":"rise","t":0,"tt":1e-9}]}"#,
        )
        .unwrap();
        assert!(resp.contains("unknown_model"), "{resp}");
        let resp = one_shot(&sock, "definitely not json").unwrap();
        assert!(resp.contains("bad_request"), "{resp}");

        server.begin_shutdown();
        let snap = server.join();
        // Only the query and the batch were *admitted*; probes bypass the
        // queue and the unknown-model / bad-frame requests fail before it.
        assert_eq!(snap.counter(sm::REQUESTS), 2);
        assert_eq!(snap.counter(sm::SHED), 0);
        assert_eq!(snap.counter(sm::PROTO_ERRORS), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_alive_connection_survives_idle_gaps_between_requests() {
        let dir = scratch("keepalive");
        let server = Server::start(
            test_library(&dir),
            dir.join("s.sock"),
            ServeOptions::default(),
        )
        .unwrap();

        // One persistent connection, several requests separated by idle
        // gaps much longer than the internal read-poll tick (but well
        // under read_timeout). The server must treat those as benign
        // keep-alive idleness, not drop the connection.
        let mut stream = UnixStream::connect(server.socket_path()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for i in 0..3 {
            if i > 0 {
                thread::sleep(Duration::from_millis(120));
            }
            let resp = proto::call(&mut stream, QUERY)
                .unwrap_or_else(|e| panic!("request {i} after idle gap failed: {e}"));
            assert!(resp.contains("\"timing\""), "{resp}");
        }
        drop(stream);

        server.begin_shutdown();
        let snap = server.join();
        assert_eq!(snap.counter(sm::REQUESTS), 3);
        assert_eq!(
            snap.counter(sm::PROTO_ERRORS),
            0,
            "idle gaps must not count as protocol errors"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_sheds_typed_and_probes_still_answer() {
        let dir = scratch("overload");
        let opts = ServeOptions {
            workers: 1,
            queue_capacity: 2,
            worker_stall: Duration::from_millis(40),
            ..ServeOptions::default()
        };
        let server = Server::start(test_library(&dir), dir.join("s.sock"), opts).unwrap();
        let sock = server.socket_path().to_path_buf();

        let clients: Vec<_> = (0..12)
            .map(|_| {
                let sock = sock.clone();
                thread::spawn(move || one_shot(&sock, QUERY).unwrap())
            })
            .collect();
        // Probes bypass the queue: immediate even while workers stall.
        let t0 = Instant::now();
        let health = one_shot(&sock, r#"{"op":"health"}"#).unwrap();
        assert!(health.contains("serving"), "{health}");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "probe must not queue"
        );

        let responses: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let shed = responses
            .iter()
            .filter(|r| r.contains("overloaded"))
            .count();
        let answered = responses
            .iter()
            .filter(|r| r.contains("\"timing\""))
            .count();
        assert!(shed > 0, "12 clients into a 2-deep queue must shed some");
        assert!(answered > 0, "but not all");
        assert_eq!(shed + answered, 12, "every request got a typed outcome");

        server.begin_shutdown();
        let snap = server.join();
        assert_eq!(snap.counter(sm::SHED), shed as u64);
        assert_eq!(snap.counter(sm::REQUESTS), answered as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queued_requests_past_their_deadline_answer_deadline_exceeded() {
        let dir = scratch("deadline");
        let opts = ServeOptions {
            workers: 1,
            queue_capacity: 16,
            request_deadline: Duration::from_millis(60),
            worker_stall: Duration::from_millis(50),
            ..ServeOptions::default()
        };
        let server = Server::start(test_library(&dir), dir.join("s.sock"), opts).unwrap();
        let sock = server.socket_path().to_path_buf();

        let clients: Vec<_> = (0..6)
            .map(|_| {
                let sock = sock.clone();
                thread::spawn(move || one_shot(&sock, QUERY).unwrap())
            })
            .collect();
        let responses: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let expired = responses
            .iter()
            .filter(|r| r.contains("deadline_exceeded"))
            .count();
        assert!(
            expired > 0,
            "a 60 ms deadline behind 50 ms/job must expire some: {responses:?}"
        );

        server.begin_shutdown();
        let snap = server.join();
        assert_eq!(snap.counter(sm::DEADLINE_EXPIRED), expired as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_finishes_in_flight_work_and_refuses_new_work() {
        let dir = scratch("drain");
        let opts = ServeOptions {
            workers: 1,
            queue_capacity: 32,
            worker_stall: Duration::from_millis(20),
            ..ServeOptions::default()
        };
        let server = Server::start(test_library(&dir), dir.join("s.sock"), opts).unwrap();
        let sock = server.socket_path().to_path_buf();

        let in_flight: Vec<_> = (0..8)
            .map(|_| {
                let sock = sock.clone();
                thread::spawn(move || one_shot(&sock, QUERY).unwrap())
            })
            .collect();
        thread::sleep(Duration::from_millis(30)); // let them admit
        server.begin_shutdown();

        // Already-admitted work completes with real answers.
        let responses: Vec<String> = in_flight.into_iter().map(|c| c.join().unwrap()).collect();
        for r in &responses {
            assert!(
                r.contains("\"timing\"") || r.contains("overloaded"),
                "in-flight work must finish typed, got {r}"
            );
        }
        assert!(
            responses.iter().any(|r| r.contains("\"timing\"")),
            "at least the running job must complete"
        );

        let snap = server.join();
        assert_eq!(snap.gauge(sm::QUEUE_DEPTH), 0.0, "drained queue is empty");
        // New connections are refused (socket gone) or told shutting_down.
        match one_shot(&sock, QUERY) {
            Err(_) => {}
            Ok(resp) => assert!(resp.contains("shutting_down"), "{resp}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_socket_is_not_stolen_but_stale_socket_is_reclaimed() {
        let dir = scratch("steal");
        let path = dir.join("s.sock");
        let server = Server::start(test_library(&dir), &path, ServeOptions::default()).unwrap();

        // A second daemon on the same path must fail typed, and the first
        // daemon must still be answering on its socket afterwards.
        let err = match Server::start(test_library(&dir), &path, ServeOptions::default()) {
            Ok(_) => panic!("second bind on a live socket must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err}");
        assert!(one_shot(&path, QUERY).unwrap().contains("\"timing\""));

        server.begin_shutdown();
        server.join();

        // A stale socket file (SIGKILL leftover: file exists, nobody
        // accepting) is reclaimed silently.
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists(), "stale socket file must survive the drop");
        let server = Server::start(test_library(&dir), &path, ServeOptions::default()).unwrap();
        assert!(one_shot(&path, QUERY).unwrap().contains("\"timing\""));
        server.begin_shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_front_end_serves_queries_and_typed_errors() {
        let dir = scratch("tcp");
        let server = Server::start_with(
            test_library(&dir),
            None,
            Some("127.0.0.1:0"),
            ServeOptions::default(),
        )
        .unwrap();
        let addr = server.tcp_addr().expect("tcp listener must report an addr");

        let resp = one_shot_tcp(&addr.to_string(), QUERY).unwrap();
        assert!(resp.contains("\"timing\""), "{resp}");
        let resp = one_shot_tcp(&addr.to_string(), r#"{"op":"health"}"#).unwrap();
        assert!(resp.contains("\"serving\""), "{resp}");
        let resp = one_shot_tcp(&addr.to_string(), r#"{"op":"nope"}"#).unwrap();
        assert!(resp.contains("bad_request"), "{resp}");

        server.begin_shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dual_listeners_share_one_admission_queue() {
        let dir = scratch("dual");
        let server = Server::start_with(
            test_library(&dir),
            Some(dir.join("s.sock")),
            Some("127.0.0.1:0"),
            ServeOptions::default(),
        )
        .unwrap();
        let sock = server.socket_path().to_path_buf();
        let addr = server.tcp_addr().unwrap().to_string();

        assert!(one_shot(&sock, QUERY).unwrap().contains("\"timing\""));
        assert!(one_shot_tcp(&addr, QUERY).unwrap().contains("\"timing\""));

        server.begin_shutdown();
        let snap = server.join();
        assert_eq!(snap.counter(sm::REQUESTS), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_replica_refuses_fleet_op_typed() {
        let dir = scratch("fleetop");
        let server = Server::start(
            test_library(&dir),
            dir.join("s.sock"),
            ServeOptions::default(),
        )
        .unwrap();
        let resp = one_shot(server.socket_path(), r#"{"op":"fleet"}"#).unwrap();
        assert!(resp.contains("bad_request"), "{resp}");
        assert!(resp.contains("fleet control socket"), "{resp}");
        server.begin_shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
