//! Typed disk-fault handling and deterministic disk-fault injection.
//!
//! Every durable sink the daemon writes — store entries, quarantine
//! renames, metrics snapshots, flight-recorder dumps — goes through the
//! checked entry points here instead of calling the filesystem directly.
//! A full or failing disk then surfaces as a *typed* [`DiskError`]
//! (`ENOSPC` distinguished from other I/O failure) that callers degrade
//! on — count it, record a flight event, keep serving — rather than a
//! panic or an aborted `SIGTERM` drain.
//!
//! Behind the `fault-injection` feature the same entry points host a
//! deterministic injector in the [`crate::wirefault`] mold: tests arm a
//! process-global [`DiskFaultConfig`] (optionally after `after` successful
//! operations, so mid-run disk exhaustion is reproducible) and every write
//! or rename fails with a synthetic error of the configured kind. No
//! clocks, no randomness — a faulted run replays identically. With the
//! feature off every hook compiles to a plain passthrough.

use proxim_model::persist::atomic_write;
use proxim_model::ModelError;
use std::fmt;
use std::fs;
use std::path::Path;

#[cfg(feature = "fault-injection")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "fault-injection")]
use std::sync::{Mutex, PoisonError};

/// The typed category of a disk failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The device is out of space (`ENOSPC`): writes fail but reads keep
    /// working, so the daemon can keep serving from what is loaded.
    NoSpace,
    /// Any other I/O failure (`EIO`, permissions, read-only remounts).
    Io,
}

/// A typed disk-sink failure: what category, and the rendered detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskError {
    /// The typed category.
    pub kind: DiskFaultKind,
    /// The rendered underlying error.
    pub detail: String,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DiskFaultKind::NoSpace => write!(f, "disk full: {}", self.detail),
            DiskFaultKind::Io => write!(f, "disk I/O error: {}", self.detail),
        }
    }
}

impl std::error::Error for DiskError {}

/// Classifies a rendered I/O error message. `ENOSPC` renders as
/// `"No space left on device (os error 28)"` on Linux; both spellings are
/// matched so classification survives the message passing through
/// [`ModelError::Persist`]'s string detail.
pub fn classify_detail(detail: &str) -> DiskFaultKind {
    if detail.contains("os error 28") || detail.contains("No space left") {
        DiskFaultKind::NoSpace
    } else {
        DiskFaultKind::Io
    }
}

fn classify_io(e: &std::io::Error) -> DiskFaultKind {
    if e.raw_os_error() == Some(28) {
        DiskFaultKind::NoSpace
    } else {
        classify_detail(&e.to_string())
    }
}

/// Disk-fault injector configuration: which operations fail, with what
/// kind, after how many successes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFaultConfig {
    /// Fail atomic writes (store entries, metrics snapshots, dumps).
    pub fail_writes: bool,
    /// Fail renames (quarantine moves).
    pub fail_renames: bool,
    /// The synthetic failure kind injected.
    pub kind: DiskFaultKind,
    /// Number of guarded operations that succeed before faults start —
    /// deterministic mid-run disk exhaustion.
    pub after: u64,
}

impl DiskFaultConfig {
    /// The inert configuration: nothing fails.
    pub const DISARMED: Self = Self {
        fail_writes: false,
        fail_renames: false,
        kind: DiskFaultKind::Io,
        after: 0,
    };

    /// Everything fails with `ENOSPC` immediately.
    pub const FULL_DISK: Self = Self {
        fail_writes: true,
        fail_renames: true,
        kind: DiskFaultKind::NoSpace,
        after: 0,
    };

    /// Whether any fault can ever fire under this configuration.
    pub fn is_armed(&self) -> bool {
        self.fail_writes || self.fail_renames
    }
}

impl Default for DiskFaultConfig {
    fn default() -> Self {
        Self::DISARMED
    }
}

#[cfg(feature = "fault-injection")]
static CONFIG: Mutex<DiskFaultConfig> = Mutex::new(DiskFaultConfig::DISARMED);
#[cfg(feature = "fault-injection")]
static OPS: AtomicU64 = AtomicU64::new(0);

/// Installs a process-global disk-fault configuration and resets the
/// operation counter. Global state: tests that arm it serialize on their
/// own lock and [`disarm`] when done.
#[cfg(feature = "fault-injection")]
pub fn configure(cfg: DiskFaultConfig) {
    *CONFIG.lock().unwrap_or_else(PoisonError::into_inner) = cfg;
    OPS.store(0, Ordering::SeqCst);
}

/// No-op stub: without the `fault-injection` feature nothing is installed.
#[cfg(not(feature = "fault-injection"))]
pub fn configure(_cfg: DiskFaultConfig) {}

/// Resets the process-global configuration to
/// [`DiskFaultConfig::DISARMED`].
pub fn disarm() {
    configure(DiskFaultConfig::DISARMED);
}

/// The currently installed configuration.
#[cfg(feature = "fault-injection")]
pub fn current() -> DiskFaultConfig {
    *CONFIG.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Always [`DiskFaultConfig::DISARMED`] without the `fault-injection`
/// feature.
#[cfg(not(feature = "fault-injection"))]
pub fn current() -> DiskFaultConfig {
    DiskFaultConfig::DISARMED
}

/// Arms the injector from `PROXIM_DISKFAULT` (`enospc` or `eio`, with an
/// optional `PROXIM_DISKFAULT_AFTER=N` success grace), so a spawned daemon
/// built with `fault-injection` can run against a synthetic full disk.
/// Does nothing without the feature or the variable.
pub fn init_from_env() {
    let Some(kind) = std::env::var_os("PROXIM_DISKFAULT") else {
        return;
    };
    let kind = match kind.to_str() {
        Some("enospc") => DiskFaultKind::NoSpace,
        Some("eio") => DiskFaultKind::Io,
        _ => return,
    };
    let after = std::env::var("PROXIM_DISKFAULT_AFTER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    configure(DiskFaultConfig {
        fail_writes: true,
        fail_renames: true,
        kind,
        after,
    });
}

/// Whether the next guarded operation of the given class should fail, and
/// with what synthetic error.
#[cfg(feature = "fault-injection")]
fn injected(rename: bool) -> Option<DiskError> {
    let cfg = current();
    let wanted = if rename {
        cfg.fail_renames
    } else {
        cfg.fail_writes
    };
    if !wanted {
        return None;
    }
    if OPS.fetch_add(1, Ordering::SeqCst) < cfg.after {
        return None;
    }
    Some(DiskError {
        kind: cfg.kind,
        detail: match cfg.kind {
            DiskFaultKind::NoSpace => "injected: No space left on device (os error 28)".into(),
            DiskFaultKind::Io => "injected: Input/output error (os error 5)".into(),
        },
    })
}

#[cfg(not(feature = "fault-injection"))]
fn injected(_rename: bool) -> Option<DiskError> {
    None
}

/// Crash-consistent atomic write with typed disk-fault classification (and
/// injection, under the feature). Every durable sink in the serve layer
/// writes through here.
///
/// # Errors
///
/// A [`DiskError`] with `ENOSPC` distinguished from other I/O failure.
pub fn checked_write(path: &Path, bytes: &[u8]) -> Result<(), DiskError> {
    if let Some(e) = injected(false) {
        return Err(e);
    }
    atomic_write(path, bytes).map_err(|e| {
        let detail = match e {
            ModelError::Persist { detail } => detail,
            other => other.to_string(),
        };
        DiskError {
            kind: classify_detail(&detail),
            detail,
        }
    })
}

/// Rename with typed disk-fault classification (and injection, under the
/// feature). The quarantine path moves evidence through here.
///
/// # Errors
///
/// A [`DiskError`] with `ENOSPC` distinguished from other I/O failure.
pub fn checked_rename(from: &Path, to: &Path) -> Result<(), DiskError> {
    if let Some(e) = injected(true) {
        return Err(e);
    }
    fs::rename(from, to).map_err(|e| DiskError {
        kind: classify_io(&e),
        detail: e.to_string(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_by_errno_spelling() {
        assert_eq!(
            classify_detail("No space left on device (os error 28)"),
            DiskFaultKind::NoSpace
        );
        assert_eq!(
            classify_detail("Input/output error (os error 5)"),
            DiskFaultKind::Io
        );
        assert_eq!(
            classify_detail("Permission denied (os error 13)"),
            DiskFaultKind::Io
        );
    }

    #[test]
    fn disarmed_passthrough_writes_and_renames() {
        let dir = std::env::temp_dir().join(format!("proxim_diskfault_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        disarm();
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        checked_write(&a, b"payload").unwrap();
        checked_rename(&a, &b).unwrap();
        assert_eq!(fs::read(&b).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn armed_faults_are_typed_and_deterministic() {
        let dir =
            std::env::temp_dir().join(format!("proxim_diskfault_armed_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        configure(DiskFaultConfig {
            fail_writes: true,
            fail_renames: true,
            kind: DiskFaultKind::NoSpace,
            after: 1,
        });
        let a = dir.join("a.txt");
        // The first guarded operation succeeds (after = 1), then every
        // subsequent one fails with the configured typed kind.
        checked_write(&a, b"first").unwrap();
        let e = checked_write(&a, b"second").unwrap_err();
        assert_eq!(e.kind, DiskFaultKind::NoSpace);
        let e = checked_rename(&a, &dir.join("b.txt")).unwrap_err();
        assert_eq!(e.kind, DiskFaultKind::NoSpace);
        assert_eq!(fs::read(&a).unwrap(), b"first", "failed ops change nothing");
        disarm();
        checked_write(&a, b"third").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
