//! `proxim-serve`: an overload-safe, crash-consistent timing-query daemon.
//!
//! The proximity model is characterized once and queried forever —
//! [`ProximityModel::gate_timing`](proxim_model::ProximityModel) is the
//! product surface. This crate wraps it in a long-running service that
//! stays up and answers *honestly* under corrupt inputs, slow clients,
//! overload, and crashes:
//!
//! - [`store`]: a checksummed binary model store. Every entry is a
//!   sectioned container with per-section FNV-1a envelopes, written through
//!   the crash-consistent `atomic_write` path (tmp + fsync + rename), so a
//!   reader sees a complete old entry, a complete new entry, or a
//!   *detectably* corrupt one — never silently torn bytes. Corrupt or torn
//!   entries are quarantined aside (content-hash-suffixed `.quarantined`
//!   files, the model-cache convention) at load.
//! - [`library`]: the in-memory model library the daemon serves from.
//!   Loading is degrade-instead-of-die: corrupt entries are quarantined and
//!   the daemon starts *degraded* with the surviving models rather than
//!   refusing to start. A library is one immutable *generation* of the
//!   serving set, shared via `Arc`; hot reload loads a candidate generation
//!   off to the side, judges it against the live one, and swaps a pointer —
//!   in-flight requests finish on the generation they started on. With a
//!   memory budget, residency is LRU-governed: non-resident models are
//!   cold-loaded on demand with single-flight deduplication.
//! - [`proto`]: the length-prefixed socket protocol. Frames are hardened
//!   untrusted input: oversized, truncated, non-UTF-8, malformed, and
//!   recursion-bomb frames all produce *typed* protocol errors, never a
//!   panic. Responses carry the degraded-slice provenance end to end
//!   (`GateTiming::degradation` → the wire `degraded` field).
//! - [`server`]: the daemon loop. A bounded admission queue sheds load
//!   with a typed `overloaded` response (never a silent drop), every
//!   request runs under a wall-clock deadline plumbed into the existing
//!   [`CancelToken`](proxim_spice::CancelToken), slow clients are bounded
//!   by write timeouts, health/readiness probes bypass the queue so they
//!   answer even under full overload, and `SIGTERM` drains: stop
//!   accepting, finish (or shed) in-flight work, flush final metrics,
//!   exit cleanly.
//! - [`diskfault`]: typed ENOSPC/EIO classification for every durable sink
//!   (store writes, quarantine renames, metrics snapshots, flight dumps) —
//!   a full disk degrades with a counter and a flight event, never a panic
//!   or an aborted drain — plus a deterministic disk-fault injector behind
//!   the `fault-injection` feature.
//! - [`client`]: a deadline-aware retrying client used by the CLI's
//!   `query`/`churn` subcommands: capped exponential backoff with
//!   deterministic jitter on `overloaded`/`shutting_down`/connect-refused,
//!   honoring the server's retry-after hint, never retrying past the
//!   caller's deadline and never retrying non-idempotent ops.
//! - [`wirefault`]: deterministic wire-layer fault injection (torn frames,
//!   injected slow reads, dropped connections) behind the
//!   `fault-injection` feature, extending the `proxim_spice::faultpoint`
//!   discipline to the socket boundary.
//! - [`fleet`]: the replication layer above the daemon. A supervisor
//!   spawns N replica daemons (each on its own socket under a fleet
//!   directory), health-probes them on the probe fast path, restarts
//!   crashes with capped exponential backoff, quarantines crash-loopers
//!   (≥M exits in a window → typed `replica_quarantined`, fleet serves
//!   degraded on the survivors), answers the `fleet` stats op on a
//!   control socket, and drives rolling reloads one replica at a time so
//!   an upgrade never drops below N−1 capacity.
//! - [`balance`]: the client side of the fleet —
//!   [`FleetClient`](balance::FleetClient) round-robins across replica
//!   sockets with per-replica health tracking, fails over on
//!   connect-refused/`overloaded`/`shutting_down` under the [`client`]
//!   idempotency and deadline rules, and hedges idempotent requests to a
//!   second replica after a configurable delay, first-response-wins.
//!
//! Metric names live in [`proxim_obs::serve_metrics`]; every request is
//! traced as a `serve.request` span when tracing is enabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod balance;
pub mod client;
pub mod diskfault;
pub mod fleet;
pub mod library;
pub mod proto;
pub mod server;
pub mod store;
pub mod wirefault;

pub use balance::{FleetClient, FleetClientOptions, FleetOutcome};
pub use client::{RetryOutcome, RetryPolicy};
pub use diskfault::{DiskError, DiskFaultConfig, DiskFaultKind};
pub use fleet::{Fleet, FleetOptions, ReplicaState};
pub use library::{
    judge_candidate, AcquireError, Acquired, LibraryOptions, LoadReport, ModelLibrary,
    ReloadRejection,
};
pub use proto::{ErrorKind, ProtoError, Request, MAX_FRAME_BYTES};
pub use server::{ServeOptions, Server};
pub use store::{ModelStore, QuarantineFailure, StoreError};
