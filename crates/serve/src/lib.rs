//! `proxim-serve`: an overload-safe, crash-consistent timing-query daemon.
//!
//! The proximity model is characterized once and queried forever —
//! [`ProximityModel::gate_timing`](proxim_model::ProximityModel) is the
//! product surface. This crate wraps it in a long-running service that
//! stays up and answers *honestly* under corrupt inputs, slow clients,
//! overload, and crashes:
//!
//! - [`store`]: a checksummed binary model store. Every entry is a
//!   sectioned container with per-section FNV-1a envelopes, written through
//!   the crash-consistent `atomic_write` path (tmp + fsync + rename), so a
//!   reader sees a complete old entry, a complete new entry, or a
//!   *detectably* corrupt one — never silently torn bytes. Corrupt or torn
//!   entries are quarantined aside (content-hash-suffixed `.quarantined`
//!   files, the model-cache convention) at load.
//! - [`library`]: the in-memory model library the daemon serves from.
//!   Loading is degrade-instead-of-die: corrupt entries are quarantined and
//!   the daemon starts *degraded* with the surviving models rather than
//!   refusing to start. After load the library is immutable and shared via
//!   `Arc`, so concurrent readers are lock-free.
//! - [`proto`]: the length-prefixed socket protocol. Frames are hardened
//!   untrusted input: oversized, truncated, non-UTF-8, malformed, and
//!   recursion-bomb frames all produce *typed* protocol errors, never a
//!   panic. Responses carry the degraded-slice provenance end to end
//!   (`GateTiming::degradation` → the wire `degraded` field).
//! - [`server`]: the daemon loop. A bounded admission queue sheds load
//!   with a typed `overloaded` response (never a silent drop), every
//!   request runs under a wall-clock deadline plumbed into the existing
//!   [`CancelToken`](proxim_spice::CancelToken), slow clients are bounded
//!   by write timeouts, health/readiness probes bypass the queue so they
//!   answer even under full overload, and `SIGTERM` drains: stop
//!   accepting, finish (or shed) in-flight work, flush final metrics,
//!   exit cleanly.
//! - [`wirefault`]: deterministic wire-layer fault injection (torn frames,
//!   injected slow reads, dropped connections) behind the
//!   `fault-injection` feature, extending the `proxim_spice::faultpoint`
//!   discipline to the socket boundary.
//!
//! Metric names live in [`proxim_obs::serve_metrics`]; every request is
//! traced as a `serve.request` span when tracing is enabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod library;
pub mod proto;
pub mod server;
pub mod store;
pub mod wirefault;

pub use library::ModelLibrary;
pub use proto::{ErrorKind, ProtoError, Request, MAX_FRAME_BYTES};
pub use server::{ServeOptions, Server};
pub use store::{ModelStore, StoreError};
