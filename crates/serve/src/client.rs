//! A deadline-aware retrying client for the daemon's socket protocol.
//!
//! The daemon sheds load honestly — `overloaded` and `shutting_down` are
//! *typed refusals issued before any server-side effect* — and a restart
//! or reload window can briefly refuse connections altogether. A correct
//! client therefore retries exactly three failure shapes: the two
//! retryable wire errors and a failed `connect()`. Everything else (typed
//! query errors, transport failures mid-exchange, malformed responses) is
//! returned to the caller untouched: the client cannot know whether the
//! server acted, so re-sending would risk double effects.
//!
//! The schedule is capped exponential backoff with deterministic
//! multiplicative jitter (the `proxim_spice::faultpoint` splitmix64
//! stream — no global RNG, replayable from the seed), raised to the
//! server's `retry_after_ms` hint when one rides on the shed response.
//! Two hard rules bound every retry loop:
//!
//! - **never past the deadline**: a sleep that would cross the caller's
//!   deadline is not taken — the last refusal is returned instead;
//! - **never for non-idempotent ops**: `obs` mutates observability state
//!   and `reload` swaps the serving set; both are sent exactly once.

use crate::proto::{ErrorKind, ProtoError};
use crate::server::one_shot;
use proxim_obs::json::Json;
use proxim_spice::faultpoint::unit;
use std::path::Path;
use std::time::{Duration, Instant};

/// Retry schedule and bounds for [`call_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First backoff delay; each retry doubles it up to [`Self::cap`].
    pub base: Duration,
    /// Upper bound on a single backoff delay (pre-jitter).
    pub cap: Duration,
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Hard wall-clock bound: no retry sleep may cross it, and no attempt
    /// starts after it. `None` bounds the loop by `max_attempts` alone.
    pub deadline: Option<Instant>,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_attempts: 8,
            deadline: None,
            seed: 0x5EED_CAFE,
        }
    }
}

/// What a retried call did, beyond the response itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryOutcome {
    /// The final response payload (success *or* a typed error the policy
    /// ran out of retries for — inspect `ok` like any response).
    pub response: String,
    /// Total attempts made (1 = answered first try).
    pub attempts: u32,
    /// Total time spent sleeping between attempts.
    pub backoff: Duration,
}

/// The idempotency of a single wire op: `Some(true)` reads, `Some(false)`
/// mutates and must be sent exactly once, `None` is not a recognized op.
///
/// This match is deliberately exhaustive over [`crate::proto::WIRE_OPS`]
/// (a test enforces it): adding a wire op without classifying it here is a
/// compile-the-tests failure, so a new op can never *silently* become
/// retry-unsafe (or retry-happy).
pub fn op_idempotency(op: &str) -> Option<bool> {
    match op {
        "query" | "batch" | "health" | "stats" | "list" | "metrics" | "fleet" => Some(true),
        "obs" | "reload" => Some(false),
        _ => None,
    }
}

/// Whether a request (by its `op`) is safe to re-send after a refusal:
/// queries and probes read; `obs` and `reload` mutate server state and
/// must be sent exactly once. Unknown or unparseable ops are conservative
/// `false` — the server will answer them typed, once.
pub fn is_idempotent(request: &str) -> bool {
    let Ok(json) = Json::parse(request) else {
        return false;
    };
    json.get("op")
        .and_then(Json::as_str)
        .and_then(op_idempotency)
        .unwrap_or(false)
}

/// The retry decision for one attempt's outcome.
enum Verdict {
    /// Done: hand this to the caller.
    Finish(Result<String, ProtoError>),
    /// Retryable, with the server's retry-after hint if it sent one.
    Retry {
        last: Result<String, ProtoError>,
        hint: Option<Duration>,
    },
}

fn classify(result: Result<String, ProtoError>) -> Verdict {
    match result {
        Ok(response) => {
            let Ok(json) = Json::parse(&response) else {
                return Verdict::Finish(Ok(response));
            };
            let kind = json
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str);
            let retryable = kind == Some(ErrorKind::Overloaded.wire_name())
                || kind == Some(ErrorKind::ShuttingDown.wire_name());
            if !retryable {
                return Verdict::Finish(Ok(response));
            }
            let hint = json
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_f64)
                .filter(|ms| ms.is_finite() && *ms >= 0.0)
                .map(|ms| Duration::from_millis(ms as u64));
            Verdict::Retry {
                last: Ok(response),
                hint,
            }
        }
        Err(e) => {
            // `one_shot` types a failed connect() as Internal with a
            // "connect:" detail — the daemon was down or its socket gone,
            // the one transport failure that provably had no server-side
            // effect. Mid-exchange transport failures are NOT retried: the
            // request may have been acted on.
            if e.kind == ErrorKind::Internal && e.detail.starts_with("connect: ") {
                Verdict::Retry {
                    last: Err(e),
                    hint: None,
                }
            } else {
                Verdict::Finish(Err(e))
            }
        }
    }
}

/// The pre-jitter backoff delay before retry number `retry` (0-based):
/// `base << retry`, capped at `cap`.
fn backoff_delay(policy: &RetryPolicy, retry: u32) -> Duration {
    let exp = policy
        .base
        .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
    exp.min(policy.cap)
}

/// The jittered delay before retry number `retry`, advancing the caller's
/// jitter stream. This is the *exact* computation [`call_with_retry`]
/// sleeps (before the `retry_after_ms` hint and deadline clamps), shared
/// so [`backoff_schedule`] can predict it byte-for-byte.
fn jittered_delay(policy: &RetryPolicy, retry: u32, jitter_state: &mut u64) -> Duration {
    // Deterministic multiplicative jitter in [0.5, 1.5): desynchronizes
    // a fleet of retrying clients without a global RNG.
    let jitter = 0.5 + unit(jitter_state);
    backoff_delay(policy, retry).mul_f64(jitter)
}

/// The full jittered retry schedule the policy would sleep, hint- and
/// deadline-free: entry `i` is the delay before retry `i` (0-based).
/// Replayable — same policy (same seed), same schedule — which is what
/// makes retry storms debuggable from a seed in a log line.
#[must_use]
pub fn backoff_schedule(policy: &RetryPolicy, retries: u32) -> Vec<Duration> {
    let mut state = policy.seed ^ 0x9E37_79B9_7F4A_7C15;
    (0..retries)
        .map(|retry| jittered_delay(policy, retry, &mut state))
        .collect()
}

/// One round trip with the retry policy applied.
///
/// Retries only `overloaded`, `shutting_down`, and connect-refused — and
/// only for idempotent ops ([`is_idempotent`]). When attempts or the
/// deadline run out, the *last refusal* is returned (as the typed response
/// or connect error it was), so the caller always sees what the server
/// last said.
///
/// # Errors
///
/// Transport/protocol failures from the final attempt.
pub fn call_with_retry(
    socket: &Path,
    request: &str,
    policy: &RetryPolicy,
) -> Result<RetryOutcome, ProtoError> {
    let retry_allowed = is_idempotent(request);
    let mut jitter_state = policy.seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut backoff_total = Duration::ZERO;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let verdict = classify(one_shot(socket, request));
        let (last, hint) = match verdict {
            Verdict::Finish(result) => {
                return result.map(|response| RetryOutcome {
                    response,
                    attempts,
                    backoff: backoff_total,
                })
            }
            Verdict::Retry { last, hint } => (last, hint),
        };
        let out_of_attempts = attempts >= policy.max_attempts.max(1);
        if !retry_allowed || out_of_attempts {
            return last.map(|response| RetryOutcome {
                response,
                attempts,
                backoff: backoff_total,
            });
        }
        let mut delay = jittered_delay(policy, attempts - 1, &mut jitter_state);
        if let Some(hint) = hint {
            delay = delay.max(hint);
        }
        if let Some(deadline) = policy.deadline {
            let now = Instant::now();
            if now >= deadline || now + delay > deadline {
                // Sleeping would cross the caller's deadline: stop here
                // and surface the last refusal.
                return last.map(|response| RetryOutcome {
                    response,
                    attempts,
                    backoff: backoff_total,
                });
            }
        }
        std::thread::sleep(delay);
        backoff_total += delay;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, render_error, write_frame};
    use std::os::unix::net::UnixListener;
    use std::path::PathBuf;

    fn scratch_sock(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("proxim_client_{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("{name}.sock"));
        std::fs::remove_file(&path).ok();
        path
    }

    /// A scripted one-shot server: answers each accepted connection with
    /// the next canned payload.
    fn scripted_server(path: &PathBuf, responses: Vec<String>) -> std::thread::JoinHandle<usize> {
        let listener = UnixListener::bind(path).unwrap();
        std::thread::spawn(move || {
            let mut served = 0;
            for response in responses {
                let Ok((mut stream, _)) = listener.accept() else {
                    break;
                };
                let _ = read_frame(&mut stream);
                let _ = write_frame(&mut stream, response.as_bytes());
                served += 1;
            }
            served
        })
    }

    #[test]
    fn op_idempotency_classification() {
        for op in [
            "query", "batch", "health", "stats", "list", "metrics", "fleet",
        ] {
            assert!(is_idempotent(&format!("{{\"op\":\"{op}\"}}")), "{op}");
        }
        for req in [
            r#"{"op":"obs","level":"trace"}"#,
            r#"{"op":"reload"}"#,
            r#"{"op":"reload","force":true}"#,
            "not json",
            "{}",
        ] {
            assert!(!is_idempotent(req), "{req}");
        }
    }

    #[test]
    fn op_idempotency_exhaustively_covers_every_wire_op() {
        // Every op the wire recognizes must be classified: a new op added
        // to proto::WIRE_OPS without a call_with_retry decision fails here,
        // so it can't silently default to an unsafe retry behavior.
        for op in crate::proto::WIRE_OPS {
            assert!(
                op_idempotency(op).is_some(),
                "wire op {op:?} has no idempotency classification"
            );
        }
        assert_eq!(op_idempotency("fleet"), Some(true));
        assert_eq!(op_idempotency("reload"), Some(false));
        assert_eq!(op_idempotency("no_such_op"), None);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        let delays: Vec<u64> = (0..6)
            .map(|i| backoff_delay(&policy, i).as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 80, 80]);
    }

    #[test]
    fn retries_overloaded_until_success() {
        let sock = scratch_sock("overload");
        let shed =
            render_error(&ProtoError::new(ErrorKind::Overloaded, "queue full").with_retry_after(1));
        let server = scripted_server(
            &sock,
            vec![shed.clone(), shed, "{\"ok\":true,\"models\":[]}".into()],
        );
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            ..RetryPolicy::default()
        };
        let out = call_with_retry(&sock, r#"{"op":"list"}"#, &policy).unwrap();
        assert_eq!(out.attempts, 3);
        assert!(out.response.contains("\"ok\":true"), "{}", out.response);
        assert!(out.backoff >= Duration::from_millis(1));
        assert_eq!(server.join().unwrap(), 3);
        std::fs::remove_file(&sock).ok();
    }

    #[test]
    fn non_idempotent_ops_are_sent_exactly_once() {
        let sock = scratch_sock("once");
        let shed = render_error(&ProtoError::new(ErrorKind::ShuttingDown, "draining"));
        let server = scripted_server(&sock, vec![shed, "{\"ok\":true}".into()]);
        let out = call_with_retry(&sock, r#"{"op":"reload"}"#, &RetryPolicy::default()).unwrap();
        assert_eq!(out.attempts, 1, "reload must never be re-sent");
        assert!(out.response.contains("shutting_down"), "{}", out.response);
        // Release the scripted server's second accept.
        let _ = one_shot(&sock, "{}");
        let _ = server.join();
        std::fs::remove_file(&sock).ok();
    }

    #[test]
    fn never_sleeps_past_the_deadline() {
        let sock = scratch_sock("deadline");
        let shed = render_error(&ProtoError::new(ErrorKind::Overloaded, "queue full"));
        // Every attempt is refused; without the deadline this would retry
        // for ~10 s of backoff.
        let server = scripted_server(&sock, vec![shed.clone(), shed.clone(), shed]);
        let policy = RetryPolicy {
            base: Duration::from_millis(400),
            cap: Duration::from_secs(5),
            max_attempts: 20,
            deadline: Some(Instant::now() + Duration::from_millis(60)),
            ..RetryPolicy::default()
        };
        let t0 = Instant::now();
        let out = call_with_retry(&sock, r#"{"op":"list"}"#, &policy).unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "stopped before the first 400 ms sleep"
        );
        assert!(out.response.contains("overloaded"), "{}", out.response);
        drop(server);
        std::fs::remove_file(&sock).ok();
    }

    #[test]
    fn connect_refused_is_retried_and_last_error_is_surfaced() {
        let sock = scratch_sock("refused"); // nothing listening
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let e = call_with_retry(&sock, r#"{"op":"health"}"#, &policy).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Internal);
        assert!(e.detail.starts_with("connect: "), "{e}");
    }

    #[test]
    fn backoff_schedule_is_byte_identical_per_seed() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0xD15E_A5ED,
            ..RetryPolicy::default()
        };
        let a = backoff_schedule(&policy, 8);
        let b = backoff_schedule(&policy, 8);
        assert_eq!(a, b, "same seed must replay the exact schedule");
        // A different seed shifts the jitter, not the envelope.
        let other = backoff_schedule(
            &RetryPolicy {
                seed: 0xF00D,
                ..policy
            },
            8,
        );
        assert_ne!(a, other, "different seed must change the jitter");
        for (i, d) in a.iter().enumerate() {
            let pre = backoff_delay(&policy, i as u32);
            assert!(
                *d >= pre.mul_f64(0.5) && *d < pre.mul_f64(1.5),
                "delay {i} = {d:?} outside jitter envelope of {pre:?}"
            );
        }
    }

    #[test]
    fn call_with_retry_sleeps_exactly_the_published_schedule() {
        let sock = scratch_sock("schedule");
        // No retry_after hint: the slept delays must equal backoff_schedule.
        let shed = render_error(&ProtoError::new(ErrorKind::Overloaded, "queue full"));
        let server = scripted_server(
            &sock,
            vec![shed.clone(), shed.clone(), shed, "{\"ok\":true}".into()],
        );
        let policy = RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(8),
            seed: 42,
            ..RetryPolicy::default()
        };
        let out = call_with_retry(&sock, r#"{"op":"list"}"#, &policy).unwrap();
        assert_eq!(out.attempts, 4);
        let expected: Duration = backoff_schedule(&policy, 3).iter().sum();
        assert_eq!(
            out.backoff, expected,
            "slept backoff must be byte-identical to backoff_schedule"
        );
        assert_eq!(server.join().unwrap(), 4);
        std::fs::remove_file(&sock).ok();
    }

    #[test]
    fn retry_after_hint_raises_the_backoff_floor() {
        let sock = scratch_sock("hint");
        // The jittered schedule alone would sleep ~1-2 ms; a 40 ms hint on
        // the shed response must raise the actual sleep to >= 40 ms.
        let shed = render_error(
            &ProtoError::new(ErrorKind::Overloaded, "queue full").with_retry_after(40),
        );
        let server = scripted_server(&sock, vec![shed, "{\"ok\":true}".into()]);
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let out = call_with_retry(&sock, r#"{"op":"list"}"#, &policy).unwrap();
        assert_eq!(out.attempts, 2);
        assert!(
            out.backoff >= Duration::from_millis(40),
            "hint not honored: slept only {:?}",
            out.backoff
        );
        assert_eq!(server.join().unwrap(), 2);
        std::fs::remove_file(&sock).ok();
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut s1 = 7u64;
        let mut s2 = 7u64;
        let (a, b) = (unit(&mut s1), unit(&mut s2));
        assert_eq!(a, b, "same seed, same jitter stream");
        assert!((0.0..1.0).contains(&a));
    }
}
