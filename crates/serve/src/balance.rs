//! `FleetClient`: client-side load balancing across a fleet of replicas.
//!
//! A single-socket client ([`crate::client::call_with_retry`]) can only
//! wait out a refusal; a fleet client can *route around* it. The balancer
//! round-robins across replica sockets with per-replica health tracking
//! and applies the same retry discipline as `call_with_retry` — capped
//! exponential backoff with deterministic jitter, never past the deadline,
//! never re-sending non-idempotent ops — but widens the retryable set for
//! idempotent requests: besides `overloaded`/`shutting_down`/
//! connect-refused, a *mid-exchange* transport failure (the replica was
//! SIGKILLed with our request on its socket) is also retried, on a
//! different replica. That is safe precisely because the op is idempotent:
//! re-sending a read cannot double an effect, and it is what turns a
//! replica crash into zero client-visible failures.
//!
//! **Hedged requests**: for idempotent ops, an optional hedge delay arms a
//! second attempt on a *different* replica when the first has not answered
//! in time. First final response wins; the loser's socket is simply
//! dropped. Hedging converts a stuck replica's tail latency into the
//! healthy replica's median, at the cost of duplicate reads —
//! `serve.fleet.{hedges,hedge_wins}` account for both sides of that trade.

use crate::client::{is_idempotent, RetryPolicy};
use crate::proto::{ErrorKind, ProtoError};
use crate::server::one_shot;
use proxim_obs::json::Json;
use proxim_obs::serve_metrics as sm;
use proxim_obs::Registry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning for [`FleetClient`].
#[derive(Debug, Clone)]
pub struct FleetClientOptions {
    /// Backoff/deadline/jitter discipline between attempt rounds, shared
    /// with [`crate::client::call_with_retry`].
    pub retry: RetryPolicy,
    /// Arm a hedged second attempt for idempotent requests after this
    /// delay without a response. `None` disables hedging.
    pub hedge_delay: Option<Duration>,
    /// How long a replica stays deprioritized after a connect/transport
    /// failure or a `shutting_down` refusal.
    pub cooldown: Duration,
}

impl Default for FleetClientOptions {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            hedge_delay: None,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// What a fleet call did, beyond the response itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// The final response payload (success *or* the last typed refusal).
    pub response: String,
    /// Attempt rounds made (1 = answered first try; a hedged pair is one
    /// round).
    pub attempts: u32,
    /// Index of the replica whose response was returned.
    pub replica: usize,
    /// Whether any round armed a hedge.
    pub hedged: bool,
    /// Whether a hedged (second) attempt produced the winning response.
    pub hedge_won: bool,
}

struct Endpoint {
    socket: PathBuf,
    /// Deprioritized until this instant after a failure (`None` = healthy).
    unhealthy_until: Mutex<Option<Instant>>,
}

/// A round-robin, health-tracking, hedging balancer over replica sockets.
pub struct FleetClient {
    endpoints: Vec<Endpoint>,
    cursor: AtomicUsize,
    opts: FleetClientOptions,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    failovers: AtomicU64,
    registry: Mutex<Option<Arc<Registry>>>,
}

/// How one attempt's outcome steers the loop.
enum Step {
    /// Hand this to the caller.
    Finish(Result<String, ProtoError>),
    /// Retryable on another replica (idempotent requests only), with the
    /// server's retry-after hint if one rode on the refusal and whether the
    /// replica itself should cool down.
    Retry {
        last: Result<String, ProtoError>,
        hint: Option<Duration>,
        cooldown: bool,
    },
}

fn classify(result: Result<String, ProtoError>) -> Step {
    match result {
        Ok(response) => {
            let Ok(json) = Json::parse(&response) else {
                return Step::Finish(Ok(response));
            };
            let kind = json
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str);
            let overloaded = kind == Some(ErrorKind::Overloaded.wire_name());
            let draining = kind == Some(ErrorKind::ShuttingDown.wire_name());
            if !overloaded && !draining {
                return Step::Finish(Ok(response));
            }
            let hint = json
                .get("error")
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_f64)
                .filter(|ms| ms.is_finite() && *ms >= 0.0)
                .map(|ms| Duration::from_millis(ms as u64));
            Step::Retry {
                last: Ok(response),
                hint,
                // An overloaded replica recovers in milliseconds — keep it
                // in rotation. A draining one is going away — cool it down.
                cooldown: draining,
            }
        }
        // Any transport failure — connect-refused *or* mid-exchange (the
        // replica died under us) — is retryable here: the caller only
        // reaches this classifier for idempotent requests.
        Err(e) => Step::Retry {
            last: Err(e),
            hint: None,
            cooldown: true,
        },
    }
}

impl FleetClient {
    /// A balancer over `sockets` (one per replica), in rotation order.
    #[must_use]
    pub fn new(sockets: Vec<PathBuf>, opts: FleetClientOptions) -> Self {
        Self {
            endpoints: sockets
                .into_iter()
                .map(|socket| Endpoint {
                    socket,
                    unhealthy_until: Mutex::new(None),
                })
                .collect(),
            cursor: AtomicUsize::new(0),
            opts,
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            registry: Mutex::new(None),
        }
    }

    /// Mirrors hedge accounting into `serve.fleet.{hedges,hedge_wins}`.
    pub fn bind_metrics(&self, registry: &Arc<Registry>) {
        if let Ok(mut slot) = self.registry.lock() {
            *slot = Some(Arc::clone(registry));
        }
    }

    /// Hedged attempts armed so far.
    pub fn hedges(&self) -> u64 {
        self.hedges.load(Ordering::Relaxed)
    }

    /// Hedged attempts whose response won the race.
    pub fn hedge_wins(&self) -> u64 {
        self.hedge_wins.load(Ordering::Relaxed)
    }

    /// Attempt rounds that moved to a different replica after a failure.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Next replica in rotation, preferring ones not in cooldown. Falls
    /// back to plain rotation when every replica is cooling down — a
    /// refused attempt beats refusing locally on stale health data.
    fn pick(&self, exclude: Option<usize>) -> usize {
        let n = self.endpoints.len();
        let now = Instant::now();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for offset in 0..n {
            let idx = (start + offset) % n;
            if exclude == Some(idx) {
                continue;
            }
            let healthy = match self.endpoints[idx].unhealthy_until.lock() {
                Ok(until) => until.is_none_or(|t| now >= t),
                Err(_) => true,
            };
            if healthy {
                return idx;
            }
        }
        // All cooling down (or excluded): rotate anyway, honoring exclude.
        let idx = start % n;
        if exclude == Some(idx) && n > 1 {
            (idx + 1) % n
        } else {
            idx
        }
    }

    fn cool_down(&self, idx: usize) {
        if let Ok(mut until) = self.endpoints[idx].unhealthy_until.lock() {
            *until = Some(Instant::now() + self.opts.cooldown);
        }
    }

    fn count_hedge(&self, won: bool) {
        if won {
            self.hedge_wins.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hedges.fetch_add(1, Ordering::Relaxed);
        }
        if let Ok(slot) = self.registry.lock() {
            if let Some(registry) = slot.as_ref() {
                let name = if won {
                    sm::FLEET_HEDGE_WINS
                } else {
                    sm::FLEET_HEDGES
                };
                registry.counter(name).incr();
            }
        }
    }

    /// One attempt round: primary attempt on `primary`, optionally hedged
    /// to a different replica after the hedge delay. Returns the winning
    /// replica's index, its raw result, and whether a hedge was armed/won.
    fn round(
        &self,
        request: &str,
        primary: usize,
        hedge: bool,
    ) -> (usize, Result<String, ProtoError>, bool, bool) {
        let hedge_delay = match self.opts.hedge_delay {
            Some(d) if hedge && self.endpoints.len() > 1 => d,
            _ => {
                // No hedging: a plain in-thread attempt, no channel races.
                let result = one_shot(&self.endpoints[primary].socket, request);
                return (primary, result, false, false);
            }
        };
        let (tx, rx) = mpsc::channel();
        let spawn = |idx: usize, tx: mpsc::Sender<(usize, Result<String, ProtoError>)>| {
            let socket = self.endpoints[idx].socket.clone();
            let request = request.to_string();
            std::thread::spawn(move || {
                let _ = tx.send((idx, one_shot(&socket, &request)));
            });
        };
        spawn(primary, tx.clone());
        let mut armed = false;
        let first = match rx.recv_timeout(hedge_delay) {
            Ok(arrival) => arrival,
            Err(_) => {
                // Primary is slow: arm the hedge on a different replica.
                armed = true;
                self.count_hedge(false);
                spawn(self.pick(Some(primary)), tx.clone());
                match rx.recv_timeout(HEDGE_ABANDON) {
                    Ok(arrival) => arrival,
                    Err(_) => {
                        let e =
                            ProtoError::new(ErrorKind::Internal, "hedged attempts both timed out");
                        return (primary, Err(e), true, false);
                    }
                }
            }
        };
        // A final first arrival wins outright. A retryable one (refusal or
        // transport error) with the other attempt still in flight waits for
        // it — the straggler may hold a real answer worth surfacing over a
        // refusal.
        let winner = if is_final(&first.1) || !armed {
            first
        } else {
            match rx.recv_timeout(HEDGE_ABANDON) {
                Ok(second) if is_final(&second.1) => second,
                _ => first,
            }
        };
        let hedge_won = armed && winner.0 != primary;
        if hedge_won {
            self.count_hedge(true);
        }
        (winner.0, winner.1, armed, hedge_won)
    }

    /// One fleet call under the full discipline: rotation, health
    /// tracking, failover with backoff for idempotent ops, hedging,
    /// exactly-once for mutating ops.
    ///
    /// # Errors
    ///
    /// The last transport/protocol failure when retries (or the deadline)
    /// run out, or the sole attempt's failure for non-idempotent ops.
    pub fn call(&self, request: &str) -> Result<FleetOutcome, ProtoError> {
        assert!(!self.endpoints.is_empty(), "FleetClient needs >= 1 socket");
        let idempotent = is_idempotent(request);
        let policy = &self.opts.retry;
        let mut jitter_state = policy.seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut attempts = 0u32;
        let mut hedged_any = false;
        let mut hedge_won_any = false;
        loop {
            attempts += 1;
            let primary = self.pick(None);
            let (replica, result, hedged, hedge_won) = self.round(request, primary, idempotent);
            hedged_any |= hedged;
            hedge_won_any |= hedge_won;
            let (last, hint, cooldown) = match classify(result) {
                Step::Finish(result) => {
                    return result.map(|response| FleetOutcome {
                        response,
                        attempts,
                        replica,
                        hedged: hedged_any,
                        hedge_won: hedge_won_any,
                    })
                }
                Step::Retry {
                    last,
                    hint,
                    cooldown,
                } => (last, hint, cooldown),
            };
            if cooldown {
                self.cool_down(replica);
            }
            let out_of_attempts = attempts >= policy.max_attempts.max(1);
            if !idempotent || out_of_attempts {
                return finish(last, attempts, replica, hedged_any, hedge_won_any);
            }
            self.failovers.fetch_add(1, Ordering::Relaxed);
            // Same jittered schedule as call_with_retry, same hint floor,
            // same deadline rule: never sleep past it.
            let jitter = 0.5 + proxim_spice::faultpoint::unit(&mut jitter_state);
            let exp = policy
                .base
                .saturating_mul(1u32.checked_shl(attempts - 1).unwrap_or(u32::MAX));
            let mut delay = exp.min(policy.cap).mul_f64(jitter);
            if let Some(hint) = hint {
                delay = delay.max(hint);
            }
            if let Some(deadline) = policy.deadline {
                let now = Instant::now();
                if now >= deadline || now + delay > deadline {
                    return finish(last, attempts, replica, hedged_any, hedge_won_any);
                }
            }
            std::thread::sleep(delay);
        }
    }
}

fn finish(
    last: Result<String, ProtoError>,
    attempts: u32,
    replica: usize,
    hedged: bool,
    hedge_won: bool,
) -> Result<FleetOutcome, ProtoError> {
    last.map(|response| FleetOutcome {
        response,
        attempts,
        replica,
        hedged,
        hedge_won,
    })
}

/// How long to wait on an armed hedge pair before abandoning both.
const HEDGE_ABANDON: Duration = Duration::from_secs(60);

/// Whether an attempt's raw result is final (handed to the caller as-is)
/// rather than a retryable refusal or transport failure.
fn is_final(result: &Result<String, ProtoError>) -> bool {
    match result {
        Ok(response) => {
            let Ok(json) = Json::parse(response) else {
                return true;
            };
            let kind = json
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str);
            kind != Some(ErrorKind::Overloaded.wire_name())
                && kind != Some(ErrorKind::ShuttingDown.wire_name())
        }
        Err(_) => false,
    }
}
