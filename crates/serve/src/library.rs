//! The in-memory model library the daemon serves from.
//!
//! Loading is *degrade-instead-of-die*: every store entry is read,
//! checksum-verified, and revalidated; entries that fail any gate are
//! quarantined aside (content-hash-suffixed `.quarantined` files, so
//! repeated corruption keeps every piece of evidence) and the library
//! opens with whatever survived. A daemon pointed at a half-corrupt store
//! starts **degraded** — health probes say so, the load report names every
//! casualty — instead of refusing to start and taking the healthy models
//! down with the corrupt ones.
//!
//! After open the library is immutable; concurrent readers share it
//! through an `Arc` with no locking.

use crate::store::{entry_name, ModelStore};
use proxim_model::ProximityModel;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// What happened while opening a library: the survivors, the casualties,
/// and the crash debris that was cleaned up.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Names that loaded and validated.
    pub loaded: Vec<String>,
    /// Entries quarantined during load: where the evidence went and why.
    pub quarantined: Vec<(PathBuf, String)>,
    /// Stale atomic-write temp files reclaimed (debris of a killed
    /// writer).
    pub reclaimed_tmp: usize,
}

/// An immutable, concurrently-shareable set of named proximity models.
#[derive(Debug, Clone)]
pub struct ModelLibrary {
    models: BTreeMap<String, Arc<ProximityModel>>,
    report: LoadReport,
}

impl ModelLibrary {
    /// Opens every loadable entry in `store`, quarantining the rest.
    ///
    /// Never fails: an unreadable or empty store directory yields an empty
    /// library (the daemon starts degraded and says so on its health
    /// probe, rather than dying).
    pub fn open(store: &ModelStore) -> Self {
        let reclaimed_tmp = store.reclaim_temp_files();
        let mut models = BTreeMap::new();
        let mut report = LoadReport {
            reclaimed_tmp,
            ..LoadReport::default()
        };

        let mut paths: Vec<PathBuf> = fs::read_dir(store.root())
            .map(|rd| rd.flatten().map(|e| e.path()).collect())
            .unwrap_or_default();
        paths.sort();
        for path in paths {
            let Some(name) = entry_name(&path) else {
                continue; // quarantined evidence, temp debris, foreign files
            };
            match store.load(&name) {
                Ok(model) => {
                    report.loaded.push(name.clone());
                    models.insert(name, Arc::new(model));
                }
                Err(e) => {
                    let to = store.quarantine(&path);
                    report.quarantined.push((to, e.to_string()));
                }
            }
        }
        Self { models, report }
    }

    /// An empty library (used when the daemon must start with nothing).
    pub fn empty() -> Self {
        Self {
            models: BTreeMap::new(),
            report: LoadReport::default(),
        }
    }

    /// The model named `name`, if it survived load.
    pub fn get(&self, name: &str) -> Option<&Arc<ProximityModel>> {
        self.models.get(name)
    }

    /// Every servable model name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// How many models are servable.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether nothing is servable.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Whether load lost anything — the daemon is serving, but degraded.
    pub fn is_degraded(&self) -> bool {
        !self.report.quarantined.is_empty()
    }

    /// The full load report.
    pub fn report(&self) -> &LoadReport {
        &self.report
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::store::tests::shared_model;
    use crate::store::ENTRY_EXT;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("proxim_library_{}_{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn opens_degraded_with_survivors_when_entries_are_corrupt() {
        let store = ModelStore::new(scratch("degraded"));
        let model = shared_model();
        store.save("good_a", model).unwrap();
        store.save("good_b", model).unwrap();
        // One corrupt entry, one torn entry, one stale temp file.
        fs::write(store.entry_path("corrupt"), b"PXMSTOR1 but not really").unwrap();
        let good = fs::read(store.entry_path("good_a")).unwrap();
        fs::write(store.entry_path("torn"), &good[..good.len() / 2]).unwrap();
        fs::write(
            store.root().join(format!(".junk.{ENTRY_EXT}.tmp.1.2")),
            b"debris",
        )
        .unwrap();

        let lib = ModelLibrary::open(&store);
        assert_eq!(lib.names(), vec!["good_a", "good_b"]);
        assert!(lib.is_degraded());
        assert_eq!(lib.report().quarantined.len(), 2);
        assert_eq!(lib.report().reclaimed_tmp, 1);
        for (path, reason) in &lib.report().quarantined {
            assert!(path.exists(), "evidence preserved at {}", path.display());
            assert!(!reason.is_empty());
        }
        // The corrupt entries are gone from the store, so a reopen is clean.
        let lib = ModelLibrary::open(&store);
        assert!(!lib.is_degraded());
        assert_eq!(lib.len(), 2);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn missing_store_directory_opens_empty_not_dead() {
        let lib = ModelLibrary::open(&ModelStore::new(scratch("missing")));
        assert!(lib.is_empty());
        assert!(!lib.is_degraded());
        assert!(lib.get("anything").is_none());
    }
}
