//! The in-memory model library the daemon serves from.
//!
//! Loading is *degrade-instead-of-die*: every store entry is read,
//! checksum-verified, and revalidated; entries that fail any gate are
//! quarantined aside (content-hash-suffixed `.quarantined` files, so
//! repeated corruption keeps every piece of evidence) and the library
//! opens with whatever survived. A daemon pointed at a half-corrupt store
//! starts **degraded** — health probes say so, the load report names every
//! casualty — instead of refusing to start and taking the healthy models
//! down with the corrupt ones. An unreadable store *root* is recorded
//! distinctly ([`LoadReport::root_error`]): a permission failure must
//! never masquerade as an empty store.
//!
//! # Generations
//!
//! A library is one immutable *generation* of the serving set: its catalog
//! (which names are servable, at what resident cost) is fixed at open.
//! Hot reload opens the store into a fresh candidate generation off to the
//! side, judges it against the live one ([`judge_candidate`]), and swaps
//! an `Arc` — in-flight requests finish on the generation they started on.
//!
//! # Memory budget
//!
//! With [`LibraryOptions::memory_budget`] set, the library keeps at most
//! that many bytes of model data *resident* (cost = the entry's on-disk
//! size, fixed per generation so admission and eviction always agree).
//! Every catalog entry is still fully loaded and validated once at open —
//! the quarantine gate is never skipped — but over-budget models are
//! dropped from residency and reloaded on demand: a miss pays one
//! *cold load* (single-flight: concurrent misses for the same model wait
//! on the one loader), then least-recently-used residents are evicted
//! until the budget holds. Eviction only drops the library's reference;
//! requests mid-flight keep their `Arc` alive.

use crate::store::{entry_name, ModelStore, StoreError};
use proxim_model::ProximityModel;
use proxim_obs::serve_metrics as sm;
use proxim_obs::{Counter, Gauge, Registry};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// How a library is opened: the memory budget and the generation identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryOptions {
    /// Maximum bytes of model data kept resident (`None` = everything
    /// stays resident). Models are never refused for being over budget —
    /// they are served via cold loads instead of staying cached.
    pub memory_budget: Option<u64>,
    /// The generation number this library serves as (bumped by reload).
    pub generation: u64,
    /// Optional operator-supplied label for this generation, echoed on the
    /// health probe.
    pub label: Option<String>,
}

impl Default for LibraryOptions {
    fn default() -> Self {
        Self {
            memory_budget: None,
            generation: 1,
            label: None,
        }
    }
}

/// What happened while opening a library: the survivors, the casualties,
/// and the crash debris that was cleaned up.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Names that loaded and validated.
    pub loaded: Vec<String>,
    /// Entries quarantined during load: where the evidence went and why.
    pub quarantined: Vec<(PathBuf, String)>,
    /// Entries that failed load but whose quarantine rename *also* failed
    /// (read-only or full disk): the corrupt entry is still in place, and
    /// the rename error is reported distinctly — never as evidence.
    pub quarantine_failed: Vec<(PathBuf, String)>,
    /// Stale atomic-write temp files reclaimed (debris of a killed
    /// writer).
    pub reclaimed_tmp: usize,
    /// The store root could not be listed (permission failure, I/O error).
    /// Recorded so an unreadable store is distinguishable from an empty
    /// one; a reload candidate carrying this is always rejected.
    pub root_error: Option<String>,
}

/// One successful model acquisition: the model plus how it was obtained.
#[derive(Debug, Clone)]
pub struct Acquired {
    /// The model, alive for as long as the caller holds it — eviction and
    /// generation swaps only drop the library's own references.
    pub model: Arc<ProximityModel>,
    /// Whether this acquisition paid a cold load from the store.
    pub cold: bool,
    /// Microseconds the cold load took (zero for resident hits).
    pub load_us: u64,
    /// Whether this acquisition waited on another request's in-progress
    /// load of the same model (single-flight).
    pub waited: bool,
}

/// Why a model could not be acquired.
#[derive(Debug, Clone, PartialEq)]
pub enum AcquireError {
    /// The name is not in this generation's catalog.
    UnknownModel,
    /// The catalog lists the name but the cold load failed — the entry
    /// was corrupted or removed after open. Typed, never a panic; the
    /// entry stays in the catalog so an operator fix plus reload heals it.
    LoadFailed(StoreError),
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel => write!(f, "model is not in the library catalog"),
            Self::LoadFailed(e) => write!(f, "cold model load failed: {e}"),
        }
    }
}

/// Metric handles the library updates; resolved once per daemon registry
/// via [`ModelLibrary::bind_metrics`]. Counters are shared across
/// generations (the registry deduplicates by name), so reload never resets
/// an operator's rate graphs.
#[derive(Debug)]
struct LibraryMetrics {
    resident_bytes: Gauge,
    evictions: Counter,
    cold_misses: Counter,
    singleflight_waits: Counter,
}

/// The mutable residency state behind the library's lock: which models are
/// in memory, in what recency order, and which are mid-load.
#[derive(Debug, Default)]
struct Resident {
    models: BTreeMap<String, Arc<ProximityModel>>,
    /// Least-recently-used at the front.
    lru: VecDeque<String>,
    resident_bytes: u64,
    /// Names with a cold load in progress (single-flight guard).
    loading: BTreeSet<String>,
}

/// One generation of the serving set: an immutable catalog with
/// memory-governed residency.
#[derive(Debug)]
pub struct ModelLibrary {
    store: ModelStore,
    opts: LibraryOptions,
    /// Every servable name, with its fixed resident cost in bytes.
    catalog: BTreeMap<String, u64>,
    resident: Mutex<Resident>,
    load_done: Condvar,
    report: LoadReport,
    metrics: OnceLock<LibraryMetrics>,
}

fn lock<'a>(m: &'a Mutex<Resident>) -> MutexGuard<'a, Resident> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ModelLibrary {
    /// Opens every loadable entry in `store` with default options (fully
    /// resident, generation 1), quarantining the rest.
    ///
    /// Never fails: an empty — or even unreadable — store directory yields
    /// an empty library; the daemon starts degraded and says so on its
    /// health probe (with [`LoadReport::root_error`] naming an unreadable
    /// root) rather than dying.
    pub fn open(store: &ModelStore) -> Self {
        Self::open_with(store, LibraryOptions::default())
    }

    /// Opens every loadable entry in `store` under `opts`.
    ///
    /// Every entry is fully loaded and validated exactly once — the
    /// quarantine gate runs regardless of the budget — then residency is
    /// trimmed: with a budget, at most `memory_budget` bytes of models
    /// remain resident when this returns, and the rest are served via
    /// cold loads on demand.
    pub fn open_with(store: &ModelStore, opts: LibraryOptions) -> Self {
        let reclaimed_tmp = store.reclaim_temp_files();
        let mut report = LoadReport {
            reclaimed_tmp,
            ..LoadReport::default()
        };
        let mut paths: Vec<PathBuf> = match fs::read_dir(store.root()) {
            Ok(rd) => rd.flatten().map(|e| e.path()).collect(),
            // A store that does not exist yet is legitimately empty (it is
            // created lazily on first save); anything else unreadable is a
            // recorded fault, not an empty library.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                report.root_error = Some(format!(
                    "cannot list store root {}: {e}",
                    store.root().display()
                ));
                Vec::new()
            }
        };
        paths.sort();

        let mut catalog = BTreeMap::new();
        let mut resident = Resident::default();
        for path in paths {
            let Some(name) = entry_name(&path) else {
                continue; // quarantined evidence, temp debris, foreign files
            };
            match store.load(&name) {
                Ok(model) => {
                    // Resident cost = the entry's on-disk size: cheap,
                    // deterministic, and proportional to the decoded
                    // tables. Fixed at open so admission and eviction
                    // always account with the same number.
                    let cost = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    catalog.insert(name.clone(), cost);
                    report.loaded.push(name.clone());
                    admit_locked(
                        &mut resident,
                        &catalog,
                        &name,
                        Arc::new(model),
                        cost,
                        opts.memory_budget,
                        None,
                    );
                }
                Err(e) => match store.quarantine(&path) {
                    Ok(to) => report.quarantined.push((to, e.to_string())),
                    Err(qf) => report
                        .quarantine_failed
                        .push((qf.entry.clone(), format!("{e}; {}", qf.error))),
                },
            }
        }
        Self {
            store: store.clone(),
            opts,
            catalog,
            resident: Mutex::new(resident),
            load_done: Condvar::new(),
            report,
            metrics: OnceLock::new(),
        }
    }

    /// An empty library (used when the daemon must start with nothing).
    pub fn empty() -> Self {
        Self {
            store: ModelStore::new(PathBuf::new()),
            opts: LibraryOptions::default(),
            catalog: BTreeMap::new(),
            resident: Mutex::new(Resident::default()),
            load_done: Condvar::new(),
            report: LoadReport::default(),
            metrics: OnceLock::new(),
        }
    }

    /// Resolves this library's metric handles against `registry` and
    /// publishes the current residency gauge. Idempotent; call before the
    /// library starts taking traffic (reload binds the candidate before
    /// the swap).
    pub fn bind_metrics(&self, registry: &Registry) {
        let m = self.metrics.get_or_init(|| LibraryMetrics {
            resident_bytes: registry.gauge(sm::LIBRARY_RESIDENT_BYTES),
            evictions: registry.counter(sm::LIBRARY_EVICTIONS),
            cold_misses: registry.counter(sm::LIBRARY_COLD_MISSES),
            singleflight_waits: registry.counter(sm::LIBRARY_SINGLEFLIGHT_WAITS),
        });
        m.resident_bytes
            .set(lock(&self.resident).resident_bytes as f64);
        registry
            .counter(sm::QUARANTINE_FAILED)
            .add(self.report.quarantine_failed.len() as u64);
        if !self.report.quarantine_failed.is_empty() {
            registry
                .counter(sm::DISK_FAULTS)
                .add(self.report.quarantine_failed.len() as u64);
        }
    }

    /// Acquires the model named `name`: a resident hit, or a single-flight
    /// cold load from the store with LRU eviction back under the budget.
    ///
    /// # Errors
    ///
    /// [`AcquireError::UnknownModel`] for names outside the catalog;
    /// [`AcquireError::LoadFailed`] when a cold load finds the entry
    /// corrupted or missing (typed — the store error names the cause).
    pub fn acquire(&self, name: &str) -> Result<Acquired, AcquireError> {
        let Some(&cost) = self.catalog.get(name) else {
            return Err(AcquireError::UnknownModel);
        };
        let mut waited = false;
        let mut r = lock(&self.resident);
        loop {
            if let Some(m) = r.models.get(name) {
                let model = Arc::clone(m);
                touch(&mut r, name);
                return Ok(Acquired {
                    model,
                    cold: false,
                    load_us: 0,
                    waited,
                });
            }
            if r.loading.contains(name) {
                // Another request is loading this exact model: wait for it
                // instead of loading it twice (single-flight).
                if !waited {
                    if let Some(m) = self.metrics.get() {
                        m.singleflight_waits.incr();
                    }
                    waited = true;
                }
                r = self
                    .load_done
                    .wait(r)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            break;
        }
        r.loading.insert(name.to_owned());
        drop(r);

        let load_start = Instant::now();
        let loaded = self.store.load(name);
        let load_us = load_start.elapsed().as_micros() as u64;

        let mut r = lock(&self.resident);
        r.loading.remove(name);
        let outcome = match loaded {
            Ok(model) => {
                let model = Arc::new(model);
                admit_locked(
                    &mut r,
                    &self.catalog,
                    name,
                    Arc::clone(&model),
                    cost,
                    self.opts.memory_budget,
                    self.metrics.get(),
                );
                if let Some(m) = self.metrics.get() {
                    m.cold_misses.incr();
                }
                Ok(Acquired {
                    model,
                    cold: true,
                    load_us,
                    waited,
                })
            }
            Err(e) => Err(AcquireError::LoadFailed(e)),
        };
        drop(r);
        // Waiters re-check residency; after a failed load the first one
        // awake becomes the next loader.
        self.load_done.notify_all();
        outcome
    }

    /// The model named `name`, if it is servable (convenience over
    /// [`Self::acquire`], discarding the cold/load metadata).
    pub fn get(&self, name: &str) -> Option<Arc<ProximityModel>> {
        self.acquire(name).ok().map(|a| a.model)
    }

    /// Every servable model name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.catalog.keys().cloned().collect()
    }

    /// How many models are servable (resident or not).
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// Whether nothing is servable.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// Whether load lost anything — the daemon is serving, but degraded:
    /// entries quarantined, quarantine renames failed, or the store root
    /// itself was unreadable.
    pub fn is_degraded(&self) -> bool {
        !self.report.quarantined.is_empty()
            || !self.report.quarantine_failed.is_empty()
            || self.report.root_error.is_some()
    }

    /// The full load report.
    pub fn report(&self) -> &LoadReport {
        &self.report
    }

    /// The options this library was opened with (reload reuses them for
    /// the candidate generation).
    pub fn options(&self) -> &LibraryOptions {
        &self.opts
    }

    /// The generation number this library serves as.
    pub fn generation(&self) -> u64 {
        self.opts.generation
    }

    /// The store this library loads from.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Bytes of model data currently resident.
    pub fn resident_bytes(&self) -> u64 {
        lock(&self.resident).resident_bytes
    }

    /// How many models are currently resident.
    pub fn resident_len(&self) -> usize {
        lock(&self.resident).models.len()
    }

    /// Test hook: marks `name` as mid-load so a concurrent [`Self::acquire`]
    /// deterministically takes the single-flight wait path.
    #[cfg(test)]
    fn hold_loading_for_test(&self, name: &str) {
        lock(&self.resident).loading.insert(name.to_owned());
    }

    /// Test hook: releases a [`Self::hold_loading_for_test`] marker and
    /// wakes the waiters.
    #[cfg(test)]
    fn release_loading_for_test(&self, name: &str) {
        lock(&self.resident).loading.remove(name);
        self.load_done.notify_all();
    }
}

/// Moves `name` to the most-recently-used position.
fn touch(r: &mut Resident, name: &str) {
    if let Some(pos) = r.lru.iter().position(|n| n == name) {
        if pos + 1 != r.lru.len() {
            let n = r.lru.remove(pos).unwrap_or_else(|| name.to_owned());
            r.lru.push_back(n);
        }
    }
}

/// Admits a freshly loaded model into residency and evicts
/// least-recently-used residents until the budget holds again. A model
/// whose own cost exceeds the budget is never admitted (every request for
/// it is a cold load) so the resident-bytes gauge cannot exceed the
/// budget once load completes. Eviction drops only the library's `Arc`;
/// requests holding the model keep it alive.
fn admit_locked(
    r: &mut Resident,
    costs: &BTreeMap<String, u64>,
    name: &str,
    model: Arc<ProximityModel>,
    cost: u64,
    budget: Option<u64>,
    metrics: Option<&LibraryMetrics>,
) {
    if r.models.contains_key(name) {
        return; // lost a race with an identical admit; keep the first
    }
    let over_budget_alone = budget.is_some_and(|b| cost > b);
    if !over_budget_alone {
        r.models.insert(name.to_owned(), model);
        r.lru.push_back(name.to_owned());
        r.resident_bytes += cost;
        if let Some(b) = budget {
            while r.resident_bytes > b && r.lru.len() > 1 {
                let Some(victim) = r.lru.pop_front() else {
                    break;
                };
                r.models.remove(&victim);
                r.resident_bytes = r
                    .resident_bytes
                    .saturating_sub(costs.get(&victim).copied().unwrap_or(0));
                if let Some(m) = metrics {
                    m.evictions.incr();
                }
            }
        }
    }
    if let Some(m) = metrics {
        m.resident_bytes.set(r.resident_bytes as f64);
    }
}

/// Why a reload candidate was refused; every field feeds the typed wire
/// report so an operator sees exactly how the candidate is worse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadRejection {
    /// Human-readable reasons, one per failed gate.
    pub reasons: Vec<String>,
    /// Servable models in the candidate.
    pub candidate_loaded: usize,
    /// Servable models in the live generation.
    pub live_loaded: usize,
    /// Entries the candidate load quarantined (or failed to quarantine).
    pub candidate_quarantined: usize,
    /// The candidate's store-root error, if listing failed.
    pub root_error: Option<String>,
}

impl fmt::Display for ReloadRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reload candidate rejected: {}", self.reasons.join("; "))
    }
}

/// The validation gate between a freshly loaded candidate generation and
/// the live one. A candidate that loads *worse* — unreadable store root,
/// fewer survivors, or new quarantines — is refused so a bad deploy can
/// never silently shrink the serving set. `force` overrides the
/// worse-than-live gates but never the unreadable-root gate: swapping in a
/// library that could not even list its store would serve an empty set by
/// accident, which is exactly the failure this gate exists to prevent.
///
/// # Errors
///
/// A [`ReloadRejection`] naming every failed gate.
pub fn judge_candidate(
    candidate: &ModelLibrary,
    live: &ModelLibrary,
    force: bool,
) -> Result<(), ReloadRejection> {
    let mut reasons = Vec::new();
    if let Some(e) = &candidate.report().root_error {
        reasons.push(format!("store root unreadable ({e})"));
    }
    let quarantined =
        candidate.report().quarantined.len() + candidate.report().quarantine_failed.len();
    if candidate.report().root_error.is_none() && force {
        // Forced: only the unreadable-root gate applies.
    } else if candidate.report().root_error.is_none() {
        if candidate.len() < live.len() {
            reasons.push(format!(
                "fewer survivors than live ({} < {})",
                candidate.len(),
                live.len()
            ));
        }
        if quarantined > 0 {
            reasons.push(format!("{quarantined} entries quarantined during load"));
        }
    }
    if reasons.is_empty() {
        return Ok(());
    }
    Err(ReloadRejection {
        reasons,
        candidate_loaded: candidate.len(),
        live_loaded: live.len(),
        candidate_quarantined: quarantined,
        root_error: candidate.report().root_error.clone(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::store::tests::shared_model;
    use crate::store::ENTRY_EXT;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("proxim_library_{}_{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn seeded_store(name: &str, models: &[&str]) -> ModelStore {
        let store = ModelStore::new(scratch(name));
        for m in models {
            store.save(m, shared_model()).unwrap();
        }
        store
    }

    #[test]
    fn opens_degraded_with_survivors_when_entries_are_corrupt() {
        let store = seeded_store("degraded", &["good_a", "good_b"]);
        // One corrupt entry, one torn entry, one stale temp file.
        fs::write(store.entry_path("corrupt"), b"PXMSTOR1 but not really").unwrap();
        let good = fs::read(store.entry_path("good_a")).unwrap();
        fs::write(store.entry_path("torn"), &good[..good.len() / 2]).unwrap();
        fs::write(
            store.root().join(format!(".junk.{ENTRY_EXT}.tmp.1.2")),
            b"debris",
        )
        .unwrap();

        let lib = ModelLibrary::open(&store);
        assert_eq!(lib.names(), vec!["good_a", "good_b"]);
        assert!(lib.is_degraded());
        assert_eq!(lib.report().quarantined.len(), 2);
        assert!(lib.report().quarantine_failed.is_empty());
        assert_eq!(lib.report().reclaimed_tmp, 1);
        assert_eq!(lib.report().root_error, None);
        for (path, reason) in &lib.report().quarantined {
            assert!(path.exists(), "evidence preserved at {}", path.display());
            assert!(!reason.is_empty());
        }
        // The corrupt entries are gone from the store, so a reopen is clean.
        let lib = ModelLibrary::open(&store);
        assert!(!lib.is_degraded());
        assert_eq!(lib.len(), 2);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn missing_store_directory_opens_empty_not_dead() {
        let lib = ModelLibrary::open(&ModelStore::new(scratch("missing")));
        assert!(lib.is_empty());
        assert!(!lib.is_degraded());
        assert_eq!(lib.report().root_error, None);
        assert!(lib.get("anything").is_none());
    }

    #[test]
    fn unreadable_store_root_is_recorded_not_silently_empty() {
        // A root that exists but is a *file* makes read_dir fail with
        // NotADirectory — the portable stand-in for a permission failure.
        let path = scratch("notadir");
        fs::create_dir_all(path.parent().unwrap()).ok();
        fs::write(&path, b"i am not a directory").unwrap();
        let lib = ModelLibrary::open(&ModelStore::new(&path));
        assert!(lib.is_empty());
        assert!(lib.is_degraded(), "unreadable root must degrade");
        let err = lib
            .report()
            .root_error
            .as_ref()
            .expect("root error recorded");
        assert!(err.contains("cannot list store root"), "{err}");
        // And a reload candidate in this state is always rejected, even
        // forced.
        let live = ModelLibrary::empty();
        let rej = judge_candidate(&lib, &live, true).unwrap_err();
        assert!(rej.root_error.is_some());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_caps_residency_and_serves_the_full_set_via_cold_misses() {
        let store = seeded_store("budget", &["m_a", "m_b", "m_c"]);
        let entry_size = fs::metadata(store.entry_path("m_a")).unwrap().len();
        // Room for exactly one model.
        let lib = ModelLibrary::open_with(
            &store,
            LibraryOptions {
                memory_budget: Some(entry_size + entry_size / 2),
                ..LibraryOptions::default()
            },
        );
        assert_eq!(lib.len(), 3, "every model is servable");
        assert_eq!(lib.resident_len(), 1, "but only one fits the budget");
        assert!(lib.resident_bytes() <= entry_size + entry_size / 2);

        // Each name serves correctly; non-resident ones pay a cold load.
        let mut colds = 0;
        for name in ["m_a", "m_b", "m_c", "m_a", "m_a"] {
            let got = lib.acquire(name).unwrap();
            colds += u32::from(got.cold);
            assert!(got.model.cell().input_count() >= 1);
            assert!(lib.resident_bytes() <= entry_size + entry_size / 2);
        }
        // m_b and m_c were evicted casualties of the tiny budget; the
        // second and third m_a hits are warm (m_a became resident last).
        assert!(colds >= 2, "tiny budget must force cold loads, got {colds}");
        let warm = lib.acquire("m_a").unwrap();
        assert!(!warm.cold);
        assert_eq!(warm.load_us, 0);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn eviction_keeps_outstanding_arcs_alive() {
        let store = seeded_store("arcs", &["m_a", "m_b"]);
        let entry_size = fs::metadata(store.entry_path("m_a")).unwrap().len();
        let lib = ModelLibrary::open_with(
            &store,
            LibraryOptions {
                memory_budget: Some(entry_size + 1),
                ..LibraryOptions::default()
            },
        );
        let held = lib.acquire("m_a").unwrap().model;
        // Acquiring m_b evicts m_a from residency...
        let _ = lib.acquire("m_b").unwrap();
        assert_eq!(lib.resident_len(), 1);
        // ...but the outstanding Arc still answers queries.
        assert!(held.cell().input_count() >= 1);
        assert!(Arc::strong_count(&held) >= 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn cold_load_of_a_since_corrupted_entry_is_typed() {
        let store = seeded_store("rot", &["m_a", "m_b"]);
        let entry_size = fs::metadata(store.entry_path("m_a")).unwrap().len();
        let lib = ModelLibrary::open_with(
            &store,
            LibraryOptions {
                memory_budget: Some(entry_size + 1),
                ..LibraryOptions::default()
            },
        );
        // m_b is resident (loaded last); m_a will cold-load. Corrupt it
        // behind the library's back.
        fs::write(store.entry_path("m_a"), b"rotted after open").unwrap();
        match lib.acquire("m_a") {
            Err(AcquireError::LoadFailed(e)) => {
                assert!(!e.to_string().is_empty());
            }
            other => panic!("expected typed load failure, got {other:?}"),
        }
        // The healthy resident model is unaffected.
        assert!(lib.acquire("m_b").is_ok());
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn concurrent_misses_single_flight_one_load() {
        let store = seeded_store("flight", &["m_a", "m_b"]);
        let entry_size = fs::metadata(store.entry_path("m_a")).unwrap().len();
        let lib = Arc::new(ModelLibrary::open_with(
            &store,
            LibraryOptions {
                memory_budget: Some(entry_size + 1),
                ..LibraryOptions::default()
            },
        ));
        let registry = Registry::new();
        lib.bind_metrics(&registry);
        // m_a is non-resident; hammer it from many threads at once.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lib = Arc::clone(&lib);
                std::thread::spawn(move || lib.acquire("m_a").unwrap())
            })
            .collect();
        let results: Vec<Acquired> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let colds = results.iter().filter(|a| a.cold).count();
        assert_eq!(colds, 1, "single-flight: exactly one loader pays the load");
        assert_eq!(
            registry.snapshot().counter(sm::LIBRARY_COLD_MISSES),
            1,
            "one cold miss counted"
        );

        // Deterministic waiter path: pin an in-progress load marker, start
        // an acquire that must wait on it, then release.
        lib.hold_loading_for_test("m_b");
        let waiter = {
            let lib = Arc::clone(&lib);
            std::thread::spawn(move || lib.acquire("m_b").unwrap())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !waiter.is_finished(),
            "acquire must block on the load marker"
        );
        lib.release_loading_for_test("m_b");
        let got = waiter.join().unwrap();
        assert!(got.waited, "the waiter saw the in-progress load");
        assert!(registry.snapshot().counter(sm::LIBRARY_SINGLEFLIGHT_WAITS) >= 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn reload_gate_rejects_worse_candidates_and_force_overrides() {
        let store = seeded_store("gate", &["m_a", "m_b"]);
        let live = ModelLibrary::open(&store);
        assert_eq!(live.len(), 2);

        // A clean identical candidate passes.
        let candidate = ModelLibrary::open_with(
            &store,
            LibraryOptions {
                generation: 2,
                ..LibraryOptions::default()
            },
        );
        judge_candidate(&candidate, &live, false).unwrap();

        // Corrupt one entry: the candidate quarantines it, loads fewer
        // survivors, and is rejected with both reasons.
        fs::write(store.entry_path("m_b"), b"deploy gone wrong").unwrap();
        let candidate = ModelLibrary::open_with(
            &store,
            LibraryOptions {
                generation: 3,
                ..LibraryOptions::default()
            },
        );
        let rej = judge_candidate(&candidate, &live, false).unwrap_err();
        assert_eq!(rej.candidate_loaded, 1);
        assert_eq!(rej.live_loaded, 2);
        assert_eq!(rej.candidate_quarantined, 1);
        assert!(rej.reasons.len() == 2, "{:?}", rej.reasons);

        // Force accepts the shrunken set (the quarantine already preserved
        // the evidence).
        let candidate = ModelLibrary::open_with(
            &store,
            LibraryOptions {
                generation: 4,
                ..LibraryOptions::default()
            },
        );
        judge_candidate(&candidate, &live, true).unwrap();
        fs::remove_dir_all(store.root()).ok();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn quarantine_rename_failure_is_reported_distinctly() {
        use crate::diskfault::{self, DiskFaultConfig};
        let store = seeded_store("qfail", &["good"]);
        fs::write(store.entry_path("bad"), b"corrupt bytes").unwrap();
        // Writes succeeded above; now fail every rename (full disk).
        diskfault::configure(DiskFaultConfig {
            fail_writes: false,
            fail_renames: true,
            ..DiskFaultConfig::FULL_DISK
        });
        let lib = ModelLibrary::open(&store);
        diskfault::disarm();
        assert_eq!(lib.names(), vec!["good"]);
        assert!(lib.is_degraded());
        assert!(lib.report().quarantined.is_empty(), "no evidence path lie");
        assert_eq!(lib.report().quarantine_failed.len(), 1);
        let (path, reason) = &lib.report().quarantine_failed[0];
        assert!(path.exists(), "corrupt entry still in place");
        assert!(reason.contains("injected"), "{reason}");
        let registry = Registry::new();
        lib.bind_metrics(&registry);
        assert_eq!(registry.snapshot().counter(sm::QUARANTINE_FAILED), 1);
        fs::remove_dir_all(store.root()).ok();
    }
}
