//! The fleet supervisor: N replica daemons under one process manager.
//!
//! PRs 7–9 made a single `proxim-serve` daemon overload-safe and
//! crash-consistent — but one process is one SIGKILL away from a total
//! outage. [`Fleet`] spawns N replica daemons (each on its own socket
//! under a fleet directory), health-probes them on the probe fast path,
//! and restarts crashes with capped exponential backoff. A replica that
//! *keeps* crashing — ≥ M exits inside the quarantine window — is
//! **quarantined**: the supervisor stops burning restarts on it, reports
//! it typed (`replica_quarantined`), and the fleet keeps serving degraded
//! on the survivors. That inverts the single-daemon degrade-instead-of-die
//! philosophy deliberately: with replicas to fail over to, a corrupt
//! replica is worth more dead (and visibly quarantined) than limping.
//!
//! A control socket (`fleet.sock` in the fleet directory) answers the
//! `fleet` stats op with per-replica state/generation/uptime and the
//! `health` probe with the aggregate; everything else is refused typed —
//! queries belong on replica sockets, through
//! [`FleetClient`](crate::balance::FleetClient).
//!
//! Rolling reload walks the replicas one at a time — reload, wait until
//! the replica probes healthy on its new generation, move on — so a
//! library upgrade never drops below N−1 capacity. Quarantined replicas
//! are skipped with a typed [`ErrorKind::ReplicaQuarantined`] error.
//!
//! The supervisor is plain std: child processes via `std::process`,
//! graceful stop via `kill -TERM` (the daemon's own drain path), and the
//! metrics in `serve.fleet.*` on the supervisor's own [`Registry`].

use crate::proto::{
    self, parse_request, render_error, render_health, write_frame, ErrorKind, ProtoError, Request,
};
use crate::server::one_shot;
use proxim_obs::json::{push_escaped, Json};
use proxim_obs::serve_metrics as sm;
use proxim_obs::{trace, Registry, Snapshot};
use proxim_spice::CancelToken;
use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Sizing, paths, and supervision policy for a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of replica daemons to run.
    pub replicas: usize,
    /// Path to the `proxim_serve` binary the replicas run.
    pub daemon: PathBuf,
    /// Fleet directory: replica sockets, per-replica logs, and the
    /// `fleet.sock` control socket all live here.
    pub dir: PathBuf,
    /// The model store every replica serves (shared by default).
    pub store: PathBuf,
    /// Per-replica store overrides by index (tests use this to hand one
    /// replica a corrupt store). Missing indices fall back to `store`.
    pub replica_stores: Vec<PathBuf>,
    /// How often each running replica is health-probed.
    pub probe_interval: Duration,
    /// How long a replica may stay in `starting` before the supervisor
    /// kills it and counts the attempt as an exit.
    pub startup_grace: Duration,
    /// First restart backoff; doubles per consecutive failure up to
    /// [`Self::restart_backoff_cap`], resetting on a healthy probe.
    pub restart_backoff_base: Duration,
    /// Upper bound on a single restart backoff.
    pub restart_backoff_cap: Duration,
    /// Exits within [`Self::quarantine_window`] that quarantine a replica.
    pub quarantine_threshold: u32,
    /// Sliding window the exit count is judged over.
    pub quarantine_window: Duration,
    /// Pass `--strict-store` to replicas: a corrupt/empty store becomes a
    /// startup failure (exit 2) instead of a degraded daemon, so a bad
    /// replica crash-loops into quarantine rather than serving nothing.
    pub strict_store: bool,
    /// Extra CLI arguments appended to every replica's command line.
    pub replica_args: Vec<String>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            replicas: 3,
            daemon: PathBuf::new(),
            dir: PathBuf::new(),
            store: PathBuf::new(),
            replica_stores: Vec::new(),
            probe_interval: Duration::from_millis(100),
            startup_grace: Duration::from_secs(60),
            restart_backoff_base: Duration::from_millis(50),
            restart_backoff_cap: Duration::from_secs(2),
            quarantine_threshold: 5,
            quarantine_window: Duration::from_secs(30),
            strict_store: false,
            replica_args: Vec::new(),
        }
    }
}

/// Where a replica is in its supervision lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Spawned, not yet answering health probes.
    Starting,
    /// Answering health probes.
    Up,
    /// Exited; waiting out the restart backoff.
    Backoff,
    /// Crash-looped past the threshold; the supervisor has given up on it.
    Quarantined,
}

impl ReplicaState {
    /// The state's wire spelling in the `fleet` response.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Starting => "starting",
            Self::Up => "up",
            Self::Backoff => "backoff",
            Self::Quarantined => "quarantined",
        }
    }
}

/// A point-in-time public view of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaStatus {
    /// Position in the fleet (stable across restarts).
    pub index: usize,
    /// The replica's serving socket.
    pub socket: PathBuf,
    /// Supervision state.
    pub state: ReplicaState,
    /// OS pid of the live child, if one is running.
    pub pid: Option<u32>,
    /// Library generation last reported by a health probe.
    pub generation: u64,
    /// Time since the replica last became healthy (zero if not up).
    pub uptime: Duration,
    /// Supervised restarts so far (first spawn not counted).
    pub restarts: u64,
}

/// Supervision transitions, drained by [`Fleet::take_events`] (the CLI
/// prints them as log markers).
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A crashed replica was respawned.
    Restarted {
        /// Replica index.
        index: usize,
        /// Its restart count after this respawn.
        restarts: u64,
    },
    /// A replica crash-looped past the threshold and was quarantined.
    Quarantined {
        /// Replica index.
        index: usize,
        /// Exits observed inside the window at the moment of quarantine.
        exits: usize,
    },
}

struct Slot {
    index: usize,
    socket: PathBuf,
    store: PathBuf,
    log: PathBuf,
    child: Option<Child>,
    pid: Option<u32>,
    state: ReplicaState,
    started_at: Instant,
    up_since: Option<Instant>,
    generation: u64,
    exits: VecDeque<Instant>,
    restarts: u64,
    consecutive_failures: u32,
    restart_due: Option<Instant>,
    last_probe: Option<Instant>,
}

struct Shared {
    opts: FleetOptions,
    slots: Mutex<Vec<Slot>>,
    registry: Arc<Registry>,
    shutdown: CancelToken,
    events: Mutex<Vec<FleetEvent>>,
}

/// Mutex lock that shrugs off poisoning: supervision state must stay
/// reachable even if a panicking thread died holding the lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A running fleet of supervised replica daemons.
pub struct Fleet {
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
    control_socket: PathBuf,
}

impl Fleet {
    /// Spawns the replicas, the supervisor, and the control socket.
    ///
    /// # Errors
    ///
    /// Fleet directory creation, control-socket bind, or the *first*
    /// spawn of any replica failing (a missing daemon binary is a
    /// configuration error, not something to supervise around).
    pub fn start(opts: FleetOptions) -> io::Result<Self> {
        if opts.replicas == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a fleet needs at least one replica",
            ));
        }
        std::fs::create_dir_all(&opts.dir)?;
        let control_socket = opts.dir.join("fleet.sock");
        let _ = std::fs::remove_file(&control_socket);
        let listener = UnixListener::bind(&control_socket)?;
        listener.set_nonblocking(true)?;

        let mut slots = Vec::with_capacity(opts.replicas);
        for index in 0..opts.replicas {
            let store = opts
                .replica_stores
                .get(index)
                .cloned()
                .unwrap_or_else(|| opts.store.clone());
            let mut slot = Slot {
                index,
                socket: opts.dir.join(format!("replica-{index}.sock")),
                store,
                log: opts.dir.join(format!("replica-{index}.log")),
                child: None,
                pid: None,
                state: ReplicaState::Starting,
                started_at: Instant::now(),
                up_since: None,
                generation: 0,
                exits: VecDeque::new(),
                restarts: 0,
                consecutive_failures: 0,
                restart_due: None,
                last_probe: None,
            };
            spawn_replica(&opts, &mut slot)?;
            slots.push(slot);
        }

        let shared = Arc::new(Shared {
            opts,
            slots: Mutex::new(slots),
            registry: Arc::new(Registry::new()),
            shutdown: CancelToken::new(),
            events: Mutex::new(Vec::new()),
        });
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fleet-supervisor".into())
                .spawn(move || supervisor_loop(&shared))?
        };
        let control = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fleet-control".into())
                .spawn(move || control_loop(&shared, &listener))?
        };
        Ok(Self {
            shared,
            threads: vec![supervisor, control],
            control_socket,
        })
    }

    /// The replica serving sockets, in fleet order (stable across
    /// restarts — a respawned replica rebinds the same path).
    #[must_use]
    pub fn sockets(&self) -> Vec<PathBuf> {
        lock(&self.shared.slots)
            .iter()
            .map(|s| s.socket.clone())
            .collect()
    }

    /// The control socket answering the `fleet` and `health` ops.
    #[must_use]
    pub fn control_socket(&self) -> &Path {
        &self.control_socket
    }

    /// The supervisor's metrics registry (`serve.fleet.*`).
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// Point-in-time view of every replica.
    #[must_use]
    pub fn states(&self) -> Vec<ReplicaStatus> {
        lock(&self.shared.slots).iter().map(status_of).collect()
    }

    /// Drains accumulated supervision events.
    #[must_use]
    pub fn take_events(&self) -> Vec<FleetEvent> {
        std::mem::take(&mut *lock(&self.shared.events))
    }

    /// Blocks until every non-quarantined replica probes healthy, or the
    /// timeout passes. Returns whether the fleet came up in time.
    #[must_use]
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let ready = lock(&self.shared.slots)
                .iter()
                .all(|s| matches!(s.state, ReplicaState::Up | ReplicaState::Quarantined));
            if ready {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
    }

    /// Reloads the fleet one replica at a time: drive the daemon's
    /// `reload` op, wait until the replica probes healthy again, move on —
    /// capacity never drops below N−1. Quarantined replicas are skipped
    /// with a typed [`ErrorKind::ReplicaQuarantined`] error. Entry `i` is
    /// replica `i`'s reload response.
    pub fn rolling_reload(
        &self,
        force: bool,
        label: Option<&str>,
    ) -> Vec<Result<String, ProtoError>> {
        let targets: Vec<(usize, PathBuf, ReplicaState)> = lock(&self.shared.slots)
            .iter()
            .map(|s| (s.index, s.socket.clone(), s.state))
            .collect();
        let mut request = String::from("{\"op\":\"reload\"");
        if force {
            request.push_str(",\"force\":true");
        }
        if let Some(label) = label {
            request.push_str(",\"label\":");
            push_escaped(&mut request, label);
        }
        request.push('}');

        let mut out = Vec::with_capacity(targets.len());
        for (index, socket, state) in targets {
            if state == ReplicaState::Quarantined {
                out.push(Err(ProtoError::new(
                    ErrorKind::ReplicaQuarantined,
                    format!("replica {index} is quarantined; skipped by rolling reload"),
                )));
                continue;
            }
            let response = one_shot(&socket, &request);
            // Hold here until the replica answers health again: the next
            // replica's reload must not start while this one is swapping,
            // or capacity could dip below N−1.
            let settle = Instant::now() + Duration::from_secs(10);
            while Instant::now() < settle {
                if probe(&socket).is_some() {
                    break;
                }
                thread::sleep(Duration::from_millis(10));
            }
            out.push(response);
        }
        out
    }

    /// Starts the shutdown: the supervisor stops restarting, replicas are
    /// drained in [`Self::join`].
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.cancel();
    }

    /// Drains the fleet: `SIGTERM` every replica (their own drain path),
    /// wait out a grace period, hard-kill stragglers, and return the
    /// supervisor's final metrics snapshot.
    #[must_use]
    pub fn join(mut self) -> Snapshot {
        self.shared.shutdown.cancel();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        {
            let mut slots = lock(&self.shared.slots);
            for slot in slots.iter_mut() {
                if let Some(pid) = slot.pid {
                    let _ = Command::new("kill")
                        .arg("-TERM")
                        .arg(pid.to_string())
                        .status();
                }
            }
            let grace = Instant::now() + Duration::from_secs(5);
            loop {
                let mut alive = 0usize;
                for slot in slots.iter_mut() {
                    if let Some(child) = slot.child.as_mut() {
                        match child.try_wait() {
                            Ok(Some(_)) => {
                                slot.child = None;
                                slot.pid = None;
                            }
                            Ok(None) => alive += 1,
                            Err(_) => {
                                slot.child = None;
                                slot.pid = None;
                            }
                        }
                    }
                }
                if alive == 0 || Instant::now() >= grace {
                    break;
                }
                thread::sleep(Duration::from_millis(20));
            }
            for slot in slots.iter_mut() {
                if let Some(child) = slot.child.as_mut() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                slot.child = None;
                slot.pid = None;
            }
        }
        let _ = std::fs::remove_file(&self.control_socket);
        self.shared.registry.snapshot()
    }
}

fn status_of(slot: &Slot) -> ReplicaStatus {
    ReplicaStatus {
        index: slot.index,
        socket: slot.socket.clone(),
        state: slot.state,
        pid: slot.pid,
        generation: slot.generation,
        uptime: slot.up_since.map_or(Duration::ZERO, |t| t.elapsed()),
        restarts: slot.restarts,
    }
}

/// Spawns (or respawns) a replica daemon into `slot`, appending its
/// stdout/stderr to the per-replica log.
fn spawn_replica(opts: &FleetOptions, slot: &mut Slot) -> io::Result<()> {
    let log = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&slot.log)?;
    let mut cmd = Command::new(&opts.daemon);
    cmd.arg("serve")
        .arg("--store")
        .arg(&slot.store)
        .arg("--socket")
        .arg(&slot.socket);
    if opts.strict_store {
        cmd.arg("--strict-store");
    }
    for arg in &opts.replica_args {
        cmd.arg(arg);
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::from(log.try_clone()?))
        .stderr(Stdio::from(log));
    let child = cmd.spawn()?;
    slot.pid = Some(child.id());
    slot.child = Some(child);
    slot.state = ReplicaState::Starting;
    slot.started_at = Instant::now();
    slot.up_since = None;
    slot.restart_due = None;
    slot.last_probe = None;
    Ok(())
}

/// One short-timeout health probe: `Some((status, generation))` when the
/// replica answered, `None` on any failure.
fn probe(socket: &Path) -> Option<(String, u64)> {
    let mut stream = UnixStream::connect(socket).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(1))).ok()?;
    stream
        .set_write_timeout(Some(Duration::from_secs(1)))
        .ok()?;
    let response = proto::call(&mut stream, "{\"op\":\"health\"}").ok()?;
    let json = Json::parse(&response).ok()?;
    let status = json.get("status").and_then(Json::as_str)?.to_string();
    let generation = json
        .get("generation")
        .and_then(Json::as_f64)
        .map_or(0, |g| g as u64);
    Some((status, generation))
}

fn supervisor_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.is_cancelled() {
        let now = Instant::now();
        {
            let mut slots = lock(&shared.slots);
            for slot in slots.iter_mut() {
                tick_slot(shared, slot, now);
            }
            let up = slots.iter().filter(|s| s.state == ReplicaState::Up).count();
            shared.registry.gauge(sm::FLEET_REPLICAS_UP).set(up as f64);
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// One supervision step for one replica: detect exits, quarantine crash
/// loops, respawn after backoff, probe health.
fn tick_slot(shared: &Arc<Shared>, slot: &mut Slot, now: Instant) {
    let opts = &shared.opts;
    if slot.state == ReplicaState::Quarantined {
        return;
    }

    // Exit detection.
    let exited = match slot.child.as_mut() {
        Some(child) => !matches!(child.try_wait(), Ok(None)),
        None => false,
    };
    if exited {
        slot.child = None;
        slot.pid = None;
        slot.up_since = None;
        slot.exits.push_back(now);
        while let Some(front) = slot.exits.front() {
            if now.duration_since(*front) > opts.quarantine_window {
                slot.exits.pop_front();
            } else {
                break;
            }
        }
        if slot.exits.len() >= opts.quarantine_threshold.max(1) as usize {
            slot.state = ReplicaState::Quarantined;
            shared.registry.counter(sm::FLEET_QUARANTINED).incr();
            drop(
                trace::event("serve.fleet.replica_quarantined")
                    .arg("index", slot.index)
                    .arg("exits_in_window", slot.exits.len()),
            );
            lock(&shared.events).push(FleetEvent::Quarantined {
                index: slot.index,
                exits: slot.exits.len(),
            });
            return;
        }
        slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
        let shift = (slot.consecutive_failures - 1).min(16);
        let delay = opts
            .restart_backoff_base
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX))
            .min(opts.restart_backoff_cap);
        slot.restart_due = Some(now + delay);
        slot.state = ReplicaState::Backoff;
        return;
    }

    // Respawn once the backoff has elapsed.
    if slot.state == ReplicaState::Backoff {
        if slot.restart_due.is_some_and(|due| now >= due) {
            match spawn_replica(opts, slot) {
                Ok(()) => {
                    slot.restarts += 1;
                    shared.registry.counter(sm::FLEET_RESTARTS).incr();
                    lock(&shared.events).push(FleetEvent::Restarted {
                        index: slot.index,
                        restarts: slot.restarts,
                    });
                }
                Err(_) => {
                    // Spawn itself failed (fork pressure, unlinked binary):
                    // treat like another exit and back off again.
                    slot.exits.push_back(now);
                    slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
                    let shift = (slot.consecutive_failures - 1).min(16);
                    let delay = opts
                        .restart_backoff_base
                        .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX))
                        .min(opts.restart_backoff_cap);
                    slot.restart_due = Some(now + delay);
                }
            }
        }
        return;
    }

    // Health probing on the probe fast path.
    let due = slot
        .last_probe
        .is_none_or(|t| now.duration_since(t) >= opts.probe_interval);
    if !due {
        return;
    }
    slot.last_probe = Some(now);
    match probe(&slot.socket) {
        Some((_, generation)) => {
            if slot.state == ReplicaState::Starting {
                slot.state = ReplicaState::Up;
                slot.up_since = Some(now);
            }
            slot.generation = generation;
            // A healthy probe resets the backoff ladder: the next crash
            // starts from the base delay again.
            slot.consecutive_failures = 0;
        }
        None => {
            if slot.state == ReplicaState::Starting
                && now.duration_since(slot.started_at) > opts.startup_grace
            {
                // Hung startup: kill it; the next tick sees the exit and
                // routes through the normal backoff/quarantine ladder.
                if let Some(child) = slot.child.as_mut() {
                    let _ = child.kill();
                }
            }
        }
    }
}

fn control_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    while !shared.shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = thread::Builder::new()
                    .name("fleet-control-conn".into())
                    .spawn(move || handle_control(&shared, &stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_control(shared: &Arc<Shared>, mut stream: &UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    loop {
        let Ok(Some(payload)) = proto::read_frame(&mut stream) else {
            return;
        };
        let response = match parse_request(&payload) {
            Ok(Request::Fleet) => render_fleet(shared),
            Ok(Request::Health) => {
                let slots = lock(&shared.slots);
                let up = slots.iter().filter(|s| s.state == ReplicaState::Up).count();
                let degraded = up < slots.len();
                let generation = slots.iter().map(|s| s.generation).min().unwrap_or(0);
                let status = if shared.shutdown.is_cancelled() {
                    "draining"
                } else if up == 0 {
                    "down"
                } else if degraded {
                    "degraded"
                } else {
                    "serving"
                };
                render_health(status, up, degraded, generation, None)
            }
            Ok(_) => render_error(&ProtoError::new(
                ErrorKind::BadRequest,
                "fleet control socket answers \"fleet\" and \"health\" only; \
                 send queries to a replica socket",
            )),
            Err(e) => render_error(&e),
        };
        if write_frame(&mut stream, response.as_bytes()).is_err() {
            return;
        }
    }
}

/// Renders the `fleet` stats response: aggregate counts plus per-replica
/// state/generation/uptime; quarantined replicas carry a typed
/// `replica_quarantined` error object.
fn render_fleet(shared: &Arc<Shared>) -> String {
    let slots = lock(&shared.slots);
    let up = slots.iter().filter(|s| s.state == ReplicaState::Up).count();
    let quarantined = slots
        .iter()
        .filter(|s| s.state == ReplicaState::Quarantined)
        .count();
    let restarts: u64 = slots.iter().map(|s| s.restarts).sum();
    let mut out = format!(
        "{{\"ok\":true,\"fleet\":{{\"replicas\":{},\"replicas_up\":{up},\
         \"quarantined\":{quarantined},\"restarts\":{restarts},\"replica\":[",
        slots.len()
    );
    for (i, slot) in slots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"index\":{},\"socket\":", slot.index));
        push_escaped(&mut out, &slot.socket.display().to_string());
        out.push_str(",\"state\":");
        push_escaped(&mut out, slot.state.wire_name());
        match slot.pid {
            Some(pid) => out.push_str(&format!(",\"pid\":{pid}")),
            None => out.push_str(",\"pid\":null"),
        }
        out.push_str(&format!(
            ",\"generation\":{},\"uptime_s\":{:.3},\"restarts\":{}",
            slot.generation,
            slot.up_since.map_or(0.0, |t| t.elapsed().as_secs_f64()),
            slot.restarts
        ));
        if slot.state == ReplicaState::Quarantined {
            out.push_str(",\"error\":{\"kind\":");
            push_escaped(&mut out, ErrorKind::ReplicaQuarantined.wire_name());
            out.push_str(",\"detail\":");
            push_escaped(
                &mut out,
                &format!(
                    "replica {} crash-looped ({} exits in window); supervisor gave up",
                    slot.index,
                    slot.exits.len()
                ),
            );
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}
