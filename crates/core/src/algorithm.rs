//! The `ProximityDelay` composition algorithm (§4, Fig. 4-1).
//!
//! Inputs are ranked by dominance and folded in two at a time: after
//! processing inputs `y₁..y_{i-1}`, their cumulative effect is replaced by
//! an *equivalent waveform* `y*` — the dominant input time-shifted by
//! `Δ⁽¹⁾ − Δ^{(i-1)}` so that `y*` alone would cross the output threshold
//! exactly when the cumulative response does (eq. 4.3). The dual-input
//! macromodel is then applied to `(y*, y_i)` (eq. 4.4), giving the
//! perturbation update of eq. 4.5:
//!
//! ```text
//! Δ^{(i)} = Δ^{(i-1)} + Δ⁽¹⁾ · [ D⁽²⁾(τ₁/Δ⁽¹⁾, τᵢ/Δ⁽¹⁾, s*/Δ⁽¹⁾) − 1 ]
//! ```
//!
//! with `s* = s_{y₁yᵢ} + Δ⁽¹⁾ − Δ^{(i-1)}`. Iteration stops at the first
//! input outside the proximity window. A characterized correction term
//! (full at `s_{y₁y_m} ≤ 0`, decaying linearly to zero at
//! `s_{y₁y_m} = Δ^{(m-1)}`) absorbs the two known failure modes: identical
//! simultaneous inputs, and a dominant input arriving very late in the
//! window.

use crate::dominance::RankedEvent;
use crate::dual::DualInputModel;

/// The characterized simultaneous-step correction for one output edge.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct CorrectionTerm {
    /// Signed delay correction at full strength, in seconds.
    pub delay: f64,
    /// Signed output-transition-time correction at full strength, in seconds.
    pub trans: f64,
}

/// The result of one `ProximityDelay` composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityOutcome {
    /// The dominant input pin the delay is referenced to.
    pub reference_pin: usize,
    /// Composed propagation delay from the dominant input's arrival.
    pub delay: f64,
    /// Composed output transition time.
    pub trans: f64,
    /// Absolute output arrival time (`dominant arrival + delay`).
    pub output_arrival: f64,
    /// How many inputs fell inside the delay proximity window (≥ 1).
    pub inputs_in_window: usize,
    /// The correction actually added to the delay, in seconds.
    pub correction_applied: f64,
}

/// Runs the composition over dominance-ranked events.
///
/// `lookup(dominant_pin, partner_pin)` supplies the dual-input macromodel
/// used to fold `partner_pin` onto `dominant_pin` (for the scenario's input
/// edge). Under the paper's `2n` scheme the partner argument is ignored
/// (one model per dominant pin); with a full pair matrix every ordered pair
/// resolves to its own model. When the lookup returns `None` (e.g. a
/// one-input cell) the outcome degenerates to the single-input response.
///
/// `or_like` selects the conduction style (see
/// [`crate::dominance::rank_for_scenario`]): for OR-like conduction the
/// paper's proximity windows apply (a partner later than `Δ⁽¹⁾` cannot
/// affect delay, later than `Δ⁽¹⁾ + τ⁽¹⁾` cannot affect the edge); for
/// AND-like conduction partners arrive at non-positive effective
/// separations and their influence fades through the table itself.
///
/// `correction` is applied unless `use_correction` is false (ablation).
///
/// # Panics
///
/// Panics if `ranked` is empty, or (for OR-like scenarios) not sorted by
/// dominance.
pub fn compose<'a>(
    ranked: &[RankedEvent],
    lookup: &dyn Fn(usize, usize) -> Option<&'a DualInputModel>,
    correction: CorrectionTerm,
    use_correction: bool,
    or_like: bool,
) -> ProximityOutcome {
    // The ordering is the caller's choice: rank_for_scenario implements the
    // paper's rule, but alternative orderings are deliberately allowed (the
    // dominance ablation feeds naive arrival order through this same path).
    assert!(!ranked.is_empty(), "compose requires at least one event");

    let y1 = &ranked[0];
    let d1 = y1.d1;
    let tau1 = y1.event.transition_time();
    let t1_arr = y1.arrival;

    let mut delta = d1;
    // Output-edge "conductance" in units of the dominant input's single-input
    // drive: the cumulative transition time is τ⁽¹⁾ / g_edge.
    let mut g_edge = 1.0f64;
    let mut delta_prev = d1; // Δ^{(m-1)}: cumulative delay before the last fold
    let mut m_sep = 0.0; // s_{y1,ym}: separation of the last folded input
    let mut processed = 1usize;

    for e in &ranked[1..] {
        let s = e.arrival - t1_arr;
        if or_like {
            let in_delay_window = s < delta;
            let in_trans_window = s < delta + y1.t1 / g_edge;
            if !in_delay_window && !in_trans_window {
                break;
            }
        }
        let Some(dual) = lookup(y1.event.pin, e.event.pin) else {
            break;
        };

        // Equivalent-waveform shift: measure the partner's separation from
        // y* rather than from y1 (eq. 4.3/4.4).
        let s_star = s + d1 - delta;
        let u1 = tau1 / d1;
        let v = e.event.transition_time() / d1;
        let w = s_star / d1;

        let in_delay_window = if or_like { s < delta } else { true };
        if in_delay_window {
            let ratio = if or_like {
                dual.delay_ratio(u1, v, w)
            } else {
                dual.delay_ratio_raw(u1, v, w)
            };
            delta_prev = delta;
            delta += d1 * (ratio - 1.0);
            m_sep = s;
            processed += 1;
        }
        // Window boundary for transition time: beyond s = Δ⁽¹⁾ + τ⁽¹⁾
        // (relative to y*) a late OR-like partner cannot affect the edge.
        // The fold is conductance-additive: a dual-input ratio T⁽²⁾ means
        // the partner contributes `1/T⁽²⁾ − 1` units of output-edge drive
        // relative to the dominant input acting alone, and transition times
        // compose as τ⁽¹⁾ over the summed drive. For a single partner this
        // reduces exactly to eq. (3.12); for small perturbations it agrees
        // with the additive form of eq. (4.5) but it does not overshoot
        // when several inputs each change the edge substantially (three
        // parallel pull-ups are 3x the drive, not the square of 2x).
        if !or_like || s_star < d1 + y1.t1 {
            let ratio_t = dual.trans_ratio(u1, v, w).max(0.05);
            g_edge = (g_edge + 1.0 / ratio_t - 1.0).max(0.05);
        }
    }

    let mut correction_applied = 0.0;
    let mut trans_correction = 0.0;
    if use_correction && processed >= 2 {
        // Full correction at the worst case (simultaneous inputs), decaying
        // linearly to zero as the last folded input leaves the window. For
        // OR-like scenarios the worst side is non-positive separation (the
        // paper's rule); for AND-like it mirrors to non-negative.
        let toward_zero = if or_like { m_sep } else { -m_sep };
        let scale = if toward_zero <= 0.0 {
            1.0
        } else if delta_prev > 0.0 {
            (1.0 - toward_zero / delta_prev).clamp(0.0, 1.0)
        } else {
            0.0
        };
        correction_applied = correction.delay * scale;
        delta += correction_applied;
        trans_correction = correction.trans * scale;
    }

    ProximityOutcome {
        reference_pin: y1.event.pin,
        delay: delta,
        trans: (y1.t1 / g_edge + trans_correction).max(0.0),
        output_arrival: t1_arr + delta,
        inputs_in_window: processed,
        correction_applied,
    }
}

/// Storage accounting for the modeling options of Figure 4-2, in table
/// entries per modeled quantity (delay or transition time).
///
/// - `Full`: `n` functions of `2n − 1` arguments, each axis sampled at
///   `grid1` points — exponential in fan-in.
/// - `PairMatrix`: `n` single-input tables of `grid1` entries plus
///   `n(n−1)` dual-input tables of `grid3`³ entries.
/// - `Paper`: the paper's `2n` macromodels — `n` single plus `n` dual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageScheme {
    /// Direct tabulation of eq. (4.1).
    Full,
    /// One dual model per ordered pin pair (matrix 2(a) of Fig. 4-2).
    PairMatrix,
    /// The paper's choice: one dual model per dominant pin.
    Paper,
}

/// Number of stored table entries for an `n`-input gate under `scheme`,
/// with `grid1` samples per 1-D axis and `grid3` samples per dual-table
/// axis.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn storage_entries(n: usize, grid1: usize, grid3: usize, scheme: StorageScheme) -> u128 {
    assert!(n > 0, "gate needs at least one input");
    let n = n as u128;
    let g1 = grid1 as u128;
    let g3 = grid3 as u128;
    match scheme {
        StorageScheme::Full => n * g1.pow((2 * n as u32).saturating_sub(1)),
        StorageScheme::PairMatrix => n * g1 + n * (n - 1) * g3.pow(3),
        // Dual-input models only exist for fan-in >= 2.
        StorageScheme::Paper => n * g1 + if n >= 2 { n * g3.pow(3) } else { 0 },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::measure::InputEvent;
    use proxim_numeric::pwl::Edge;

    fn ranked(pin: usize, arrival: f64, tau: f64, d1: f64, t1: f64) -> RankedEvent {
        RankedEvent {
            event: InputEvent::new(pin, Edge::Rising, arrival, tau),
            arrival,
            d1,
            t1,
        }
    }

    #[test]
    fn single_event_degenerates_to_single_input_model() {
        let r = vec![ranked(0, 1e-9, 200e-12, 300e-12, 250e-12)];
        let out = compose(&r, &|_, _| None, CorrectionTerm::default(), true, true);
        assert_eq!(out.reference_pin, 0);
        assert_eq!(out.delay, 300e-12);
        assert_eq!(out.trans, 250e-12);
        assert_eq!(out.inputs_in_window, 1);
        assert!((out.output_arrival - 1.3e-9).abs() < 1e-18);
        assert_eq!(out.correction_applied, 0.0);
    }

    #[test]
    fn partner_outside_window_is_ignored() {
        let r = vec![
            ranked(0, 0.0, 200e-12, 300e-12, 250e-12),
            // Arrives after Δ + τ — no effect even on transition time.
            ranked(1, 600e-12, 200e-12, 300e-12, 250e-12),
        ];
        let out = compose(&r, &|_, _| None, CorrectionTerm::default(), true, true);
        assert_eq!(out.delay, 300e-12);
        assert_eq!(out.inputs_in_window, 1);
    }

    #[test]
    fn correction_scale_full_at_nonpositive_separation() {
        // Build a fake dual model via characterize is heavy; instead verify
        // the scaling logic through outcomes with a zero-effect dual table.
        // With no dual model the correction cannot apply (processed == 1).
        let r = vec![
            ranked(0, 0.0, 200e-12, 300e-12, 250e-12),
            ranked(1, 0.0, 200e-12, 300e-12, 250e-12),
        ];
        let corr = CorrectionTerm {
            delay: 50e-12,
            trans: 10e-12,
        };
        let out = compose(&r, &|_, _| None, corr, true, true);
        assert_eq!(out.correction_applied, 0.0, "no dual model, no folding");
    }

    #[test]
    fn storage_paper_is_linear_in_fanin() {
        let paper4 = storage_entries(4, 8, 8, StorageScheme::Paper);
        let paper8 = storage_entries(8, 8, 8, StorageScheme::Paper);
        assert_eq!(paper8, 2 * paper4);
        // n*g1 + n*g3^3.
        assert_eq!(paper4, 4 * 8 + 4 * 512);
    }

    #[test]
    fn storage_full_explodes() {
        let full3 = storage_entries(3, 8, 8, StorageScheme::Full);
        assert_eq!(full3, 3 * 8u128.pow(5));
        assert!(
            storage_entries(4, 8, 8, StorageScheme::Full)
                > 100 * storage_entries(4, 8, 8, StorageScheme::PairMatrix)
        );
    }

    #[test]
    fn storage_matrix_vs_paper() {
        // The pair matrix stores n-1 times more dual tables.
        let m = storage_entries(5, 8, 8, StorageScheme::PairMatrix);
        let p = storage_entries(5, 8, 8, StorageScheme::Paper);
        assert_eq!(m - p, 5 * 3 * 512);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn compose_rejects_empty() {
        compose(&[], &|_, _| None, CorrectionTerm::default(), true, true);
    }
}
